//! `lint.toml` — the suppression allowlist plus the declared policies the
//! symbol-resolved rules enforce.
//!
//! Every `[[allow]]` entry names a rule, a file, and — non-negotiably — a
//! human `reason`. An allowlist without written justifications decays into
//! a list of things nobody remembers agreeing to; the parser rejects empty
//! or missing reasons outright. The same discipline applies to the policy
//! tables: `[[atomic]]` (per-module atomic-ordering policy for
//! L5-atomic-ordering) and `[[ledger]]` (accounting types whose arithmetic
//! L7-ledger-arith audits) both require a written `reason`.
//!
//! The accepted grammar is the TOML subset the file actually needs
//! (comments, `[[allow]]`/`[[atomic]]`/`[[ledger]]` table arrays,
//! `key = "string"` and `key = ["a", "b"]` pairs), parsed strictly:
//! unknown tables, unknown keys, bare values, or duplicate keys are hard
//! errors, so a typo cannot silently suppress nothing.
//!
//! ```toml
//! [[allow]]
//! rule = "L2-wall-clock"
//! path = "crates/timeseries/src/budget.rs"
//! pattern = "Instant::now"   # optional: flagged line must contain this
//! reason = "ExecBudget deliberately reads the wall clock; budgets only early-exit"
//!
//! [[atomic]]
//! path = "crates/obs/src/registry.rs"
//! allow = ["Relaxed"]
//! fix = "Relaxed"            # optional: --fix rewrites violations to this
//! reason = "monotone counters merged exactly after join; no ordering needed"
//!
//! [[ledger]]
//! path = "crates/resilience/src/breaker.rs"
//! types = ["BreakerStats"]
//! reason = "admitted + rejected == allow() calls is a tested invariant"
//! ```

use crate::rules::{Finding, RULE_IDS};
use crate::LintError;

/// The orderings an `[[atomic]]` policy may declare.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One suppression, scoped to (rule, file, optional line substring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    /// When non-empty, the finding's snippet must contain this substring.
    pub pattern: String,
    pub reason: String,
    /// Line in `lint.toml` the entry starts on (for unused-entry reports).
    pub defined_at: u32,
}

impl AllowEntry {
    pub fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule
            && self.path == finding.path
            && (self.pattern.is_empty() || finding.snippet.contains(&self.pattern))
    }
}

/// One module's declared atomic-ordering policy (L5-atomic-ordering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicPolicy {
    /// Workspace-relative file the policy governs, exactly.
    pub path: String,
    /// Orderings this module is allowed to use.
    pub allow: Vec<String>,
    /// When set, `--fix` rewrites out-of-policy orderings to this one.
    /// Must itself be in `allow`.
    pub fix: Option<String>,
    pub reason: String,
    pub defined_at: u32,
}

/// One module's declared accounting types (L7-ledger-arith).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerDecl {
    /// Workspace-relative file the declaration governs, exactly.
    pub path: String,
    /// Type names whose `impl` blocks carry exact-conservation invariants.
    pub types: Vec<String>,
    pub reason: String,
    pub defined_at: u32,
}

/// The parsed configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    pub allows: Vec<AllowEntry>,
    pub atomics: Vec<AtomicPolicy>,
    pub ledgers: Vec<LedgerDecl>,
}

impl Config {
    /// The atomic policy governing `rel_path`, if declared.
    pub fn atomic_policy(&self, rel_path: &str) -> Option<&AtomicPolicy> {
        self.atomics.iter().find(|p| p.path == rel_path)
    }

    /// The ledger declaration governing `rel_path`, if declared.
    pub fn ledger(&self, rel_path: &str) -> Option<&LedgerDecl> {
        self.ledgers.iter().find(|l| l.path == rel_path)
    }

    /// Parses `lint.toml` text. `origin` names the file in error messages.
    pub fn parse(text: &str, origin: &str) -> Result<Self, LintError> {
        let err = |line: usize, msg: String| {
            Err(LintError::Config(format!("{origin}:{}: {msg}", line + 1)))
        };
        let mut cfg = Config::default();
        let mut current: Option<Partial> = None;
        let flush = |cfg: &mut Config, current: &mut Option<Partial>| -> Result<(), LintError> {
            if let Some(partial) = current.take() {
                match partial {
                    Partial::Allow(p) => cfg.allows.push(p.finish(origin)?),
                    Partial::Atomic(p) => cfg.atomics.push(p.finish(origin)?),
                    Partial::Ledger(p) => cfg.ledgers.push(p.finish(origin)?),
                }
            }
            Ok(())
        };

        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                flush(&mut cfg, &mut current)?;
                current = Some(match line.as_str() {
                    "[[allow]]" => Partial::Allow(PartialAllow::new(lineno as u32 + 1)),
                    "[[atomic]]" => Partial::Atomic(PartialAtomic::new(lineno as u32 + 1)),
                    "[[ledger]]" => Partial::Ledger(PartialLedger::new(lineno as u32 + 1)),
                    other => {
                        return err(
                            lineno,
                            format!(
                            "unknown table `{other}`; accepted: [[allow]], [[atomic]], [[ledger]]"
                        ),
                        )
                    }
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(lineno, format!("expected `key = \"value\"`, got `{line}`"));
            };
            let key = key.trim();
            let value = value.trim();
            let Some(entry) = current.as_mut() else {
                return err(lineno, format!("`{key}` appears before any table"));
            };
            let as_string = |value: &str, key: &str| -> Result<String, LintError> {
                parse_string(value).ok_or_else(|| {
                    LintError::Config(format!(
                        "{origin}:{}: value for `{key}` must be a double-quoted string",
                        lineno + 1
                    ))
                })
            };
            let as_array = |value: &str, key: &str| -> Result<Vec<String>, LintError> {
                parse_string_array(value).ok_or_else(|| {
                    LintError::Config(format!(
                        "{origin}:{}: value for `{key}` must be an array of double-quoted strings",
                        lineno + 1
                    ))
                })
            };
            let dup = |key: &str| {
                LintError::Config(format!(
                    "{origin}:{}: duplicate key `{key}` in one table entry",
                    lineno + 1
                ))
            };
            match entry {
                Partial::Allow(p) => {
                    let slot = match key {
                        "rule" => &mut p.rule,
                        "path" => &mut p.path,
                        "pattern" => &mut p.pattern,
                        "reason" => &mut p.reason,
                        other => {
                            return err(
                                lineno,
                                format!(
                                    "unknown key `{other}` in [[allow]]; \
                                     allowed: rule, path, pattern, reason"
                                ),
                            )
                        }
                    };
                    if slot.is_some() {
                        return Err(dup(key));
                    }
                    *slot = Some(as_string(value, key)?);
                }
                Partial::Atomic(p) => match key {
                    "path" | "fix" | "reason" => {
                        let slot = match key {
                            "path" => &mut p.path,
                            "fix" => &mut p.fix,
                            _ => &mut p.reason,
                        };
                        if slot.is_some() {
                            return Err(dup(key));
                        }
                        *slot = Some(as_string(value, key)?);
                    }
                    "allow" => {
                        if p.allow.is_some() {
                            return Err(dup(key));
                        }
                        p.allow = Some(as_array(value, key)?);
                    }
                    other => {
                        return err(
                            lineno,
                            format!(
                                "unknown key `{other}` in [[atomic]]; \
                                 allowed: path, allow, fix, reason"
                            ),
                        )
                    }
                },
                Partial::Ledger(p) => match key {
                    "path" | "reason" => {
                        let slot = if key == "path" {
                            &mut p.path
                        } else {
                            &mut p.reason
                        };
                        if slot.is_some() {
                            return Err(dup(key));
                        }
                        *slot = Some(as_string(value, key)?);
                    }
                    "types" => {
                        if p.types.is_some() {
                            return Err(dup(key));
                        }
                        p.types = Some(as_array(value, key)?);
                    }
                    other => {
                        return err(
                            lineno,
                            format!(
                                "unknown key `{other}` in [[ledger]]; \
                                 allowed: path, types, reason"
                            ),
                        )
                    }
                },
            }
        }
        flush(&mut cfg, &mut current)?;
        Ok(cfg)
    }
}

enum Partial {
    Allow(PartialAllow),
    Atomic(PartialAtomic),
    Ledger(PartialLedger),
}

struct PartialAllow {
    defined_at: u32,
    rule: Option<String>,
    path: Option<String>,
    pattern: Option<String>,
    reason: Option<String>,
}

impl PartialAllow {
    fn new(defined_at: u32) -> Self {
        Self {
            defined_at,
            rule: None,
            path: None,
            pattern: None,
            reason: None,
        }
    }

    fn finish(self, origin: &str) -> Result<AllowEntry, LintError> {
        let at = self.defined_at;
        let fail = |msg: String| Err(LintError::Config(format!("{origin}:{at}: {msg}")));
        let Some(rule) = self.rule else {
            return fail("[[allow]] entry is missing `rule`".to_string());
        };
        if !RULE_IDS.contains(&rule.as_str()) {
            return fail(format!(
                "unknown rule `{rule}`; known rules: {}",
                RULE_IDS.join(", ")
            ));
        }
        let Some(path) = self.path else {
            return fail("[[allow]] entry is missing `path`".to_string());
        };
        let reason = require_reason(self.reason, "[[allow]]", origin, at)?;
        Ok(AllowEntry {
            rule,
            path,
            pattern: self.pattern.unwrap_or_default(),
            reason,
            defined_at: at,
        })
    }
}

struct PartialAtomic {
    defined_at: u32,
    path: Option<String>,
    allow: Option<Vec<String>>,
    fix: Option<String>,
    reason: Option<String>,
}

impl PartialAtomic {
    fn new(defined_at: u32) -> Self {
        Self {
            defined_at,
            path: None,
            allow: None,
            fix: None,
            reason: None,
        }
    }

    fn finish(self, origin: &str) -> Result<AtomicPolicy, LintError> {
        let at = self.defined_at;
        let fail = |msg: String| Err(LintError::Config(format!("{origin}:{at}: {msg}")));
        let Some(path) = self.path else {
            return fail("[[atomic]] entry is missing `path`".to_string());
        };
        let Some(allow) = self.allow else {
            return fail("[[atomic]] entry is missing `allow`".to_string());
        };
        if allow.is_empty() {
            return fail("[[atomic]] `allow` must list at least one ordering".to_string());
        }
        for o in &allow {
            if !ORDERINGS.contains(&o.as_str()) {
                return fail(format!(
                    "unknown ordering `{o}`; known orderings: {}",
                    ORDERINGS.join(", ")
                ));
            }
        }
        if let Some(fix) = &self.fix {
            if !allow.iter().any(|o| o == fix) {
                return fail(format!(
                    "`fix = \"{fix}\"` must itself be in the `allow` list"
                ));
            }
        }
        let reason = require_reason(self.reason, "[[atomic]]", origin, at)?;
        Ok(AtomicPolicy {
            path,
            allow,
            fix: self.fix,
            reason,
            defined_at: at,
        })
    }
}

struct PartialLedger {
    defined_at: u32,
    path: Option<String>,
    types: Option<Vec<String>>,
    reason: Option<String>,
}

impl PartialLedger {
    fn new(defined_at: u32) -> Self {
        Self {
            defined_at,
            path: None,
            types: None,
            reason: None,
        }
    }

    fn finish(self, origin: &str) -> Result<LedgerDecl, LintError> {
        let at = self.defined_at;
        let fail = |msg: String| Err(LintError::Config(format!("{origin}:{at}: {msg}")));
        let Some(path) = self.path else {
            return fail("[[ledger]] entry is missing `path`".to_string());
        };
        let Some(types) = self.types else {
            return fail("[[ledger]] entry is missing `types`".to_string());
        };
        if types.is_empty() {
            return fail("[[ledger]] `types` must list at least one type".to_string());
        }
        let reason = require_reason(self.reason, "[[ledger]]", origin, at)?;
        Ok(LedgerDecl {
            path,
            types,
            reason,
            defined_at: at,
        })
    }
}

fn require_reason(
    reason: Option<String>,
    table: &str,
    origin: &str,
    at: u32,
) -> Result<String, LintError> {
    let reason = reason.unwrap_or_default();
    if reason.trim().len() < 10 {
        return Err(LintError::Config(format!(
            "{origin}:{at}: every {table} entry needs a written `reason` (at least 10 \
             characters) explaining why the invariant holds"
        )));
    }
    Ok(reason)
}

/// Strips a `#` comment, honoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..idx],
            _ => escaped = false,
        }
    }
    line
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
/// Returns `None` on anything else (bare words, single quotes, trailing
/// garbage).
fn parse_string(value: &str) -> Option<String> {
    let rest = value.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            },
            '"' => {
                // Only whitespace may follow the closing quote.
                return chars.all(char::is_whitespace).then_some(out);
            }
            c => out.push(c),
        }
    }
    None
}

/// Parses a single-line TOML array of basic strings: `["a", "b"]`.
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Some(out);
        }
        if chars.next() != Some('"') {
            return None;
        }
        let mut s = String::new();
        loop {
            match chars.next()? {
                '\\' => match chars.next()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    'n' => s.push('\n'),
                    't' => s.push('\t'),
                    _ => return None,
                },
                '"' => break,
                c => s.push(c),
            }
        }
        out.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_config_parses() {
        let toml = r##"
# repo allowlist
[[allow]]
rule = "L2-wall-clock"
path = "crates/timeseries/src/budget.rs"
reason = "budgets deliberately read the wall clock; only early-exits depend on it"

[[allow]]
rule = "L4-panic"
path = "crates/core/src/io.rs"
pattern = "lock()"
reason = "mutex cannot be poisoned: no critical section panics"
"##;
        let cfg = Config::parse(toml, "lint.toml").expect("parses");
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].rule, "L2-wall-clock");
        assert_eq!(cfg.allows[1].pattern, "lock()");
        assert_eq!(cfg.allows[0].defined_at, 3);
    }

    #[test]
    fn atomic_and_ledger_tables_parse() {
        let toml = r##"
[[atomic]]
path = "crates/obs/src/registry.rs"
allow = ["Relaxed"]
fix = "Relaxed"
reason = "monotone counters merged exactly after join; no ordering needed"

[[atomic]]
path = "crates/mapreduce/src/fault.rs"
allow = ["Relaxed", "SeqCst"]
reason = "stats counters are Relaxed; control cells stay SeqCst"

[[ledger]]
path = "crates/resilience/src/breaker.rs"
types = ["BreakerStats"]
reason = "admitted + rejected == allow() calls is a tested invariant"
"##;
        let cfg = Config::parse(toml, "lint.toml").expect("parses");
        assert_eq!(cfg.atomics.len(), 2);
        assert_eq!(cfg.atomics[0].fix.as_deref(), Some("Relaxed"));
        assert_eq!(cfg.atomics[1].allow, vec!["Relaxed", "SeqCst"]);
        assert_eq!(cfg.atomics[1].fix, None);
        assert_eq!(cfg.ledgers.len(), 1);
        assert_eq!(cfg.ledgers[0].types, vec!["BreakerStats"]);
        assert!(cfg.atomic_policy("crates/obs/src/registry.rs").is_some());
        assert!(cfg.atomic_policy("crates/obs/src/clock.rs").is_none());
        assert!(cfg.ledger("crates/resilience/src/breaker.rs").is_some());
    }

    #[test]
    fn atomic_validation_catches_bad_policies() {
        for (toml, needle) in [
            (
                "[[atomic]]\npath = \"a.rs\"\nallow = [\"Chaotic\"]\nreason = \"long enough reason\"\n",
                "unknown ordering",
            ),
            (
                "[[atomic]]\npath = \"a.rs\"\nallow = [\"Relaxed\"]\nfix = \"SeqCst\"\nreason = \"long enough reason\"\n",
                "must itself be in the `allow` list",
            ),
            (
                "[[atomic]]\npath = \"a.rs\"\nallow = []\nreason = \"long enough reason\"\n",
                "at least one ordering",
            ),
            (
                "[[atomic]]\npath = \"a.rs\"\nreason = \"long enough reason\"\n",
                "missing `allow`",
            ),
            (
                "[[ledger]]\npath = \"a.rs\"\ntypes = []\nreason = \"long enough reason\"\n",
                "at least one type",
            ),
        ] {
            let e = Config::parse(toml, "lint.toml").expect_err(toml);
            assert!(e.to_string().contains(needle), "{toml} -> {e}");
        }
    }

    #[test]
    fn missing_reason_is_rejected() {
        let toml = "[[allow]]\nrule = \"L4-panic\"\npath = \"src/lib.rs\"\n";
        let e = Config::parse(toml, "lint.toml").expect_err("must fail");
        assert!(e.to_string().contains("reason"), "{e}");
        let toml = "[[atomic]]\npath = \"a.rs\"\nallow = [\"Relaxed\"]\n";
        assert!(Config::parse(toml, "lint.toml").is_err());
        let toml = "[[ledger]]\npath = \"a.rs\"\ntypes = [\"T\"]\n";
        assert!(Config::parse(toml, "lint.toml").is_err());
    }

    #[test]
    fn short_reason_is_rejected() {
        let toml = "[[allow]]\nrule = \"L4-panic\"\npath = \"src/lib.rs\"\nreason = \"ok\"\n";
        assert!(Config::parse(toml, "lint.toml").is_err());
    }

    #[test]
    fn unknown_rule_key_and_table_are_rejected() {
        for toml in [
            "[[allow]]\nrule = \"L9-nope\"\npath = \"a\"\nreason = \"long enough reason\"\n",
            "[[allow]]\nrule = \"L4-panic\"\nfile = \"a\"\nreason = \"long enough reason\"\n",
            "[[atomic]]\npath = \"a\"\nallow = [\"Relaxed\"]\norder = \"x\"\nreason = \"long enough reason\"\n",
            "[[ledger]]\npath = \"a\"\nfields = [\"x\"]\nreason = \"long enough reason\"\n",
            "[allowed]\n",
            "rule = \"L4-panic\"\n",
        ] {
            assert!(Config::parse(toml, "lint.toml").is_err(), "{toml}");
        }
    }

    #[test]
    fn bare_values_and_duplicates_are_rejected() {
        for toml in [
            "[[allow]]\nrule = L4-panic\npath = \"a\"\nreason = \"long enough reason\"\n",
            "[[allow]]\nrule = \"L4-panic\"\nrule = \"L4-panic\"\npath = \"a\"\nreason = \"long enough reason\"\n",
            "[[atomic]]\npath = \"a\"\nallow = [\"Relaxed\"]\nallow = [\"Relaxed\"]\nreason = \"long enough reason\"\n",
            "[[atomic]]\npath = \"a\"\nallow = [Relaxed]\nreason = \"long enough reason\"\n",
        ] {
            assert!(Config::parse(toml, "lint.toml").is_err(), "{toml}");
        }
    }

    #[test]
    fn comments_and_escapes_are_honored() {
        let toml = "[[allow]] # trailing comment\nrule = \"L4-panic\" # why not\n\
                    path = \"src/lib.rs\"\nreason = \"the \\\"#\\\" is not a comment here\"\n";
        let cfg = Config::parse(toml, "lint.toml").expect("parses");
        assert!(cfg.allows[0].reason.contains('#'));
    }

    #[test]
    fn pattern_scopes_the_match() {
        let entry = AllowEntry {
            rule: "L4-panic".into(),
            path: "src/lib.rs".into(),
            pattern: "lock()".into(),
            reason: "poisoning is unreachable here".into(),
            defined_at: 1,
        };
        let mut finding = Finding {
            rule: "L4-panic",
            path: "src/lib.rs".into(),
            line: 5,
            snippet: "self.cache.lock().unwrap()".into(),
            message: String::new(),
            fix: None,
        };
        assert!(entry.matches(&finding));
        finding.snippet = "value.unwrap()".into();
        assert!(!entry.matches(&finding));
        finding.path = "src/other.rs".into();
        assert!(!entry.matches(&finding));
    }
}
