//! Fig. 11 — false negatives vs number of cases examined in uncertainty
//! order.
//!
//! The paper's classifier leaves 41 false negatives among 2,352 cases;
//! ranking the residual cases by classifier *uncertainty* and examining
//! them in that order empties the FN pool quickly (≈550 cases examined →
//! fewer than 10 FNs left). This binary reproduces the curve on the
//! synthesized flagged-case population (see `baywatch_bench::bootstrap`).

#![warn(clippy::unwrap_used)]

use baywatch_bench::bootstrap::{run, BootstrapExperiment};
use baywatch_bench::{render_table, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 11: FN reduction under uncertainty-ordered triage ===\n");

    let cfg = BootstrapExperiment::default();
    println!(
        "{} cases, {:.0}% malicious, training on first {:.0}%, {} trees\n",
        cfg.n_cases,
        cfg.malicious_fraction * 100.0,
        cfg.train_fraction * 100.0,
        cfg.n_trees
    );
    let out = run(&cfg)?;

    println!(
        "classifier: train {} / test {}, OOB error {:?}",
        out.n_train, out.n_test, out.oob_error
    );
    println!("initial false negatives: {}", out.fn_curve[0]);

    // Print the curve at checkpoints.
    let checkpoints = [
        0usize, 10, 25, 50, 100, 150, 200, 300, 400, 500, 600, out.n_test,
    ];
    let rows: Vec<Vec<String>> = checkpoints
        .iter()
        .filter(|&&k| k < out.fn_curve.len())
        .map(|&k| vec![k.to_string(), out.fn_curve[k].to_string()])
        .collect();
    println!(
        "{}",
        render_table(
            &["cases examined (uncertainty order)", "false negatives left"],
            &rows
        )
    );

    // Shape assertions matching the paper: the curve is non-increasing and
    // most FNs disappear within a modest prefix of the triage order.
    assert!(out.fn_curve.windows(2).all(|w| w[0] >= w[1]));
    assert_eq!(out.fn_curve.last().copied(), Some(0));
    if out.fn_curve[0] > 0 {
        // The curve ends at zero, so a halving point always exists; the
        // fallback is unreachable but keeps this panic-free.
        let half_idx = out
            .fn_curve
            .iter()
            .position(|&fnc| fnc * 2 <= out.fn_curve[0])
            .unwrap_or(out.fn_curve.len());
        println!(
            "\nhalf of the FNs are recovered after examining {half_idx} of {} cases \
             ({:.0}% of the test set)",
            out.n_test,
            100.0 * half_idx as f64 / out.n_test as f64
        );
    } else {
        println!("\nclassifier produced no false negatives on this population");
    }

    save_json("fig11_uncertainty", &out.fn_curve);
    Ok(())
}
