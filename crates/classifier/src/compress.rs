//! A from-scratch LZ77 + Huffman compressor used for the *compressibility*
//! feature (Table II of the paper).
//!
//! The paper measures the compressibility of the symbolized interval series
//! with `gzip` at its highest level. What the feature actually captures is
//! the repetition structure of a three-symbol string: a perfectly periodic
//! series (`xxxx…`) collapses to almost nothing, while an irregular one
//! resists compression. Any dictionary coder followed by an entropy coder
//! preserves that ordering, so this module implements a compact DEFLATE-like
//! scheme: greedy LZ77 tokenization over a sliding window, then a canonical
//! Huffman code over the token alphabet. A decoder is included so tests can
//! prove the transform lossless.

/// Maximum LZ77 back-reference distance.
const WINDOW: usize = 4096;
/// Maximum LZ77 match length.
const MAX_MATCH: usize = 258;
/// Minimum match length worth emitting as a reference.
const MIN_MATCH: usize = 3;

/// An LZ77 token: a literal byte or a (distance, length) back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { distance: u16, length: u16 },
}

/// Greedy LZ77 tokenization with a hash-chain match finder.
fn lz77_tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let n = data.len();
    // head[h] = most recent position with hash h; prev[i] = previous
    // position with the same hash as i.
    const HASH_BITS: usize = 13;
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let hash = |d: &[u8]| -> usize {
        ((d[0] as usize) << 7 ^ (d[1] as usize) << 4 ^ (d[2] as usize)) & ((1 << HASH_BITS) - 1)
    };

    let mut i = 0;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash(&data[i..]);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 32 {
                let limit = (n - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                distance: best_dist as u16,
                length: best_len as u16,
            });
            // Insert hash entries for every covered position.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let h = hash(&data[j..]);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            if i + MIN_MATCH <= n {
                let h = hash(&data[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    tokens
}

/// Huffman code: symbol → (bits, bit-length). Built canonically from symbol
/// frequencies using a simple two-queue construction.
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    let symbols: Vec<usize> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, _)| i)
        .collect();
    let mut lengths = vec![0u8; freqs.len()];
    match symbols.len() {
        0 => return lengths,
        1 => {
            lengths[symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Build the tree with a binary heap of (weight, node).
    #[derive(Debug)]
    enum Node {
        Leaf(usize),
        Internal(Box<Node>, Box<Node>),
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    // BinaryHeap needs Ord; wrap weight and a tiebreaker id.
    let mut heap: BinaryHeap<(Reverse<u64>, Reverse<usize>, usize)> = BinaryHeap::new();
    let mut arena: Vec<Node> = Vec::new();
    for &s in &symbols {
        arena.push(Node::Leaf(s));
        heap.push((Reverse(freqs[s]), Reverse(arena.len() - 1), arena.len() - 1));
    }
    // To combine nodes we need ownership; use indices with Option slots.
    let mut slots: Vec<Option<Node>> = arena.into_iter().map(Some).collect();
    while heap.len() > 1 {
        let (Reverse(w1), _, i1) = heap.pop().expect("heap len > 1");
        let (Reverse(w2), _, i2) = heap.pop().expect("heap len > 1");
        let n1 = slots[i1].take().expect("slot occupied");
        let n2 = slots[i2].take().expect("slot occupied");
        slots.push(Some(Node::Internal(Box::new(n1), Box::new(n2))));
        let idx = slots.len() - 1;
        heap.push((Reverse(w1 + w2), Reverse(idx), idx));
    }
    let (_, _, root_idx) = heap.pop().expect("one node remains");
    let root = slots[root_idx].take().expect("root occupied");

    fn walk(node: &Node, depth: u8, lengths: &mut [u8]) {
        match node {
            Node::Leaf(s) => lengths[*s] = depth.max(1),
            Node::Internal(l, r) => {
                walk(l, depth + 1, lengths);
                walk(r, depth + 1, lengths);
            }
        }
    }
    walk(&root, 0, &mut lengths);
    lengths
}

/// Canonical codes from code lengths (JPEG/DEFLATE style).
fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut pairs: Vec<(usize, u8)> = lengths
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0)
        .map(|(s, &l)| (s, l))
        .collect();
    pairs.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut codes = vec![(0u32, 0u8); lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for (sym, len) in pairs {
        code <<= len - prev_len;
        codes[sym] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// A growable bit sink.
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    fn write(&mut self, code: u32, len: u8) {
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            if bit == 1 {
                let last = self.bytes.len() - 1;
                self.bytes[last] |= 1 << (7 - self.bit_pos);
            }
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }
}

/// A bit source over a byte slice.
#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }
    fn read_bit(&mut self) -> Option<u8> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit)
    }
    fn read_bits(&mut self, n: u8) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Some(v)
    }
}

// Token symbol space: 0..=255 literals, 256 = end-of-stream,
// 257.. = match-length symbols (length encoded directly, distance raw).
const SYM_EOS: usize = 256;
const SYM_MATCH_BASE: usize = 257;
const N_SYMBOLS: usize = SYM_MATCH_BASE + MAX_MATCH - MIN_MATCH + 1;

/// Compresses `data`; the output embeds the Huffman code lengths so it is
/// self-contained.
///
/// # Example
///
/// ```
/// use baywatch_classifier::compress::{compress, decompress};
///
/// let periodic = vec![b'x'; 1000];
/// let packed = compress(&periodic);
/// assert!(packed.len() < 100, "periodic data should collapse");
/// assert_eq!(decompress(&packed).unwrap(), periodic);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz77_tokenize(data);

    // Frequency pass.
    let mut freqs = vec![0u64; N_SYMBOLS];
    for t in &tokens {
        match t {
            Token::Literal(b) => freqs[*b as usize] += 1,
            Token::Match { length, .. } => {
                freqs[SYM_MATCH_BASE + (*length as usize - MIN_MATCH)] += 1
            }
        }
    }
    freqs[SYM_EOS] += 1;

    let lengths = huffman_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    // Header: code length (1 byte, 0 = unused) per symbol, run-length
    // encoded as (count, value) pairs.
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < N_SYMBOLS {
        let v = lengths[i];
        let mut run = 1usize;
        while i + run < N_SYMBOLS && lengths[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(v);
        i += run;
    }
    out.push(0); // run = 0 terminates the header

    let mut bw = BitWriter::default();
    for t in &tokens {
        match t {
            Token::Literal(b) => {
                let (c, l) = codes[*b as usize];
                bw.write(c, l);
            }
            Token::Match { distance, length } => {
                let sym = SYM_MATCH_BASE + (*length as usize - MIN_MATCH);
                let (c, l) = codes[sym];
                bw.write(c, l);
                bw.write(*distance as u32, 13); // WINDOW = 4096 fits in 13 bits
            }
        }
    }
    let (c, l) = codes[SYM_EOS];
    bw.write(c, l);

    out.extend_from_slice(&bw.bytes);
    out
}

/// Decompresses a buffer produced by [`compress`].
///
/// Returns `None` for corrupt input.
pub fn decompress(packed: &[u8]) -> Option<Vec<u8>> {
    // Parse header.
    let mut lengths = vec![0u8; N_SYMBOLS];
    let mut idx = 0usize;
    let mut sym = 0usize;
    loop {
        let run = *packed.get(idx)? as usize;
        idx += 1;
        if run == 0 {
            break;
        }
        let v = *packed.get(idx)?;
        idx += 1;
        if sym + run > N_SYMBOLS {
            return None;
        }
        for l in lengths.iter_mut().skip(sym).take(run) {
            *l = v;
        }
        sym += run;
    }
    if sym != N_SYMBOLS {
        return None;
    }
    let codes = canonical_codes(&lengths);
    // Build a decode map: (len, code) -> symbol.
    let mut decode: std::collections::HashMap<(u8, u32), usize> = std::collections::HashMap::new();
    for (s, &(c, l)) in codes.iter().enumerate() {
        if l > 0 {
            decode.insert((l, c), s);
        }
    }

    let mut br = BitReader::new(&packed[idx..]);
    let mut out = Vec::new();
    loop {
        let mut code = 0u32;
        let mut len = 0u8;
        let s = loop {
            code = (code << 1) | br.read_bit()? as u32;
            len += 1;
            if len > 32 {
                return None;
            }
            if let Some(&s) = decode.get(&(len, code)) {
                break s;
            }
        };
        if s == SYM_EOS {
            return Some(out);
        } else if s < 256 {
            out.push(s as u8);
        } else {
            let length = s - SYM_MATCH_BASE + MIN_MATCH;
            let distance = br.read_bits(13)? as usize;
            if distance == 0 || distance > out.len() {
                return None;
            }
            let start = out.len() - distance;
            for k in 0..length {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
}

/// Compression ratio `compressed_len / original_len` — the Table II
/// compressibility feature. Lower = more compressible = more regular.
///
/// Returns 1.0 for empty input (no structure to exploit).
///
/// # Example
///
/// ```
/// use baywatch_classifier::compress::compression_ratio;
///
/// let periodic = "x".repeat(500);
/// let irregular: String = (0..500).map(|i| if (i * 2654435761u64 as usize) % 3 == 0 { 'x' }
///     else if i % 7 == 3 { 'y' } else { 'z' }).collect();
/// assert!(compression_ratio(periodic.as_bytes()) < compression_ratio(irregular.as_bytes()));
/// ```
pub fn compression_ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    compress(data).len() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for input in [
            &b""[..],
            &b"a"[..],
            &b"abc"[..],
            &b"aaaaaaaaaa"[..],
            &b"abcabcabcabcabc"[..],
            &b"the quick brown fox jumps over the lazy dog"[..],
        ] {
            let packed = compress(input);
            assert_eq!(decompress(&packed).as_deref(), Some(input), "{input:?}");
        }
    }

    #[test]
    fn roundtrip_symbolized_series() {
        // Realistic x/y/z series with bursts and irregularities.
        let mut s = Vec::new();
        for i in 0..2000 {
            s.push(match i % 97 {
                0 => b'z',
                1..=3 => b'y',
                _ => b'x',
            });
        }
        let packed = compress(&s);
        assert_eq!(decompress(&packed).unwrap(), s);
        assert!(
            packed.len() < s.len() / 4,
            "compressed {} of {}",
            packed.len(),
            s.len()
        );
    }

    #[test]
    fn roundtrip_binary_data() {
        let data: Vec<u8> = (0..4096u64)
            .map(|i| ((i * 2654435761) >> 13) as u8)
            .collect();
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn periodic_compresses_better_than_random() {
        let periodic: Vec<u8> = b"xxxxxxxxxx".repeat(100);
        let pseudo_random: Vec<u8> = (0..1000u64)
            .map(|i| b"xyz"[((i * 2654435761) % 3) as usize])
            .collect();
        assert!(compression_ratio(&periodic) < compression_ratio(&pseudo_random));
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(compression_ratio(&[]), 1.0);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[0xff, 0x00, 0x01]).is_none());
        assert!(decompress(&[]).is_none());
    }

    #[test]
    fn huffman_lengths_kraft_inequality() {
        let freqs = vec![10, 1, 5, 0, 3, 7, 0, 2];
        let lengths = huffman_lengths(&freqs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft = {kraft}");
        // Unused symbols get no code.
        assert_eq!(lengths[3], 0);
        assert_eq!(lengths[6], 0);
        // More frequent symbols never get longer codes than rarer ones.
        assert!(lengths[0] <= lengths[1]);
    }

    #[test]
    fn single_symbol_stream() {
        let packed = compress(b"zzzz");
        assert_eq!(decompress(&packed).unwrap(), b"zzzz");
    }

    #[test]
    fn long_match_chains() {
        // Force matches at MAX_MATCH boundaries.
        let data = vec![b'q'; MAX_MATCH * 3 + 17];
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }
}
