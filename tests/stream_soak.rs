//! Streaming soak: a wall-clock-bounded run over the infinite
//! [`longtrace`] feed under a deliberately tight memory budget, asserting
//! on every closed tick that resident state stays under the budget and
//! that the event/pair ledger balances exactly — plus a machine-blessed
//! golden snapshot of the per-tick streaming funnel.
//!
//! The soak length defaults to a few seconds so the default test profile
//! stays fast; CI sets `BAYWATCH_SOAK_SECS=120` for the full two-minute
//! battery. The golden snapshot (`tests/golden/stream_funnel.json`)
//! follows the same bless workflow as `golden_funnel.rs`: blessed where
//! the tests run (`BAYWATCH_BLESS=1`, or automatically when absent),
//! byte-compared afterwards.
//!
//! [`longtrace`]: baywatch::netsim::longtrace

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use baywatch::core::pipeline::BaywatchConfig;
use baywatch::core::stream::{StreamConfig, StreamingHunt, TickReport};
use baywatch::core::ScheduleSpec;
use baywatch::netsim::longtrace::{LongTraceConfig, LongTraceGenerator};
use baywatch::record_from_event;

const TICK_SECONDS: u64 = 300;
const WINDOW_TICKS: u64 = 4;

fn generator(seed: u64) -> LongTraceGenerator {
    LongTraceGenerator::new(LongTraceConfig {
        seed,
        tick_seconds: TICK_SECONDS,
        ..LongTraceConfig::default()
    })
}

fn stream_config(state_budget_bytes: u64) -> StreamConfig {
    let schedule = ScheduleSpec::new(TICK_SECONDS, WINDOW_TICKS).expect("valid schedule");
    let mut config = StreamConfig::lossless(schedule);
    config.ring_capacity = 64;
    config.state_budget_bytes = state_budget_bytes;
    config.pipeline = BaywatchConfig {
        local_tau: 0.05,
        ..Default::default()
    };
    config
}

/// Per-tick invariants every soak tick must uphold.
fn assert_tick_invariants(hunt: &StreamingHunt, report: &TickReport, budget: u64) {
    assert!(
        report.resident_bytes <= budget,
        "tick {}: resident {} bytes exceeds the {} byte budget",
        report.tick,
        report.resident_bytes,
        budget
    );
    let ledger = hunt.ledger();
    assert!(
        ledger.is_balanced(),
        "tick {}: ledger out of balance: {ledger:?}",
        report.tick
    );
    assert_eq!(
        ledger.pairs_admitted,
        ledger.pairs_live + ledger.pairs_evicted,
        "tick {}: pair ledger must stay exact",
        report.tick
    );
}

#[test]
fn soak_stays_under_budget_with_exact_ledger() {
    // A budget well below the working set (~150 live pairs × ~1.3 KB):
    // eviction and admission degradation must run continuously without
    // ever unbalancing the ledger or breaching the budget.
    const BUDGET: u64 = 96 * 1024;
    const MAX_TICKS: u64 = 5_000;

    let soak_secs: u64 = std::env::var("BAYWATCH_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let deadline = Instant::now() + Duration::from_secs(soak_secs);

    let generator = generator(77);
    let mut hunt = StreamingHunt::new(stream_config(BUDGET)).expect("valid stream config");
    let mut tick = 0u64;
    let mut closed = 0u64;
    while (Instant::now() < deadline || tick < 2 * WINDOW_TICKS) && tick < MAX_TICKS {
        let records: Vec<_> = generator
            .tick_events(tick)
            .iter()
            .map(record_from_event)
            .collect();
        for report in hunt.ingest(&records) {
            assert_tick_invariants(&hunt, &report, BUDGET);
            closed += 1;
        }
        tick += 1;
    }
    if let Some(report) = hunt.finish() {
        assert_tick_invariants(&hunt, &report, BUDGET);
        closed += 1;
    }

    let ledger = *hunt.ledger();
    assert!(
        closed >= 2 * WINDOW_TICKS,
        "soak closed only {closed} ticks"
    );
    assert!(ledger.events_offered > 0);
    assert!(
        ledger.pairs_evicted > 0,
        "an over-budget soak must evict: {ledger:?}"
    );
    assert!(
        ledger.pairs_readmitted > 0,
        "reborn churn pairs must readmit: {ledger:?}"
    );
    assert!(ledger.is_balanced(), "final ledger: {ledger:?}");
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("stream_funnel.json")
}

/// Renders the per-tick funnel plus the final ledger as deterministic
/// JSON (integers and enum names only — no floats, no clocks).
fn funnel_export(reports: &[TickReport], hunt: &StreamingHunt) -> String {
    let mut out = String::from("{\n  \"ticks\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let s = &r.stats;
        out.push_str(&format!(
            "    {{\"tick\":{},\"decision\":\"{:?}\",\"events\":{},\"pairs\":{},\
             \"after_global_whitelist\":{},\"after_local_whitelist\":{},\"periodic\":{},\
             \"after_token_filter\":{},\"after_novelty\":{},\"reported\":{},\
             \"live_pairs\":{},\"resident_bytes\":{},\"evicted\":{},\
             \"detect_runs\":{},\"detect_cached\":{}}}{}\n",
            r.tick,
            r.decision,
            s.events,
            s.pairs,
            s.after_global_whitelist,
            s.after_local_whitelist,
            s.periodic,
            s.after_token_filter,
            s.after_novelty,
            s.reported,
            r.live_pairs,
            r.resident_bytes,
            r.evicted.len(),
            r.detect_runs,
            r.detect_cached,
            if i + 1 == reports.len() { "" } else { "," }
        ));
    }
    let l = hunt.ledger();
    out.push_str(&format!(
        "  ],\n  \"ledger\": {{\"events_offered\":{},\"events_admitted\":{},\
         \"events_late\":{},\"events_shed\":{},\"events_dropped_capacity\":{},\
         \"events_retired\":{},\"events_evicted\":{},\"events_resident\":{},\
         \"pairs_admitted\":{},\"pairs_live\":{},\"pairs_evicted\":{},\
         \"pairs_readmitted\":{}}}\n}}\n",
        l.events_offered,
        l.events_admitted,
        l.events_late,
        l.events_shed,
        l.events_dropped_capacity,
        l.events_retired,
        l.events_evicted,
        l.events_resident,
        l.pairs_admitted,
        l.pairs_live,
        l.pairs_evicted,
        l.pairs_readmitted
    ));
    out
}

/// Runs the fixed 12-tick streaming window under a moderate budget and
/// returns the deterministic funnel export.
fn golden_run() -> String {
    const TICKS: u64 = 12;
    let generator = generator(7);
    let mut hunt = StreamingHunt::new(stream_config(256 * 1024)).expect("valid stream config");
    let mut reports = Vec::new();
    for tick in 0..TICKS {
        let records: Vec<_> = generator
            .tick_events(tick)
            .iter()
            .map(record_from_event)
            .collect();
        reports.extend(hunt.ingest(&records));
    }
    reports.extend(hunt.finish());
    funnel_export(&reports, &hunt)
}

#[test]
fn streaming_funnel_golden_snapshot() {
    let exported = golden_run();
    assert_eq!(
        exported,
        golden_run(),
        "the streaming funnel export must be run-to-run deterministic"
    );

    let path = golden_path();
    let bless = std::env::var("BAYWATCH_BLESS").is_ok_and(|v| v == "1");
    if bless || !path.exists() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create tests/golden");
        }
        fs::write(&path, &exported).expect("write golden snapshot");
        return;
    }
    let golden = fs::read_to_string(&path).expect("read golden snapshot");
    assert_eq!(
        exported,
        golden,
        "streaming funnel deviates from {}; if intentional, re-bless with \
         BAYWATCH_BLESS=1 cargo test --test stream_soak",
        path.display()
    );
}
