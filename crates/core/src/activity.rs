//! ActivitySummary — the per-pair request history record (§VII-A/B).
//!
//! The data-extraction job reduces raw logs to one `ActivitySummary` per
//! communication pair: the time scale, the first request timestamp, the
//! sorted list of request intervals, and side-channel information (URL
//! tokens) for the token filter. The rescaling phase (§VII-B) coarsens an
//! existing summary without reprocessing raw logs — the trick that lets
//! BAYWATCH run daily, weekly and monthly analyses over months of data.

use std::collections::BTreeSet;

use crate::pair::CommunicationPair;
use crate::record::LogRecord;
use crate::CoreError;

/// Per-pair request history at a given time scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySummary {
    /// The communication pair.
    pub pair: CommunicationPair,
    /// Time scale in seconds (1 = finest).
    pub scale: u64,
    /// First request timestamp (epoch seconds, quantized to `scale`).
    pub first_timestamp: u64,
    /// Request intervals (seconds between consecutive requests, already
    /// quantized to `scale`).
    pub intervals: Vec<u64>,
    /// Distinct URL tokens observed (side channel for the token filter).
    pub url_tokens: BTreeSet<String>,
}

impl ActivitySummary {
    /// Builds a summary from the records of one pair.
    ///
    /// Records may arrive unsorted (MapReduce shuffle order) and may carry
    /// duplicate timestamps (retransmissions, log replays, clock skew
    /// folding two events onto one second); raw timestamps are sorted and
    /// deduplicated here before quantization, so degraded input yields the
    /// same summary as its clean equivalent. All records must belong to the
    /// same pair — only the first record's pair is consulted.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `records` is empty or
    /// `scale == 0`.
    pub fn from_records(records: &[LogRecord], scale: u64) -> Result<Self, CoreError> {
        if records.is_empty() {
            return Err(CoreError::InvalidConfig {
                name: "records",
                constraint: "must be non-empty",
            });
        }
        if scale == 0 {
            return Err(CoreError::InvalidConfig {
                name: "scale",
                constraint: "must be at least 1",
            });
        }
        let pair = CommunicationPair::new(&records[0].source, &records[0].domain);
        // Sort and dedupe *raw* timestamps first: an exact duplicate is one
        // event observed twice and must collapse, while two distinct raw
        // timestamps landing in the same coarse bin remain a genuine
        // zero-interval (mapped to `y` by downstream symbolization).
        let mut raw: Vec<u64> = records.iter().map(|r| r.timestamp).collect();
        raw.sort_unstable();
        raw.dedup();
        let timestamps: Vec<u64> = raw.into_iter().map(|t| t / scale * scale).collect();
        let first_timestamp = timestamps[0];
        let intervals = timestamps.windows(2).map(|w| w[1] - w[0]).collect();
        let url_tokens = records
            .iter()
            .filter(|r| !r.url_token.is_empty())
            .map(|r| r.url_token.clone())
            .collect();
        Ok(Self {
            pair,
            scale,
            first_timestamp,
            intervals,
            url_tokens,
        })
    }

    /// Number of requests summarized.
    pub fn request_count(&self) -> usize {
        self.intervals.len() + 1
    }

    /// Reconstructs the (quantized) request timestamps.
    pub fn timestamps(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.intervals.len() + 1);
        let mut t = self.first_timestamp;
        out.push(t);
        for &iv in &self.intervals {
            t += iv;
            out.push(t);
        }
        out
    }

    /// Intervals as `f64` seconds (detector input).
    pub fn intervals_f64(&self) -> Vec<f64> {
        self.intervals.iter().map(|&i| i as f64).collect()
    }

    /// Total observation span in seconds.
    pub fn span(&self) -> u64 {
        self.intervals.iter().sum()
    }

    /// Rescales the summary to a coarser time scale (§VII-B). Requests
    /// landing in the same coarse bin collapse into zero intervals, which
    /// downstream symbolization maps to `y`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `new_scale` is a
    /// positive multiple of the current scale.
    pub fn rescale(&self, new_scale: u64) -> Result<ActivitySummary, CoreError> {
        if new_scale == 0 || new_scale < self.scale || !new_scale.is_multiple_of(self.scale) {
            return Err(CoreError::InvalidConfig {
                name: "new_scale",
                constraint: "must be a positive multiple of the current scale",
            });
        }
        let timestamps: Vec<u64> = self
            .timestamps()
            .into_iter()
            .map(|t| t / new_scale * new_scale)
            .collect();
        let first_timestamp = timestamps[0];
        let intervals = timestamps.windows(2).map(|w| w[1] - w[0]).collect();
        Ok(ActivitySummary {
            pair: self.pair.clone(),
            scale: new_scale,
            first_timestamp,
            intervals,
            url_tokens: self.url_tokens.clone(),
        })
    }

    /// Merges another summary of the *same pair and scale* into this one
    /// (the merging half of §VII-B, used when daily summaries are combined
    /// into weekly/monthly ones).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if pairs or scales differ.
    pub fn merge(&self, other: &ActivitySummary) -> Result<ActivitySummary, CoreError> {
        if self.pair != other.pair {
            return Err(CoreError::InvalidConfig {
                name: "other.pair",
                constraint: "must match this summary's pair",
            });
        }
        if self.scale != other.scale {
            return Err(CoreError::InvalidConfig {
                name: "other.scale",
                constraint: "must match this summary's scale",
            });
        }
        let mut timestamps = self.timestamps();
        timestamps.extend(other.timestamps());
        timestamps.sort_unstable();
        let first_timestamp = timestamps[0];
        let intervals = timestamps.windows(2).map(|w| w[1] - w[0]).collect();
        let mut url_tokens = self.url_tokens.clone();
        url_tokens.extend(other.url_tokens.iter().cloned());
        Ok(ActivitySummary {
            pair: self.pair.clone(),
            scale: self.scale,
            first_timestamp,
            intervals,
            url_tokens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(pair: (&str, &str), times: &[u64]) -> Vec<LogRecord> {
        times
            .iter()
            .map(|&t| LogRecord::new(t, pair.0, pair.1, "tok"))
            .collect()
    }

    #[test]
    fn summary_from_unsorted_records() {
        let rs = records(("s", "d.com"), &[300, 100, 200]);
        let a = ActivitySummary::from_records(&rs, 1).unwrap();
        assert_eq!(a.first_timestamp, 100);
        assert_eq!(a.intervals, vec![100, 100]);
        assert_eq!(a.request_count(), 3);
        assert_eq!(a.timestamps(), vec![100, 200, 300]);
        assert_eq!(a.span(), 200);
    }

    #[test]
    fn quantization_at_coarse_scale() {
        let rs = records(("s", "d.com"), &[100, 161, 239]);
        let a = ActivitySummary::from_records(&rs, 60).unwrap();
        // 100->60, 161->120, 239->180
        assert_eq!(a.first_timestamp, 60);
        assert_eq!(a.intervals, vec![60, 60]);
    }

    #[test]
    fn tokens_collected_unique() {
        let mut rs = records(("s", "d.com"), &[1, 2]);
        rs[0].url_token = "update".into();
        rs[1].url_token = "update".into();
        let a = ActivitySummary::from_records(&rs, 1).unwrap();
        assert_eq!(a.url_tokens.len(), 1);
        assert!(a.url_tokens.contains("update"));
    }

    #[test]
    fn empty_token_ignored() {
        let mut rs = records(("s", "d.com"), &[1, 2]);
        rs[0].url_token = String::new();
        let a = ActivitySummary::from_records(&rs, 1).unwrap();
        assert_eq!(a.url_tokens.len(), 1);
    }

    #[test]
    fn rescale_collapses_same_bin_requests() {
        let rs = records(("s", "d.com"), &[10, 20, 70]);
        let a = ActivitySummary::from_records(&rs, 1).unwrap();
        let coarse = a.rescale(60).unwrap();
        // 10->0, 20->0, 70->60
        assert_eq!(coarse.intervals, vec![0, 60]);
        assert_eq!(coarse.scale, 60);
    }

    #[test]
    fn rescale_validates() {
        let a = ActivitySummary::from_records(&records(("s", "d"), &[0, 10]), 2).unwrap();
        assert!(a.rescale(3).is_err());
        assert!(a.rescale(0).is_err());
        assert!(a.rescale(4).is_ok());
    }

    #[test]
    fn merge_interleaves_timestamps() {
        let day1 = ActivitySummary::from_records(&records(("s", "d"), &[0, 100]), 1).unwrap();
        let day2 = ActivitySummary::from_records(&records(("s", "d"), &[50, 150]), 1).unwrap();
        let merged = day1.merge(&day2).unwrap();
        assert_eq!(merged.timestamps(), vec![0, 50, 100, 150]);
        assert_eq!(merged.intervals, vec![50, 50, 50]);
    }

    #[test]
    fn merge_rejects_mismatched() {
        let a = ActivitySummary::from_records(&records(("s", "d"), &[0, 10]), 1).unwrap();
        let b = ActivitySummary::from_records(&records(("s", "other"), &[0, 10]), 1).unwrap();
        assert!(a.merge(&b).is_err());
        let c = ActivitySummary::from_records(&records(("s", "d"), &[0, 10]), 2).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(ActivitySummary::from_records(&[], 1).is_err());
        assert!(ActivitySummary::from_records(&records(("s", "d"), &[1]), 0).is_err());
    }

    #[test]
    fn duplicate_timestamps_collapse_to_one_event() {
        let rs = records(("s", "d.com"), &[100, 200, 100, 300, 200, 100]);
        let a = ActivitySummary::from_records(&rs, 1).unwrap();
        assert_eq!(a.request_count(), 3);
        assert_eq!(a.timestamps(), vec![100, 200, 300]);
    }

    #[test]
    fn out_of_order_duplicates_match_clean_input() {
        let clean =
            ActivitySummary::from_records(&records(("s", "d"), &[100, 160, 220]), 60).unwrap();
        let messy =
            ActivitySummary::from_records(&records(("s", "d"), &[220, 100, 160, 100, 220]), 60)
                .unwrap();
        assert_eq!(messy, clean);
    }

    #[test]
    fn distinct_raw_times_in_same_bin_keep_zero_interval() {
        // 10 and 20 are different events that share the 60 s bin: the
        // coarse summary must keep the zero interval, not collapse it.
        let rs = records(("s", "d.com"), &[10, 20, 70]);
        let a = ActivitySummary::from_records(&rs, 60).unwrap();
        assert_eq!(a.intervals, vec![0, 60]);
        assert_eq!(a.request_count(), 3);
    }

    #[test]
    fn single_record_summary() {
        let a = ActivitySummary::from_records(&records(("s", "d"), &[42]), 1).unwrap();
        assert_eq!(a.request_count(), 1);
        assert!(a.intervals.is_empty());
        assert_eq!(a.span(), 0);
    }
}
