//! Fixed-capacity timestamp ring buffers for streaming ingestion.
//!
//! The streaming engine (`core::stream`) keeps one [`TimestampRing`] per
//! communication pair: a bounded, always-sorted window of *distinct* raw
//! timestamps, each carrying the multiplicity of raw events that collapsed
//! onto it. Two properties matter downstream:
//!
//! * **Losslessness inside the bound** — as long as neither the capacity
//!   nor the window retention drops an entry, the ring reproduces exactly
//!   the (timestamp, multiplicity) multiset a batch run over the same
//!   window would see, which is what makes streaming/batch equivalence
//!   provable rather than approximate.
//! * **Bounded state** — capacity overflow drops the *oldest* entries
//!   first and reports how many raw events went with them, so the caller
//!   can account for the loss instead of silently diverging.
//!
//! An [`IntervalSketch`] rides along: O(1)-updated summary statistics of
//! the inter-arrival intervals ever appended (count, min/max/sum and a
//! log₂ histogram). It is a sketch of the *admission history*, not of the
//! current window — front-evictions do not rewrite it — and is meant for
//! cheap diagnostics and prioritization, never for verdicts.

use std::collections::VecDeque;

/// One distinct timestamp with the number of raw events observed on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingEntry {
    /// Raw (unquantized) epoch timestamp in seconds.
    pub timestamp: u64,
    /// How many raw events carried exactly this timestamp.
    pub multiplicity: u32,
}

/// Outcome of one batch append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingPush {
    /// Raw events admitted into the ring by this append.
    pub appended_events: u64,
    /// Raw events dropped because the capacity bound evicted their
    /// (oldest) entries to make room.
    pub dropped_events: u64,
}

/// O(1)-updated summary of the inter-arrival intervals appended over the
/// ring's lifetime. Monotone by design: retention and capacity eviction
/// never subtract from it (that would cost O(n) per tick), so it reads as
/// "what this pair's cadence has looked like since admission".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSketch {
    /// Number of intervals observed.
    pub observed: u64,
    /// Sum of all observed intervals (seconds).
    pub sum: u64,
    /// Smallest observed interval; 0 only before anything was observed.
    pub min: u64,
    /// Largest observed interval.
    pub max: u64,
    /// Log₂ histogram: bucket `i` counts intervals in `[2^i, 2^(i+1))`,
    /// with the last bucket absorbing everything larger.
    pub log2_buckets: [u32; 16],
}

impl IntervalSketch {
    fn observe(&mut self, interval: u64) {
        if self.observed == 0 {
            self.min = interval;
            self.max = interval;
        } else {
            self.min = self.min.min(interval);
            self.max = self.max.max(interval);
        }
        self.observed += 1;
        self.sum += interval;
        let bucket = (64 - u64::leading_zeros(interval.max(1)) - 1) as usize;
        self.log2_buckets[bucket.min(self.log2_buckets.len() - 1)] += 1;
    }

    /// Mean observed interval, or `None` before any interval was seen.
    pub fn mean(&self) -> Option<f64> {
        if self.observed == 0 {
            None
        } else {
            Some(self.sum as f64 / self.observed as f64)
        }
    }
}

/// A bounded, sorted window of distinct timestamps with multiplicities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampRing {
    entries: VecDeque<RingEntry>,
    capacity: usize,
    events: u64,
    sketch: IntervalSketch,
}

impl TimestampRing {
    /// Creates an empty ring holding at most `capacity` distinct
    /// timestamps. A zero capacity is promoted to one so the ring can
    /// always hold the most recent event.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            events: 0,
            sketch: IntervalSketch::default(),
        }
    }

    /// The capacity bound (distinct timestamps).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct timestamps currently held.
    pub fn distinct_len(&self) -> usize {
        self.entries.len()
    }

    /// Total raw events currently held (sum of multiplicities).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Oldest retained timestamp.
    pub fn first_timestamp(&self) -> Option<u64> {
        self.entries.front().map(|e| e.timestamp)
    }

    /// Newest retained timestamp.
    pub fn last_timestamp(&self) -> Option<u64> {
        self.entries.back().map(|e| e.timestamp)
    }

    /// The lifetime interval sketch.
    pub fn sketch(&self) -> &IntervalSketch {
        &self.sketch
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &RingEntry> {
        self.entries.iter()
    }

    /// The retained distinct timestamps, ascending.
    pub fn timestamps(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.timestamp).collect()
    }

    /// Appends one tick's worth of folded events: `batch` must be sorted
    /// ascending by timestamp, deduplicated, and every timestamp must be
    /// strictly greater than [`TimestampRing::last_timestamp`] (ticks only
    /// move forward; the caller folds out-of-order arrivals *within* a
    /// tick before appending). Entries violating the order are skipped and
    /// their events counted as dropped rather than corrupting the sort
    /// invariant.
    ///
    /// When the capacity bound is exceeded the *oldest* entries are
    /// evicted first and their raw events are reported in
    /// [`RingPush::dropped_events`].
    pub fn append_batch(&mut self, batch: &[(u64, u32)]) -> RingPush {
        let mut push = RingPush::default();
        for &(timestamp, multiplicity) in batch {
            let events = u64::from(multiplicity);
            if let Some(last) = self.last_timestamp() {
                if timestamp <= last {
                    push.dropped_events += events;
                    continue;
                }
                self.sketch.observe(timestamp - last);
            }
            self.entries.push_back(RingEntry {
                timestamp,
                multiplicity,
            });
            self.events += events;
            push.appended_events += events;
            while self.entries.len() > self.capacity {
                if let Some(evicted) = self.entries.pop_front() {
                    let lost = u64::from(evicted.multiplicity);
                    self.events -= lost;
                    push.dropped_events += lost;
                }
            }
        }
        push
    }

    /// Drops every entry with `timestamp < cutoff` — the window-retention
    /// edge is **inclusive**: an event landing exactly on the window start
    /// is retained, matching
    /// `ScheduleSpec::in_window`'s closed lower bound. Returns how many
    /// raw events slid out.
    pub fn retain_from(&mut self, cutoff: u64) -> u64 {
        let mut dropped = 0u64;
        while let Some(front) = self.entries.front() {
            if front.timestamp >= cutoff {
                break;
            }
            let lost = u64::from(front.multiplicity);
            self.entries.pop_front();
            self.events -= lost;
            dropped += lost;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(capacity: usize, stamps: &[u64]) -> TimestampRing {
        let mut ring = TimestampRing::new(capacity);
        let batch: Vec<(u64, u32)> = stamps.iter().map(|&t| (t, 1)).collect();
        ring.append_batch(&batch);
        ring
    }

    #[test]
    fn append_keeps_sorted_distinct_timestamps() {
        let ring = ring_of(8, &[10, 20, 30]);
        assert_eq!(ring.timestamps(), vec![10, 20, 30]);
        assert_eq!(ring.distinct_len(), 3);
        assert_eq!(ring.events(), 3);
        assert_eq!(ring.first_timestamp(), Some(10));
        assert_eq!(ring.last_timestamp(), Some(30));
    }

    #[test]
    fn multiplicities_count_raw_events() {
        let mut ring = TimestampRing::new(4);
        let push = ring.append_batch(&[(10, 3), (20, 1)]);
        assert_eq!(push.appended_events, 4);
        assert_eq!(ring.events(), 4);
        assert_eq!(ring.distinct_len(), 2);
    }

    #[test]
    fn capacity_exact_fits_without_loss() {
        // Exactly `capacity` distinct timestamps: nothing may drop.
        let mut ring = TimestampRing::new(5);
        let push = ring.append_batch(&[(1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]);
        assert_eq!(push.dropped_events, 0);
        assert_eq!(ring.distinct_len(), 5);
        assert_eq!(ring.timestamps(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn capacity_plus_one_drops_exactly_the_oldest() {
        // capacity + 1 appends: exactly the oldest entry leaves, with its
        // multiplicity reported as dropped.
        let mut ring = TimestampRing::new(5);
        ring.append_batch(&[(1, 2), (2, 1), (3, 1), (4, 1), (5, 1)]);
        let push = ring.append_batch(&[(6, 1)]);
        assert_eq!(push.dropped_events, 2, "oldest entry carried 2 raw events");
        assert_eq!(ring.distinct_len(), 5);
        assert_eq!(ring.timestamps(), vec![2, 3, 4, 5, 6]);
        assert_eq!(ring.events(), 5);
    }

    #[test]
    fn retention_edge_is_inclusive() {
        // An entry exactly on the cutoff must be retained — the window
        // lower bound is closed.
        let mut ring = ring_of(8, &[99, 100, 101]);
        let dropped = ring.retain_from(100);
        assert_eq!(dropped, 1);
        assert_eq!(ring.timestamps(), vec![100, 101]);
    }

    #[test]
    fn retention_drops_everything_before_cutoff() {
        let mut ring = TimestampRing::new(8);
        ring.append_batch(&[(10, 2), (20, 1), (30, 4)]);
        let dropped = ring.retain_from(30);
        assert_eq!(dropped, 3);
        assert_eq!(ring.events(), 4);
        assert_eq!(ring.timestamps(), vec![30]);
        assert_eq!(ring.retain_from(31), 4);
        assert!(ring.is_empty());
        assert_eq!(ring.events(), 0);
    }

    #[test]
    fn out_of_order_append_is_rejected_not_corrupting() {
        let mut ring = ring_of(8, &[100]);
        let push = ring.append_batch(&[(50, 3)]);
        assert_eq!(push.dropped_events, 3);
        assert_eq!(push.appended_events, 0);
        assert_eq!(ring.timestamps(), vec![100]);
    }

    #[test]
    fn zero_capacity_promoted_to_one() {
        let mut ring = TimestampRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.append_batch(&[(1, 1), (2, 1)]);
        assert_eq!(ring.timestamps(), vec![2]);
    }

    #[test]
    fn sketch_tracks_interval_statistics() {
        let ring = ring_of(8, &[100, 160, 220, 250]);
        let sketch = ring.sketch();
        assert_eq!(sketch.observed, 3);
        assert_eq!(sketch.min, 30);
        assert_eq!(sketch.max, 60);
        assert_eq!(sketch.sum, 150);
        assert_eq!(sketch.mean(), Some(50.0));
        // 60 and 60 land in [32, 64), 30 in [16, 32).
        assert_eq!(sketch.log2_buckets[5], 2);
        assert_eq!(sketch.log2_buckets[4], 1);
    }

    #[test]
    fn sketch_survives_retention() {
        let mut ring = ring_of(8, &[100, 160, 220]);
        ring.retain_from(200);
        // Lifetime sketch: retention does not rewrite history.
        assert_eq!(ring.sketch().observed, 2);
    }

    #[test]
    fn empty_sketch_has_no_mean() {
        assert_eq!(IntervalSketch::default().mean(), None);
        assert_eq!(TimestampRing::new(4).sketch().observed, 0);
    }
}
