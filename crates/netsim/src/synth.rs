//! Synthetic beacon-series generators with the paper's noise models
//! (§VIII-A, Fig. 10).
//!
//! The robustness evaluation perturbs an ideal periodic sequence with three
//! noise sources, separately and combined:
//!
//! * **Gaussian noise** — each inter-arrival interval is jittered by
//!   `N(0, σ²)`,
//! * **missing-event noise** — each beacon is dropped with probability
//!   `p_miss` (device offline, collection gaps, network outages),
//! * **adding-event noise** — spurious events are injected at random times
//!   at rate `p_add` (extra traffic to the same destination).
//!
//! [`multi_period_burst`] additionally reproduces the Conficker pattern of
//! Fig. 2: high-frequency beacons inside bursts separated by long dormant
//! gaps.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::rngutil::gaussian;

/// Parameters of a noisy synthetic beacon sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticBeacon {
    /// True period in seconds.
    pub period: f64,
    /// Standard deviation of the Gaussian interval jitter (seconds).
    pub gaussian_sigma: f64,
    /// Probability of dropping each beacon.
    pub p_miss: f64,
    /// Expected number of *injected* events per true beacon (0.5 means one
    /// spurious event per two genuine beacons, placed uniformly over the
    /// span).
    pub add_rate: f64,
    /// Number of beacon slots before noise is applied.
    pub count: usize,
    /// Start timestamp (epoch seconds).
    pub start: u64,
}

impl Default for SyntheticBeacon {
    fn default() -> Self {
        Self {
            period: 60.0,
            gaussian_sigma: 0.0,
            p_miss: 0.0,
            add_rate: 0.0,
            count: 200,
            start: 1_000_000,
        }
    }
}

impl SyntheticBeacon {
    /// Generates the sorted timestamp sequence under the configured noise.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`, `p_miss` is outside `[0, 1)`, or
    /// `add_rate < 0`.
    pub fn generate(&self, seed: u64) -> Vec<u64> {
        assert!(self.period > 0.0, "period must be positive");
        assert!(
            (0.0..1.0).contains(&self.p_miss),
            "p_miss must be in [0, 1)"
        );
        assert!(self.add_rate >= 0.0, "add_rate must be non-negative");

        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<u64> = Vec::with_capacity(self.count);
        // The paper's Fig. 10 methodology injects noise into an ideal
        // baseline: each beacon is jittered *around its grid slot*
        // (t_n = start + n·P + ε_n), so jitter does not accumulate into a
        // random walk — exactly what "Gaussian noise injected into the
        // baseline time series" means for a periodic signal.
        let mut t_end = self.start as f64;
        for n in 0..self.count {
            let slot = self.start as f64 + n as f64 * self.period;
            t_end = slot;
            let keep = rng.random_range(0.0..1.0) >= self.p_miss;
            if keep {
                let jitter = if self.gaussian_sigma > 0.0 {
                    gaussian(&mut rng, 0.0, self.gaussian_sigma)
                } else {
                    0.0
                };
                out.push((slot + jitter).round().max(0.0) as u64);
            }
        }

        // Injected events, uniform over the generated span.
        let n_add = (self.count as f64 * self.add_rate).round() as usize;
        let end = (t_end + self.period).max(self.start as f64 + 1.0);
        for _ in 0..n_add {
            let u = rng.random_range(self.start as f64..end);
            out.push(u.round() as u64);
        }
        out.sort_unstable();
        out
    }
}

/// Conficker-style two-scale beaconing (right side of Fig. 2): `burst_len`
/// events `intra_interval` apart, then a dormant gap of `gap` seconds,
/// repeated `bursts` times.
pub fn multi_period_burst(
    start: u64,
    bursts: usize,
    burst_len: usize,
    intra_interval: f64,
    gap: f64,
    jitter_sigma: f64,
    seed: u64,
) -> Vec<u64> {
    assert!(intra_interval > 0.0 && gap > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = start as f64;
    let mut out = Vec::with_capacity(bursts * burst_len);
    for _ in 0..bursts {
        for _ in 0..burst_len {
            out.push(t.round() as u64);
            let j = if jitter_sigma > 0.0 {
                gaussian(&mut rng, 0.0, jitter_sigma)
            } else {
                0.0
            };
            t += (intra_interval + j).max(0.5);
        }
        t += gap;
    }
    out
}

/// TDSS-style trace (Fig. 6): a nominal period with substantial jitter and
/// occasional long outages, matching the interval list the paper prints
/// (mostly 360–450 s values with rare multi-thousand-second gaps).
pub fn tdss_like(start: u64, count: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = start as f64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(t.round() as u64);
        let gap = if i % 37 == 21 {
            // Occasional outage.
            rng.random_range(1_500.0..6_000.0)
        } else {
            gaussian(&mut rng, 395.0, 28.0).clamp(196.0, 700.0)
        };
        t += gap;
    }
    out
}

/// Purely random (memoryless) arrivals — the negative control.
pub fn random_arrivals(start: u64, count: usize, mean_gap: f64, seed: u64) -> Vec<u64> {
    assert!(mean_gap > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = start as f64;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(t.round() as u64);
        // Exponential inter-arrivals.
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        t += -mean_gap * u.ln();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_beacon_exact_intervals() {
        let ts = SyntheticBeacon {
            period: 30.0,
            count: 10,
            ..Default::default()
        }
        .generate(1);
        assert_eq!(ts.len(), 10);
        for w in ts.windows(2) {
            assert_eq!(w[1] - w[0], 30);
        }
    }

    #[test]
    fn missing_events_reduce_count() {
        let cfg = SyntheticBeacon {
            p_miss: 0.5,
            count: 1000,
            ..Default::default()
        };
        let ts = cfg.generate(2);
        assert!(ts.len() > 350 && ts.len() < 650, "kept {}", ts.len());
    }

    #[test]
    fn added_events_increase_count() {
        let cfg = SyntheticBeacon {
            add_rate: 0.5,
            count: 400,
            ..Default::default()
        };
        let ts = cfg.generate(3);
        assert_eq!(ts.len(), 400 + 200);
    }

    #[test]
    fn output_is_sorted() {
        let cfg = SyntheticBeacon {
            gaussian_sigma: 10.0,
            p_miss: 0.2,
            add_rate: 0.3,
            count: 500,
            ..Default::default()
        };
        let ts = cfg.generate(4);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticBeacon {
            gaussian_sigma: 5.0,
            ..Default::default()
        };
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }

    #[test]
    fn gaussian_jitter_spreads_intervals() {
        let cfg = SyntheticBeacon {
            gaussian_sigma: 5.0,
            count: 500,
            ..Default::default()
        };
        let ts = cfg.generate(5);
        let intervals: Vec<f64> = ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = intervals.iter().sum::<f64>() / intervals.len() as f64;
        let sd = (intervals.iter().map(|i| (i - mean).powi(2)).sum::<f64>()
            / intervals.len() as f64)
            .sqrt();
        assert!((mean - 60.0).abs() < 2.0, "mean = {mean}");
        assert!(sd > 3.0 && sd < 8.0, "sd = {sd}");
    }

    #[test]
    #[should_panic]
    fn p_miss_one_rejected() {
        SyntheticBeacon {
            p_miss: 1.0,
            ..Default::default()
        }
        .generate(1);
    }

    #[test]
    fn burst_pattern_structure() {
        let ts = multi_period_burst(0, 5, 10, 8.0, 600.0, 0.0, 1);
        assert_eq!(ts.len(), 50);
        // Within-burst interval 8 s.
        assert_eq!(ts[1] - ts[0], 8);
        // Gap between bursts ≈ 600 + 8.
        let gap = ts[10] - ts[9];
        assert!(gap >= 600, "gap = {gap}");
    }

    #[test]
    fn tdss_intervals_in_expected_band() {
        let ts = tdss_like(0, 200, 9);
        let intervals: Vec<u64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        let typical = intervals.iter().filter(|&&i| i < 800).count();
        assert!(typical as f64 / intervals.len() as f64 > 0.9);
        assert!(intervals.iter().all(|&i| i >= 196));
        // At least one outage.
        assert!(intervals.iter().any(|&i| i > 1_000));
    }

    #[test]
    fn random_arrivals_mean_gap() {
        let ts = random_arrivals(0, 5000, 100.0, 11);
        let span = (ts.last().unwrap() - ts[0]) as f64;
        let mean_gap = span / (ts.len() - 1) as f64;
        assert!((mean_gap - 100.0).abs() < 10.0, "mean gap = {mean_gap}");
    }
}
