//! Log-file ingestion and export.
//!
//! The paper reads BlueCoat web-proxy logs from HDFS; this module provides
//! the equivalent single-machine plumbing: a tab-separated on-disk format
//! (`timestamp \t source \t domain \t url_token`) with a streaming parser
//! that reports malformed lines instead of aborting, plus a writer for
//! round-tripping simulated traces.

use std::io::{BufRead, Write};

use crate::record::LogRecord;

/// A parse failure for one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLineError {
    /// 1-based line number.
    pub line_number: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line_number, self.reason)
    }
}

impl std::error::Error for ParseLineError {}

/// Parses one log line (`ts \t source \t domain \t token`, token optional).
pub fn parse_line(line: &str, line_number: usize) -> Result<LogRecord, ParseLineError> {
    let mut fields = line.split('\t');
    let ts = fields.next().ok_or_else(|| ParseLineError {
        line_number,
        reason: "empty line".into(),
    })?;
    let timestamp: u64 = ts.trim().parse().map_err(|_| ParseLineError {
        line_number,
        reason: format!("invalid timestamp `{ts}`"),
    })?;
    let source = fields
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| ParseLineError {
            line_number,
            reason: "missing source field".into(),
        })?;
    let domain = fields
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| ParseLineError {
            line_number,
            reason: "missing domain field".into(),
        })?;
    let token = fields.next().map(str::trim).unwrap_or("");
    Ok(LogRecord::new(timestamp, source, domain, token))
}

/// Cap on the number of [`ParseLineError`] samples kept in a
/// [`ReadOutcome`]; [`ReadOutcome::malformed_lines`] stays exact past it.
pub const ERROR_SAMPLE_LIMIT: usize = 64;

/// Outcome of reading a log stream: the good records and the bad lines.
#[derive(Debug, Clone, Default)]
pub struct ReadOutcome {
    /// Successfully parsed records.
    pub records: Vec<LogRecord>,
    /// Per-line failures (the stream is not aborted on bad lines — at
    /// 30 B events, some corruption is a certainty, cf. Challenge 2).
    /// Bounded to [`ERROR_SAMPLE_LIMIT`] samples; `malformed_lines` holds
    /// the exact count.
    pub errors: Vec<ParseLineError>,
    /// Exact number of lines that failed to parse (including any past the
    /// sample bound).
    pub malformed_lines: usize,
}

impl ReadOutcome {
    /// Counts a malformed line, retaining the error itself only while
    /// under the sample bound.
    pub fn note_error(&mut self, e: ParseLineError) {
        self.malformed_lines += 1;
        if self.errors.len() < ERROR_SAMPLE_LIMIT {
            self.errors.push(e);
        }
    }
}

/// Reads records from any `BufRead` source. Lines that are empty or start
/// with `#` are skipped. Ingest is lenient: a line that is truncated,
/// garbled, or not valid UTF-8 is counted and sampled in the outcome — it
/// never aborts the stream.
///
/// # Errors
///
/// Returns the underlying I/O error if the stream itself fails; per-line
/// parse failures are collected in the outcome instead.
///
/// # Example
///
/// ```
/// use baywatch_core::io::read_records;
///
/// let data = "100\thost-a\texample.com\tindex\n# comment\nbogus\n200\thost-b\tx.org\t\n";
/// let outcome = read_records(data.as_bytes()).unwrap();
/// assert_eq!(outcome.records.len(), 2);
/// assert_eq!(outcome.malformed_lines, 1);
/// assert_eq!(outcome.records[0].domain, "example.com");
/// ```
pub fn read_records<R: BufRead>(reader: R) -> std::io::Result<ReadOutcome> {
    let mut outcome = ReadOutcome::default();
    // Byte-wise line splitting so invalid UTF-8 degrades to a malformed
    // line (via the lossy conversion) instead of killing the whole stream.
    for (i, raw) in reader.split(b'\n').enumerate() {
        let raw = raw?;
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_line(trimmed, i + 1) {
            Ok(r) => outcome.records.push(r),
            Err(e) => outcome.note_error(e),
        }
    }
    Ok(outcome)
}

/// Writes records in the on-disk format. A `&mut` reference works as the
/// writer (the standard `impl Write for &mut W` applies).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_records<'a, W, I>(mut writer: W, records: I) -> std::io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a LogRecord>,
{
    for r in records {
        writeln!(
            writer,
            "{}\t{}\t{}\t{}",
            r.timestamp, r.source, r.domain, r.url_token
        )?;
    }
    Ok(())
}

/// Reads a log file from disk.
///
/// # Errors
///
/// Returns the I/O error on open/read failure.
pub fn read_log_file(path: impl AsRef<std::path::Path>) -> std::io::Result<ReadOutcome> {
    let f = std::fs::File::open(path)?;
    read_records(std::io::BufReader::new(f))
}

/// Writes a log file to disk.
///
/// # Errors
///
/// Returns the I/O error on create/write failure.
pub fn write_log_file(
    path: impl AsRef<std::path::Path>,
    records: &[LogRecord],
) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_records(std::io::BufWriter::new(f), records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::new(100, "host-a", "example.com", "index"),
            LogRecord::new(160, "host-a", "example.com", ""),
            LogRecord::new(200, "host-b", "other.org", "update"),
        ]
    }

    #[test]
    fn roundtrip_through_buffer() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let outcome = read_records(buf.as_slice()).unwrap();
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.records, records);
    }

    #[test]
    fn roundtrip_through_file() {
        let records = sample_records();
        let path = std::env::temp_dir().join("baywatch-io-test.log");
        write_log_file(&path, &records).unwrap();
        let outcome = read_log_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(outcome.records, records);
    }

    #[test]
    fn bad_lines_collected_not_fatal() {
        let data = "nonsense\n100\ta\tb.com\tx\n\tmissing-ts\n200\t\tb.com\tx\n300\tc\t\tx\n";
        let outcome = read_records(data.as_bytes()).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.errors.len(), 4);
        assert_eq!(outcome.malformed_lines, 4);
        assert_eq!(outcome.errors[0].line_number, 1);
        assert!(!outcome.errors[0].to_string().is_empty());
    }

    #[test]
    fn invalid_utf8_is_a_malformed_line_not_a_stream_error() {
        let mut data = b"100\ta\tb.com\tx\n".to_vec();
        data.extend_from_slice(&[0xff, 0xfe, 0x00, 0x41, b'\n']);
        data.extend_from_slice(b"200\ta\tb.com\ty\n");
        let outcome = read_records(data.as_slice()).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.malformed_lines, 1);
    }

    #[test]
    fn error_samples_are_bounded_but_count_is_exact() {
        let data: String = (0..ERROR_SAMPLE_LIMIT + 10).map(|_| "garbage\n").collect();
        let outcome = read_records(data.as_bytes()).unwrap();
        assert_eq!(outcome.errors.len(), ERROR_SAMPLE_LIMIT);
        assert_eq!(outcome.malformed_lines, ERROR_SAMPLE_LIMIT + 10);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let data = "# header\n\n100\ta\tb.com\tx\n   \n";
        let outcome = read_records(data.as_bytes()).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert!(outcome.errors.is_empty());
    }

    #[test]
    fn token_is_optional() {
        let r = parse_line("5\tsrc\tdom.com", 1).unwrap();
        assert_eq!(r.url_token, "");
        let r = parse_line("5\tsrc\tdom.com\ttok", 1).unwrap();
        assert_eq!(r.url_token, "tok");
    }

    #[test]
    fn whitespace_tolerated_in_fields() {
        let r = parse_line(" 42 \t src \t dom.com \t tok ", 1).unwrap();
        assert_eq!(r.timestamp, 42);
        assert_eq!(r.source, "src");
        assert_eq!(r.domain, "dom.com");
        assert_eq!(r.url_token, "tok");
    }

    #[test]
    fn invalid_timestamp_reports_reason() {
        let e = parse_line("abc\tsrc\tdom.com", 7).unwrap_err();
        assert_eq!(e.line_number, 7);
        assert!(e.reason.contains("timestamp"));
    }
}
