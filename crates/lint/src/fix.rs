//! Mechanical rewrites for findings that have exactly one safe repair.
//!
//! A [`Fix`] is a set of byte-range edits against the file the finding
//! lives in. Rules attach fixes only when the rewrite is *mechanical*:
//! the replacement is forced by the rule (e.g. L1's `partial_cmp(..)
//! .unwrap()` → `total_cmp(..)`, L5's policy-declared target ordering) and
//! re-linting the result must be clean and stable — applying the fixer
//! twice yields byte-identical output, which `--fix` round-trip tests
//! assert.
//!
//! Only NEW findings are fixed. Baselined and allowlisted findings were
//! deliberately accepted with a written reason; rewriting them behind the
//! author's back would erase that judgement.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::rules::Finding;

/// One byte-range replacement within a single file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Byte offset where the replaced region starts.
    pub start: usize,
    /// Byte offset one past the replaced region.
    pub end: usize,
    pub replacement: String,
}

/// All edits repairing one finding (within the finding's file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    pub edits: Vec<Edit>,
}

/// Applies every fix attached to `findings`, grouped per file, rewriting
/// files under `root` in place. Returns the number of findings fixed.
///
/// Edits within one file are applied back-to-front so earlier offsets stay
/// valid; overlapping edits are a logic error in a rule and abort the
/// whole file rather than corrupt it.
pub fn apply_fixes(root: &Path, findings: &[Finding]) -> std::io::Result<usize> {
    let mut by_file: BTreeMap<&str, Vec<(&Finding, &Edit)>> = BTreeMap::new();
    for f in findings {
        if let Some(fix) = &f.fix {
            for e in &fix.edits {
                by_file.entry(f.path.as_str()).or_default().push((f, e));
            }
        }
    }
    let mut fixed = 0usize;
    for (rel_path, mut edits) in by_file {
        let abs = root.join(rel_path);
        let mut text = fs::read_to_string(&abs)?;
        edits.sort_by_key(|e| std::cmp::Reverse(e.1.start));
        // Reject overlaps (and duplicate-range edits) before touching bytes.
        let overlapping = edits.windows(2).any(|w| w[1].1.end > w[0].1.start);
        if overlapping {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("overlapping fixes in {rel_path}; refusing to rewrite"),
            ));
        }
        let mut seen: Vec<&Finding> = Vec::new();
        for (finding, edit) in &edits {
            if edit.end > text.len()
                || !text.is_char_boundary(edit.start)
                || !text.is_char_boundary(edit.end)
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("fix out of bounds in {rel_path}; refusing to rewrite"),
                ));
            }
            text.replace_range(edit.start..edit.end, &edit.replacement);
            if !seen.iter().any(|f| std::ptr::eq(*f, *finding)) {
                seen.push(finding);
                fixed += 1;
            }
        }
        fs::write(&abs, text)?;
    }
    Ok(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding_with(path: &str, edits: Vec<Edit>) -> Finding {
        Finding {
            rule: "L1-float-ord",
            path: path.to_string(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            fix: Some(Fix { edits }),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lint-fix-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn edits_apply_back_to_front() {
        let dir = temp_dir("order");
        fs::write(dir.join("a.rs"), "aaa bbb ccc").expect("write fixture");
        let f = finding_with(
            "a.rs",
            vec![
                Edit {
                    start: 0,
                    end: 3,
                    replacement: "X".into(),
                },
                Edit {
                    start: 8,
                    end: 11,
                    replacement: "YYYY".into(),
                },
            ],
        );
        let n = apply_fixes(&dir, &[f]).expect("apply fixes");
        assert_eq!(n, 1);
        assert_eq!(
            fs::read_to_string(dir.join("a.rs")).expect("read back"),
            "X bbb YYYY"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overlapping_edits_are_refused() {
        let dir = temp_dir("overlap");
        fs::write(dir.join("a.rs"), "aaa bbb ccc").expect("write fixture");
        let f = finding_with(
            "a.rs",
            vec![
                Edit {
                    start: 0,
                    end: 5,
                    replacement: "X".into(),
                },
                Edit {
                    start: 4,
                    end: 8,
                    replacement: "Y".into(),
                },
            ],
        );
        let err = apply_fixes(&dir, &[f]).expect_err("must refuse");
        assert!(err.to_string().contains("overlapping"));
        // The file is untouched.
        assert_eq!(
            fs::read_to_string(dir.join("a.rs")).expect("read back"),
            "aaa bbb ccc"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn findings_without_fixes_are_ignored() {
        let dir = temp_dir("nofix");
        fs::write(dir.join("a.rs"), "unchanged").expect("write fixture");
        let f = Finding {
            rule: "L4-panic",
            path: "a.rs".to_string(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            fix: None,
        };
        let n = apply_fixes(&dir, &[f]).expect("apply fixes");
        assert_eq!(n, 0);
        assert_eq!(
            fs::read_to_string(dir.join("a.rs")).expect("read back"),
            "unchanged"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
