//! Domain-generation-algorithm (DGA) simulators.
//!
//! Used by the evaluation harness to produce the kinds of destinations the
//! paper observes in its traces (Tables V and VI): uniformly random
//! character soup (classic Conficker/Zeus style), hex-fragment domains
//! (`cdn.5f75b1c54f8[..]2d4.com`), and "pronounceable" DGAs that alternate
//! consonants and vowels to evade naive randomness tests.

use rand::prelude::*;
use rand::rngs::StdRng;

/// The flavour of generated domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DgaStyle {
    /// Uniform random lowercase letters (e.g. `skmnikrzhrrzcjcxwfprgt.com`).
    RandomAlpha,
    /// Long hexadecimal fragments with a service-like label
    /// (e.g. `cdn.5f75b1c54f8a02d4.com`).
    HexFragment,
    /// Alternating consonant/vowel syllables — harder for entropy-only
    /// detectors, still unusual for a 3-gram model.
    Pronounceable,
}

/// A deterministic DGA domain generator.
///
/// # Example
///
/// ```
/// use baywatch_langmodel::dga::{DgaGenerator, DgaStyle};
///
/// let mut gen = DgaGenerator::new(DgaStyle::RandomAlpha, 42);
/// let a = gen.generate();
/// let b = gen.generate();
/// assert_ne!(a, b);
/// assert!(a.ends_with(".com") || a.ends_with(".net") || a.ends_with(".pl")
///     || a.ends_with(".info") || a.ends_with(".biz"));
/// ```
#[derive(Debug, Clone)]
pub struct DgaGenerator {
    style: DgaStyle,
    rng: StdRng,
}

const DGA_TLDS: &[&str] = &[".com", ".net", ".info", ".biz", ".pl"];
const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwxz";
const VOWELS: &[u8] = b"aeiou";
const SERVICE_LABELS: &[&str] = &["cdn", "img", "www", "api", "static", "update", "setup"];

impl DgaGenerator {
    /// Creates a generator with the given style and RNG seed.
    pub fn new(style: DgaStyle, seed: u64) -> Self {
        Self {
            style,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured style.
    pub fn style(&self) -> DgaStyle {
        self.style
    }

    /// Generates the next domain name.
    pub fn generate(&mut self) -> String {
        let tld = DGA_TLDS[self.rng.random_range(0..DGA_TLDS.len())];
        match self.style {
            DgaStyle::RandomAlpha => {
                let len = self.rng.random_range(12..=24);
                let name: String = (0..len)
                    .map(|_| (b'a' + self.rng.random_range(0..26)) as char)
                    .collect();
                format!("{name}{tld}")
            }
            DgaStyle::HexFragment => {
                let label = SERVICE_LABELS[self.rng.random_range(0..SERVICE_LABELS.len())];
                let len = self.rng.random_range(16..=28);
                const HEX: &[u8; 16] = b"0123456789abcdef";
                let hex: String = (0..len)
                    .map(|_| {
                        let v = self.rng.random_range(0..16u8);
                        HEX[v as usize] as char
                    })
                    .collect();
                format!("{label}.{hex}{tld}")
            }
            DgaStyle::Pronounceable => {
                let syllables = self.rng.random_range(4..=7);
                let mut name = String::new();
                for _ in 0..syllables {
                    name.push(CONSONANTS[self.rng.random_range(0..CONSONANTS.len())] as char);
                    name.push(VOWELS[self.rng.random_range(0..VOWELS.len())] as char);
                    if self.rng.random_range(0..4) == 0 {
                        name.push(CONSONANTS[self.rng.random_range(0..CONSONANTS.len())] as char);
                    }
                }
                format!("{name}{tld}")
            }
        }
    }

    /// Generates a batch of `n` domains.
    pub fn generate_batch(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::DomainScorer;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<String> = DgaGenerator::new(DgaStyle::RandomAlpha, 7).generate_batch(10);
        let b: Vec<String> = DgaGenerator::new(DgaStyle::RandomAlpha, 7).generate_batch(10);
        assert_eq!(a, b);
        let c: Vec<String> = DgaGenerator::new(DgaStyle::RandomAlpha, 8).generate_batch(10);
        assert_ne!(a, c);
    }

    #[test]
    fn hex_style_has_service_label() {
        let mut gen = DgaGenerator::new(DgaStyle::HexFragment, 1);
        for _ in 0..20 {
            let d = gen.generate();
            let label = d.split('.').next().unwrap();
            assert!(SERVICE_LABELS.contains(&label), "label {label} in {d}");
            let frag = d.split('.').nth(1).unwrap();
            assert!(frag.bytes().all(|b| b.is_ascii_hexdigit()), "{d}");
            assert!(frag.len() >= 16);
        }
    }

    #[test]
    fn pronounceable_alternates() {
        let mut gen = DgaGenerator::new(DgaStyle::Pronounceable, 2);
        for _ in 0..20 {
            let d = gen.generate();
            let name = d.split('.').next().unwrap();
            let vowels = name.bytes().filter(|b| VOWELS.contains(b)).count();
            assert!(vowels * 3 >= name.len(), "too few vowels in {d}");
        }
    }

    #[test]
    fn all_styles_score_below_popular_domains() {
        let scorer = DomainScorer::train(corpus::training_corpus(), 3);
        let benign_avg: f64 = ["google.com", "facebook.com", "microsoft.com", "github.com"]
            .iter()
            .map(|d| scorer.score_per_char(d))
            .sum::<f64>()
            / 4.0;
        for style in [DgaStyle::RandomAlpha, DgaStyle::HexFragment] {
            let mut gen = DgaGenerator::new(style, 3);
            let avg: f64 = gen
                .generate_batch(50)
                .iter()
                .map(|d| scorer.score_per_char(d))
                .sum::<f64>()
                / 50.0;
            assert!(
                avg < benign_avg - 0.4,
                "{style:?}: dga {avg} vs benign {benign_avg}"
            );
        }
    }
}
