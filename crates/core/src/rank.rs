//! Weighted result ranking (§V-D).
//!
//! BAYWATCH condenses its indicators — periodicity strength (ACF score,
//! interval regularity), language-model score, destination popularity —
//! into a single weighted score per case so analysts can prioritize. The
//! paper weights the language model heavily for very low-probability
//! domains and awards strong periodicity (high ACF, low interval standard
//! deviation, long range); the final report keeps only cases above the
//! n-th percentile of the score distribution (the evaluation uses the
//! 90th).

use baywatch_stats::describe::percentile;
use baywatch_timeseries::detector::CandidatePeriod;

use crate::pair::CommunicationPair;

/// A candidate beaconing case after the detection and suspicion filters.
#[derive(Debug, Clone, PartialEq)]
pub struct BeaconCase {
    /// The communication pair.
    pub pair: CommunicationPair,
    /// Inter-arrival intervals (seconds).
    pub intervals: Vec<f64>,
    /// Verified candidate periods (strongest first).
    pub candidates: Vec<CandidatePeriod>,
    /// Distinct URL tokens observed for the pair.
    pub url_tokens: std::collections::BTreeSet<String>,
    /// Destination popularity (fraction of population).
    pub popularity: f64,
    /// Language-model score of the destination (per-character log-prob).
    pub lm_score: f64,
    /// Number of sources sharing this destination among the candidates.
    pub similar_sources: usize,
}

impl BeaconCase {
    /// The strongest verified period in seconds, if any.
    pub fn primary_period(&self) -> Option<f64> {
        self.candidates.first().map(|c| c.period)
    }

    /// The smallest verified period — the paper's Tables V/VI report the
    /// "smallest period" per confirmed destination.
    pub fn smallest_period(&self) -> Option<f64> {
        self.candidates
            .iter()
            .map(|c| c.period)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Coefficient of variation of the interval list (0 when undefined).
    pub fn interval_cv(&self) -> f64 {
        if self.intervals.len() < 2 {
            return 0.0;
        }
        let mean = self.intervals.iter().sum::<f64>() / self.intervals.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self
            .intervals
            .iter()
            .map(|i| (i - mean) * (i - mean))
            .sum::<f64>()
            / (self.intervals.len() - 1) as f64;
        var.sqrt() / mean
    }
}

/// Weights and threshold of the ranking filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankConfig {
    /// Weight of the periodicity-strength component.
    pub w_periodicity: f64,
    /// Weight of the language-model anomaly component.
    pub w_language: f64,
    /// Weight of the unpopularity component.
    pub w_unpopularity: f64,
    /// Weight of the long-range persistence component ("periodic over long
    /// range of time" is rewarded, §V-D).
    pub w_persistence: f64,
    /// Percentile of the score distribution above which cases are
    /// reported (paper: 90).
    pub report_percentile: f64,
    /// Popularity scale for the unpopularity component (typically the
    /// local-whitelist τ_P): destinations at or above it score 0.
    pub popularity_scale: f64,
}

impl Default for RankConfig {
    fn default() -> Self {
        Self {
            w_periodicity: 1.0,
            // The paper assigns "a higher weight to the language model
            // score for the domains with very low probabilities".
            w_language: 1.5,
            w_unpopularity: 0.5,
            w_persistence: 0.3,
            report_percentile: 90.0,
            popularity_scale: 0.01,
        }
    }
}

/// A case with its ranking score and component breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCase {
    /// The underlying case.
    pub case: BeaconCase,
    /// Final weighted score.
    pub score: f64,
    /// Periodicity-strength component in `[0, 1]`.
    pub periodicity_component: f64,
    /// Language-model anomaly component in `[0, 1]`.
    pub language_component: f64,
    /// Unpopularity component in `[0, 1]`.
    pub unpopularity_component: f64,
    /// Long-range persistence component in `[0, 1]`.
    pub persistence_component: f64,
}

/// Scores a single case under the config.
pub fn score_case(case: &BeaconCase, config: &RankConfig) -> RankedCase {
    // Periodicity strength: best ACF score damped by interval
    // irregularity — "higher score to connections with strong periodicity,
    // e.g. high ACF score, low standard deviation in the observed
    // intervals".
    let acf = case
        .candidates
        .first()
        .map(|c| c.acf_score.clamp(0.0, 1.0))
        .unwrap_or(0.0);
    let cv = case.interval_cv();
    let periodicity = acf / (1.0 + cv);

    // Language-model anomaly: map the per-character log-probability onto
    // [0, 1]. Human-registered names typically score better than −2.2 per
    // character under the 3-gram model; DGA soup lands near −3.5 and below.
    let language = ((-case.lm_score - 2.2) / 1.5).clamp(0.0, 1.0);

    // Unpopularity: 1 at popularity 0, 0 at/above the scale.
    let unpopularity = (1.0 - case.popularity / config.popularity_scale).clamp(0.0, 1.0);

    // Long-range persistence — "periodic over long range of time, since
    // these regular patterns are of more interest to the analysts":
    // log-scaled cycle count, saturating around a day of minute-level
    // beaconing (~1,000 cycles).
    let persistence =
        ((1.0 + case.intervals.len() as f64).ln() / (1.0 + 1_000.0f64).ln()).clamp(0.0, 1.0);

    let score = config.w_periodicity * periodicity
        + config.w_language * language
        + config.w_unpopularity * unpopularity
        + config.w_persistence * persistence;

    RankedCase {
        case: case.clone(),
        score,
        periodicity_component: periodicity,
        language_component: language,
        unpopularity_component: unpopularity,
        persistence_component: persistence,
    }
}

/// Scores and ranks cases (highest score first), returning the full ranked
/// list and the index cutoff of the report threshold: entries
/// `ranked[..cutoff]` are at or above the configured percentile.
pub fn rank_cases(cases: &[BeaconCase], config: &RankConfig) -> (Vec<RankedCase>, usize) {
    let mut ranked: Vec<RankedCase> = cases.iter().map(|c| score_case(c, config)).collect();
    ranked.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.case.pair.cmp(&b.case.pair))
    });
    if ranked.is_empty() {
        return (ranked, 0);
    }
    let scores: Vec<f64> = ranked.iter().map(|r| r.score).collect();
    // Non-empty by the guard above; degrade to "report nothing" rather
    // than panic if the percentile is ever unavailable.
    let Ok(threshold) = percentile(&scores, config.report_percentile) else {
        return (ranked, 0);
    };
    let cutoff = ranked.iter().take_while(|r| r.score >= threshold).count();
    (ranked, cutoff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(period: f64, acf: f64) -> CandidatePeriod {
        CandidatePeriod {
            frequency: 1.0 / period,
            period,
            power: 1.0,
            acf_score: acf,
            p_value: None,
        }
    }

    fn case(dest: &str, acf: f64, lm: f64, pop: f64) -> BeaconCase {
        BeaconCase {
            pair: CommunicationPair::new("src", dest),
            intervals: vec![60.0; 30],
            candidates: vec![candidate(60.0, acf)],
            url_tokens: Default::default(),
            popularity: pop,
            lm_score: lm,
            similar_sources: 1,
        }
    }

    #[test]
    fn dga_beacon_outranks_benign_periodic() {
        let cfg = RankConfig::default();
        let dga = score_case(&case("qzkxwv.com", 0.9, -3.8, 0.0001), &cfg);
        let benign = score_case(&case("news-portal.com", 0.9, -1.6, 0.008), &cfg);
        assert!(dga.score > benign.score);
        assert!(dga.language_component > 0.9);
        assert!(benign.language_component < 0.1);
    }

    #[test]
    fn periodicity_component_damped_by_cv() {
        let cfg = RankConfig::default();
        let mut regular = case("a.com", 0.8, -2.0, 0.0);
        regular.intervals = vec![60.0; 50];
        let mut jittery = case("b.com", 0.8, -2.0, 0.0);
        jittery.intervals = (0..50).map(|i| 30.0 + (i % 10) as f64 * 12.0).collect();
        let r = score_case(&regular, &cfg);
        let j = score_case(&jittery, &cfg);
        assert!(r.periodicity_component > j.periodicity_component);
    }

    #[test]
    fn unpopularity_component_extremes() {
        let cfg = RankConfig::default();
        assert_eq!(
            score_case(&case("x.com", 0.5, -2.0, 0.0), &cfg).unpopularity_component,
            1.0
        );
        assert_eq!(
            score_case(&case("x.com", 0.5, -2.0, 0.05), &cfg).unpopularity_component,
            0.0
        );
    }

    #[test]
    fn rank_orders_descending_with_cutoff() {
        let cases: Vec<BeaconCase> = (0..20)
            .map(|i| case(&format!("d{i}.com"), 0.05 * i as f64, -2.0, 0.001))
            .collect();
        let (ranked, cutoff) = rank_cases(&cases, &RankConfig::default());
        assert_eq!(ranked.len(), 20);
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // 90th percentile of 20 scores: top ~2-3 cases.
        assert!((1..=4).contains(&cutoff), "cutoff = {cutoff}");
    }

    #[test]
    fn empty_case_list() {
        let (ranked, cutoff) = rank_cases(&[], &RankConfig::default());
        assert!(ranked.is_empty());
        assert_eq!(cutoff, 0);
    }

    #[test]
    fn case_without_candidates_scores_zero_periodicity() {
        let mut c = case("x.com", 0.0, -2.0, 0.0);
        c.candidates.clear();
        let r = score_case(&c, &RankConfig::default());
        assert_eq!(r.periodicity_component, 0.0);
        assert!(c.primary_period().is_none());
        assert!(c.smallest_period().is_none());
    }

    #[test]
    fn smallest_period_selection() {
        let mut c = case("x.com", 0.9, -2.0, 0.0);
        c.candidates = vec![candidate(180.0, 0.9), candidate(63.0, 0.7)];
        assert_eq!(c.primary_period(), Some(180.0));
        assert_eq!(c.smallest_period(), Some(63.0));
    }

    #[test]
    fn interval_cv_degenerate_inputs() {
        let mut c = case("x.com", 0.5, -2.0, 0.0);
        c.intervals = vec![];
        assert_eq!(c.interval_cv(), 0.0);
        c.intervals = vec![10.0];
        assert_eq!(c.interval_cv(), 0.0);
        c.intervals = vec![0.0, 0.0];
        assert_eq!(c.interval_cv(), 0.0);
    }

    #[test]
    fn persistence_rewards_long_series() {
        let cfg = RankConfig::default();
        let mut short = case("a.com", 0.8, -3.0, 0.0001);
        short.intervals = vec![60.0; 10];
        let mut long = case("b.com", 0.8, -3.0, 0.0001);
        long.intervals = vec![60.0; 800];
        let s = score_case(&short, &cfg);
        let l = score_case(&long, &cfg);
        assert!(l.persistence_component > s.persistence_component);
        assert!(l.score > s.score);
    }

    #[test]
    fn deterministic_tie_break_by_pair() {
        let a = case("aaa.com", 0.5, -2.0, 0.001);
        let b = case("bbb.com", 0.5, -2.0, 0.001);
        let (ranked, _) = rank_cases(&[b, a], &RankConfig::default());
        assert_eq!(ranked[0].case.pair.destination, "aaa.com");
    }
}
