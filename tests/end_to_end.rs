//! Cross-crate integration tests: the full pipeline against the enterprise
//! simulator, mirroring the paper's operational setup (§VIII-B).

use std::collections::HashSet;

use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use baywatch::record_from_event;

fn engine() -> Baywatch {
    Baywatch::new(BaywatchConfig {
        // 100-host population: τ_P = 5% separates org-wide services
        // (~80% popularity) from victim pools (1–5 hosts).
        local_tau: 0.05,
        ..Default::default()
    })
}

fn simulator() -> EnterpriseSimulator {
    EnterpriseSimulator::new(EnterpriseConfig {
        hosts: 100,
        days: 3,
        infection_rate: 0.05,
        ..Default::default()
    })
}

#[test]
fn daily_analysis_detects_majority_of_campaigns() {
    let sim = simulator();
    let truth = sim.ground_truth();
    let mut engine = engine();

    let mut flagged: HashSet<String> = HashSet::new();
    for day in 0..sim.config().days {
        let records = sim
            .generate_day(day)
            .iter()
            .map(record_from_event)
            .collect();
        let report = engine.analyze(records);
        for rc in &report.ranked {
            flagged.insert(rc.case.pair.destination.clone());
        }
    }

    // Campaigns active in the window with frequent-enough beaconing should
    // be flagged. Low-and-slow (2 h) campaigns may legitimately need the
    // weekly pass, so require majority coverage, not totality.
    let active: Vec<&String> = truth
        .malicious_domains
        .iter()
        .filter(|d| {
            sim.campaigns()
                .iter()
                .any(|c| &c.domain == *d && c.start_day < sim.config().days)
        })
        .collect();
    let detected = active.iter().filter(|d| flagged.contains(**d)).count();
    assert!(
        detected * 2 > active.len(),
        "detected only {detected}/{} campaigns: flagged = {flagged:?}",
        active.len()
    );
}

#[test]
fn ranked_output_prioritizes_malicious_over_benign_periodic() {
    let sim = simulator();
    let truth = sim.ground_truth();
    let mut engine = engine();

    // Analyze a weekday with everything active.
    let day = sim
        .campaigns()
        .iter()
        .map(|c| c.start_day)
        .max()
        .unwrap_or(0)
        .min(sim.config().days - 1);
    let records = sim
        .generate_day(day)
        .iter()
        .map(record_from_event)
        .collect();
    let report = engine.analyze(records);

    // Mean rank position of malicious destinations must beat benign ones.
    let mut mal_ranks = Vec::new();
    let mut ben_ranks = Vec::new();
    for (i, rc) in report.ranked.iter().enumerate() {
        if truth.is_malicious(&rc.case.pair.destination) {
            mal_ranks.push(i as f64);
        } else {
            ben_ranks.push(i as f64);
        }
    }
    if !mal_ranks.is_empty() && !ben_ranks.is_empty() {
        let mal_mean = mal_ranks.iter().sum::<f64>() / mal_ranks.len() as f64;
        let ben_mean = ben_ranks.iter().sum::<f64>() / ben_ranks.len() as f64;
        assert!(
            mal_mean < ben_mean,
            "malicious mean rank {mal_mean} vs benign {ben_mean}"
        );
    } else {
        assert!(
            !mal_ranks.is_empty(),
            "no malicious destination surfaced at all"
        );
    }
}

#[test]
fn org_wide_services_never_reported() {
    let sim = simulator();
    let mut engine = engine();
    let records = sim.generate_day(0).iter().map(record_from_event).collect();
    let report = engine.analyze(records);
    // The always-on catalog services are subscribed by ~80% of hosts and
    // must be swallowed by the local whitelist.
    for rc in &report.ranked {
        assert_ne!(rc.case.pair.destination, "update.os-vendor.com");
        assert_ne!(rc.case.pair.destination, "sig.av-vendor.com");
    }
}

#[test]
fn novelty_store_deduplicates_across_days() {
    let sim = simulator();
    let mut engine = engine();
    let mut day0_reported: HashSet<(String, String)> = HashSet::new();

    let records = sim.generate_day(0).iter().map(record_from_event).collect();
    let r0 = engine.analyze(records);
    for rc in &r0.ranked {
        day0_reported.insert((
            rc.case.pair.source.clone(),
            rc.case.pair.destination.clone(),
        ));
    }

    let records = sim.generate_day(1).iter().map(record_from_event).collect();
    let r1 = engine.analyze(records);
    for rc in &r1.ranked {
        let key = (
            rc.case.pair.source.clone(),
            rc.case.pair.destination.clone(),
        );
        assert!(
            !day0_reported.contains(&key),
            "pair {key:?} re-reported despite novelty filter"
        );
    }
}

#[test]
fn weekday_weekend_pair_ratio_matches_paper_shape() {
    // §VIII-B2: 26 M pairs on weekdays vs 3.3 M on weekends (≈ 8×).
    // The simulator must reproduce a clear weekday-dominant ratio.
    let sim = simulator();
    let pairs_of = |events: Vec<baywatch::netsim::ProxyEvent>| {
        let mut set = HashSet::new();
        for e in events {
            set.insert((e.host, e.domain));
        }
        set.len()
    };
    let sim7 = EnterpriseSimulator::new(EnterpriseConfig {
        hosts: 100,
        days: 7,
        ..sim.config().clone()
    });
    let weekday = pairs_of(sim7.generate_day(1));
    let weekend = pairs_of(sim7.generate_day(5));
    assert!(
        weekday as f64 / weekend.max(1) as f64 > 3.0,
        "weekday {weekday} vs weekend {weekend}"
    );
}
