//! Table-II feature extraction for candidate beaconing cases (§VI-A).
//!
//! Each candidate case is a tuple ⟨source, destination, interval series⟩
//! augmented with the detector's outputs. The features:
//!
//! | Feature | Definition |
//! |---|---|
//! | series length | # intervals in series |
//! | period(s) | most dominant period(s) |
//! | power | power of most dominant period(s) |
//! | similar source | # sources sharing same destination |
//! | n-gram count | hist. of n-grams in symbolized series |
//! | entropy | entropy of symbolized series |
//! | compressibility | compression ratio of symbolized series |
//!
//! plus the language-model score and destination popularity that the
//! weighted ranking filter already computes.

use baywatch_stats::entropy::shannon_entropy;
use baywatch_timeseries::symbolize::{match_fraction, ngram_histogram, symbolize};

use crate::compress::compression_ratio;

/// Relative tolerance used when symbolizing intervals against dominant
/// periods.
pub const SYMBOLIZE_TOLERANCE: f64 = 0.05;
/// n-gram order used on symbolized series (paper: n = 3).
pub const SYMBOL_NGRAM: usize = 3;
/// Number of numeric features produced by [`CaseFeatures::to_vector`].
pub const N_FEATURES: usize = 14;

/// Everything the feature extractor needs to know about one candidate case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseInput {
    /// Inter-arrival intervals of the communication pair (seconds).
    pub intervals: Vec<f64>,
    /// Dominant period(s) found by the detector, strongest first (seconds).
    pub dominant_periods: Vec<f64>,
    /// Periodogram power of the strongest period.
    pub power: f64,
    /// ACF score of the strongest period.
    pub acf_score: f64,
    /// Number of distinct sources beaconing to the same destination.
    pub similar_sources: usize,
    /// Language-model score of the destination (per-character log-prob).
    pub lm_score: f64,
    /// Destination popularity: fraction of the monitored population that
    /// contacted this destination.
    pub popularity: f64,
}

/// The extracted Table-II feature set for one case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseFeatures {
    /// Number of intervals in the series.
    pub series_length: usize,
    /// Primary dominant period (0 when none).
    pub primary_period: f64,
    /// Secondary dominant period (0 when none).
    pub secondary_period: f64,
    /// Power of the primary period.
    pub power: f64,
    /// ACF periodicity strength.
    pub acf_score: f64,
    /// Sources sharing the destination.
    pub similar_sources: usize,
    /// Distinct 3-grams in the symbolized series.
    pub ngram_distinct: usize,
    /// Frequency share of the most common 3-gram.
    pub ngram_top_fraction: f64,
    /// Shannon entropy (bits) of the symbolized series.
    pub symbol_entropy: f64,
    /// Compression ratio of the symbolized series (lower = more regular).
    pub compressibility: f64,
    /// Coefficient of variation of the intervals (σ/μ).
    pub interval_cv: f64,
    /// Fraction of intervals matching a dominant period.
    pub match_fraction: f64,
    /// Language-model score of the destination.
    pub lm_score: f64,
    /// Destination popularity.
    pub popularity: f64,
}

impl CaseFeatures {
    /// Extracts the feature set from a case.
    ///
    /// # Example
    ///
    /// ```
    /// use baywatch_classifier::features::{CaseFeatures, CaseInput};
    ///
    /// let input = CaseInput {
    ///     intervals: vec![60.0; 50],
    ///     dominant_periods: vec![60.0],
    ///     power: 12.0,
    ///     acf_score: 0.95,
    ///     similar_sources: 3,
    ///     lm_score: -3.1,
    ///     popularity: 0.0001,
    /// };
    /// let f = CaseFeatures::extract(&input);
    /// assert_eq!(f.series_length, 50);
    /// assert_eq!(f.match_fraction, 1.0);
    /// assert_eq!(f.symbol_entropy, 0.0); // all-'x' series
    /// ```
    pub fn extract(input: &CaseInput) -> Self {
        let symbols = symbolize(
            &input.intervals,
            &input.dominant_periods,
            SYMBOLIZE_TOLERANCE,
        );
        let hist = ngram_histogram(&symbols, SYMBOL_NGRAM);
        let total_ngrams: usize = hist.values().sum();
        let top = hist.values().copied().max().unwrap_or(0);

        let mean = if input.intervals.is_empty() {
            0.0
        } else {
            input.intervals.iter().sum::<f64>() / input.intervals.len() as f64
        };
        let cv = if input.intervals.len() >= 2 && mean > 0.0 {
            let var = input
                .intervals
                .iter()
                .map(|i| (i - mean) * (i - mean))
                .sum::<f64>()
                / (input.intervals.len() - 1) as f64;
            var.sqrt() / mean
        } else {
            0.0
        };

        Self {
            series_length: input.intervals.len(),
            primary_period: input.dominant_periods.first().copied().unwrap_or(0.0),
            secondary_period: input.dominant_periods.get(1).copied().unwrap_or(0.0),
            power: input.power,
            acf_score: input.acf_score,
            similar_sources: input.similar_sources,
            ngram_distinct: hist.len(),
            ngram_top_fraction: if total_ngrams > 0 {
                top as f64 / total_ngrams as f64
            } else {
                0.0
            },
            symbol_entropy: shannon_entropy(symbols.iter().copied()),
            compressibility: compression_ratio(&symbols),
            interval_cv: cv,
            match_fraction: match_fraction(&symbols),
            lm_score: input.lm_score,
            popularity: input.popularity,
        }
    }

    /// Flattens the features into the fixed-size numeric vector consumed by
    /// the random forest.
    pub fn to_vector(&self) -> Vec<f64> {
        vec![
            self.series_length as f64,
            self.primary_period,
            self.secondary_period,
            self.power,
            self.acf_score,
            self.similar_sources as f64,
            self.ngram_distinct as f64,
            self.ngram_top_fraction,
            self.symbol_entropy,
            self.compressibility,
            self.interval_cv,
            self.match_fraction,
            self.lm_score,
            self.popularity,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon_input() -> CaseInput {
        CaseInput {
            intervals: vec![60.0, 60.5, 59.5, 60.1, 59.9, 60.0, 60.2, 59.8],
            dominant_periods: vec![60.0],
            power: 10.0,
            acf_score: 0.9,
            similar_sources: 2,
            lm_score: -4.0,
            popularity: 1e-5,
        }
    }

    fn irregular_input() -> CaseInput {
        CaseInput {
            intervals: vec![3.0, 400.0, 17.0, 89.0, 1200.0, 5.0, 60.0, 233.0],
            dominant_periods: vec![],
            power: 0.5,
            acf_score: 0.05,
            similar_sources: 1,
            lm_score: -1.2,
            popularity: 0.3,
        }
    }

    #[test]
    fn vector_arity_matches_constant() {
        let f = CaseFeatures::extract(&beacon_input());
        assert_eq!(f.to_vector().len(), N_FEATURES);
    }

    #[test]
    fn beacon_features_show_regularity() {
        let b = CaseFeatures::extract(&beacon_input());
        let i = CaseFeatures::extract(&irregular_input());
        assert!(b.symbol_entropy < i.symbol_entropy + 1e-9);
        assert!(b.match_fraction > i.match_fraction);
        assert!(b.interval_cv < i.interval_cv);
    }

    #[test]
    fn compressibility_favors_long_regular_series() {
        let long_regular = CaseInput {
            intervals: vec![30.0; 500],
            dominant_periods: vec![30.0],
            ..beacon_input()
        };
        // Pseudo-random symbol pattern of the same length.
        let irregular_long = CaseInput {
            intervals: (0..500)
                .map(|i| [30.0, 45.0, 61.0, 97.0][((i * 2654435761u64 as usize) >> 3) % 4])
                .collect(),
            dominant_periods: vec![30.0],
            ..beacon_input()
        };
        let r = CaseFeatures::extract(&long_regular);
        let x = CaseFeatures::extract(&irregular_long);
        assert!(r.compressibility < x.compressibility);
    }

    #[test]
    fn empty_intervals_safe() {
        let empty = CaseInput {
            intervals: vec![],
            dominant_periods: vec![],
            power: 0.0,
            acf_score: 0.0,
            similar_sources: 0,
            lm_score: 0.0,
            popularity: 0.0,
        };
        let f = CaseFeatures::extract(&empty);
        assert_eq!(f.series_length, 0);
        assert_eq!(f.symbol_entropy, 0.0);
        assert_eq!(f.ngram_distinct, 0);
        assert_eq!(f.match_fraction, 0.0);
        assert!(f.to_vector().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn secondary_period_picked_up() {
        let multi = CaseInput {
            dominant_periods: vec![8.0, 10_800.0],
            ..beacon_input()
        };
        let f = CaseFeatures::extract(&multi);
        assert_eq!(f.primary_period, 8.0);
        assert_eq!(f.secondary_period, 10_800.0);
    }

    #[test]
    fn ngram_top_fraction_of_pure_series() {
        let f = CaseFeatures::extract(&CaseInput {
            intervals: vec![60.0; 100],
            dominant_periods: vec![60.0],
            ..beacon_input()
        });
        // All 3-grams are "xxx".
        assert_eq!(f.ngram_distinct, 1);
        assert_eq!(f.ngram_top_fraction, 1.0);
    }
}
