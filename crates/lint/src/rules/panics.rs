//! L4 — non-test library code must not `unwrap`/`expect`.
//!
//! A panic mid-window tears down a whole MapReduce task; PR 2's
//! fault-tolerant engine contains the blast radius, but the paper's
//! 30-billion-event scale means "rare" panics happen daily, and each one
//! costs a bisection sweep. Deeper than the `clippy::unwrap_used` warn
//! gate, this rule *fails CI* on new sites and demands a written
//! justification for the survivors: every allowlist entry in `lint.toml`
//! must say why the invariant cannot fail (e.g. a mutex that cannot be
//! poisoned because its critical sections never panic).
//!
//! Scope: `src/**` of every crate (not `src/bin/**`, not tests, benches,
//! or examples), outside `#[cfg(test)]`/`#[test]` regions. Doc-comment
//! examples never match — the lexer drops comments.

use super::{snippet_at, Finding};
use crate::syntax::File;
use crate::walk::SourceFile;

pub fn check(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let panicky = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !panicky || file.in_test_code(i) {
            continue;
        }
        findings.push(Finding {
            rule: "L4-panic",
            path: sf.rel_path.clone(),
            line: t.line,
            snippet: snippet_at(lines, t.line),
            message: format!(
                ".{}() can panic mid-window; return an error, provide a default, or \
                 allowlist with a written justification for why it cannot fail",
                t.text
            ),
            fix: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::check_file;
    use crate::walk::{Section, SourceFile};
    use std::path::PathBuf;

    fn file_in(rel: &str, section: Section) -> SourceFile {
        SourceFile {
            abs_path: PathBuf::from(rel),
            rel_path: rel.to_string(),
            crate_name: rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .map(str::to_string),
            section,
        }
    }

    #[test]
    fn unwrap_and_expect_in_lib_code_are_flagged() {
        let src = "fn f() { x.unwrap(); y.expect(\"always\"); }";
        let f = check_file(&file_in("crates/langmodel/src/x.rs", Section::Lib), src);
        assert_eq!(
            f.iter().filter(|f| f.rule == "L4-panic").count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn test_code_fallible_variants_and_doc_comments_pass() {
        let src = "/// ```\n/// f().unwrap();\n/// ```\n\
                   fn f() -> Option<u32> { x.unwrap_or(3); y.unwrap_or_default(); None }\n\
                   #[cfg(test)]\nmod tests { fn t() { f().unwrap(); } }";
        let f = check_file(&file_in("crates/langmodel/src/x.rs", Section::Lib), src);
        assert!(f.iter().all(|f| f.rule != "L4-panic"), "{f:?}");
    }

    #[test]
    fn bins_tests_and_examples_are_exempt() {
        let src = "fn main() { x.unwrap(); }";
        for section in [
            Section::Bin,
            Section::Tests,
            Section::Examples,
            Section::Benches,
        ] {
            let f = check_file(&file_in("crates/bench/src/bin/x.rs", section), src);
            assert!(f.iter().all(|f| f.rule != "L4-panic"));
        }
    }
}
