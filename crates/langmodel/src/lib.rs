//! Character n-gram language model for DGA domain detection
//! (BAYWATCH §V-C).
//!
//! Botnets commonly use *domain generation algorithms* (DGAs) to rendezvous
//! with their command-and-control servers: the bot derives a large pool of
//! pseudo-random names and tries them until one resolves. Such names avoid
//! collisions with existing registrations by construction, which makes their
//! character statistics starkly different from human-chosen names.
//!
//! BAYWATCH trains a 3-gram character model (with Kneser-Ney smoothing for
//! unseen n-grams) on a corpus of popular domains and scores each candidate
//! destination with `S = log P(D)`. Low scores flag algorithmically
//! generated names; the paper's example scores
//! `skmnikrzhrrzcjcxwfprgt.com` at −45.2 versus −7.4 for `google.com`.
//!
//! ```
//! use baywatch_langmodel::{corpus, DomainScorer};
//!
//! let scorer = DomainScorer::train(corpus::training_corpus(), 3);
//! let human = scorer.score("google.com");
//! let dga = scorer.score("skmnikrzhrrzcjcxwfprgt.com");
//! assert!(human > dga + 10.0, "human {human} vs dga {dga}");
//! ```

pub mod corpus;
pub mod dga;
pub mod ngram;

pub use ngram::NgramModel;

/// Convenience wrapper: a trained n-gram model specialized to scoring
/// domain names (lower-cased, scored including a terminal marker).
#[derive(Debug, Clone)]
pub struct DomainScorer {
    model: NgramModel,
}

impl DomainScorer {
    /// Trains a scorer of the given n-gram order on an iterator of domain
    /// names.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` (propagated from [`NgramModel::train`]).
    pub fn train<I, S>(names: I, order: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self {
            model: NgramModel::train(names, order),
        }
    }

    /// Total log-probability `log P(D)` of the (lower-cased) domain name —
    /// the score `S` of §V-C. More negative ⇒ more anomalous.
    pub fn score(&self, domain: &str) -> f64 {
        self.model.log_prob(&domain.to_lowercase())
    }

    /// Length-normalized score (`log P(D)` divided by the number of scored
    /// transitions); useful to compare domains of different lengths.
    pub fn score_per_char(&self, domain: &str) -> f64 {
        self.model.log_prob_per_char(&domain.to_lowercase())
    }

    /// The underlying model.
    pub fn model(&self) -> &NgramModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorer_separates_dga_from_human() {
        let scorer = DomainScorer::train(corpus::training_corpus(), 3);
        // Paper's worked examples (§V-C).
        let google = scorer.score("google.com");
        let dga = scorer.score("skmnikrzhrrzcjcxwfprgt.com");
        assert!(google > -25.0, "google scored {google}");
        assert!(dga < google - 15.0, "dga scored {dga}, google {google}");
    }

    #[test]
    fn scorer_is_case_insensitive() {
        let scorer = DomainScorer::train(corpus::training_corpus(), 3);
        assert_eq!(scorer.score("GOOGLE.COM"), scorer.score("google.com"));
    }

    #[test]
    fn per_char_score_comparable_across_lengths() {
        let scorer = DomainScorer::train(corpus::training_corpus(), 3);
        // A long human-readable domain should out-score a short DGA one per
        // char even though its total log-prob is lower.
        let long_human = scorer.score_per_char("internationalbusinessmachines.com");
        let short_dga = scorer.score_per_char("xq7zk.com");
        assert!(long_human > short_dga);
    }
}
