//! Log replay: export a simulated day to the on-disk log format, read it
//! back (tolerating corruption), and analyze it — the single-machine
//! equivalent of the paper's HDFS ingestion path.
//!
//! ```text
//! cargo run --release --example log_replay
//! ```

#![warn(clippy::unwrap_used)]

use baywatch::core::io::{read_log_file, write_log_file};
use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use baywatch::record_from_event;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Simulate and export. -----------------------------------------
    let sim = EnterpriseSimulator::new(EnterpriseConfig {
        hosts: 80,
        days: 1,
        infection_rate: 0.08,
        ..Default::default()
    });
    let records: Vec<_> = sim.generate_day(0).iter().map(record_from_event).collect();

    let path = std::env::temp_dir().join("baywatch-replay.log");
    write_log_file(&path, &records)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "exported {} records to {} ({:.1} KiB)",
        records.len(),
        path.display(),
        bytes as f64 / 1024.0
    );

    // ---- Corrupt a few lines, as real collection pipelines do. ---------
    let mut content = std::fs::read_to_string(&path)?;
    content.insert_str(0, "# proxy log export\ngarbage line that is not a record\n");
    content.push_str("1234\tbroken-record-missing-fields\n");
    std::fs::write(&path, content)?;

    // ---- Read back and analyze. -----------------------------------------
    let outcome = read_log_file(&path)?;
    println!(
        "read back {} records, {} malformed lines tolerated",
        outcome.records.len(),
        outcome.errors.len()
    );
    for e in &outcome.errors {
        println!("  skipped {e}");
    }
    assert_eq!(outcome.records.len(), records.len());

    let mut engine = Baywatch::new(BaywatchConfig {
        local_tau: 0.05,
        ..Default::default()
    });
    let report = engine.analyze(outcome.records);
    println!(
        "\nanalysis: {} pairs, {} periodic, {} reported",
        report.stats.pairs, report.stats.periodic, report.stats.reported
    );
    for rc in report.reported() {
        println!("  {}  (score {:.2})", rc.case.pair, rc.score);
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
