//! Fig. 10(a–d) — noise robustness of the detection algorithm.
//!
//! The paper injects noise into a synthetic periodic baseline and measures
//! two quantities while sweeping the Gaussian noise level σ:
//!
//! * **γ_d** — the detection rate (fraction of trials where the true period
//!   is recovered),
//! * **δ_d** — the relative error of the recovered period.
//!
//! Panels: (a) Gaussian jitter only — the paper reports reliable detection
//! up to σ ≈ 30 (on a 60 s period); (b) missing-event noise alone;
//! (c) adding-event noise alone; (d) Gaussian combined with missing/adding
//! noise — the paper reports the reliability threshold dropping to ≈ 11
//! and ≈ 7, worst with p_miss = 0.75.

#![warn(clippy::unwrap_used)]

use baywatch_bench::{f, render_table, save_json};
use baywatch_netsim::synth::SyntheticBeacon;
use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};

// The provided paper text truncates Fig. 10's baseline parameters; a 300 s
// baseline period makes the reported σ axis (thresholds at ~30 for Gaussian
// noise, ~7–11 combined) correspond to 2–10% relative jitter, the regime a
// spectral detector can physically distinguish.
const PERIOD: f64 = 300.0;
const TRIALS: u64 = 20;
const COUNT: usize = 240;

/// Returns (gamma_d = detection rate, delta_d = mean relative period error
/// over detected trials).
fn measure(sigma: f64, p_miss: f64, add_rate: f64) -> (f64, f64) {
    let detector = PeriodicityDetector::new(DetectorConfig::default());
    let mut detected = 0usize;
    let mut err_sum = 0.0;
    for trial in 0..TRIALS {
        let ts = SyntheticBeacon {
            period: PERIOD,
            gaussian_sigma: sigma,
            p_miss,
            add_rate,
            count: COUNT,
            start: 1_000_000,
        }
        .generate(trial * 104_729 + 17);
        let Ok(report) = detector.detect(&ts) else {
            continue;
        };
        let hit = report
            .candidates
            .iter()
            .map(|c| (c.period - PERIOD).abs() / PERIOD)
            .fold(f64::INFINITY, f64::min);
        if hit <= 0.10 {
            detected += 1;
            err_sum += hit;
        }
    }
    let gamma = detected as f64 / TRIALS as f64;
    let delta = if detected > 0 {
        err_sum / detected as f64
    } else {
        f64::NAN
    };
    (gamma, delta)
}

fn sweep(label: &str, p_miss: f64, add_rate: f64, sigmas: &[f64]) -> Vec<(f64, f64, f64)> {
    println!("--- {label} ---");
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &sigma in sigmas {
        let (gamma, delta) = measure(sigma, p_miss, add_rate);
        rows.push(vec![
            f(sigma, 0),
            f(gamma, 2),
            if delta.is_nan() {
                "-".into()
            } else {
                f(delta * 100.0, 2) + "%"
            },
        ]);
        out.push((sigma, gamma, delta));
    }
    println!(
        "{}",
        render_table(
            &["sigma (s)", "gamma_d (detect rate)", "delta_d (period err)"],
            &rows
        )
    );
    out
}

/// Largest σ at which the detection rate is still ≥ 0.8.
fn threshold(curve: &[(f64, f64, f64)]) -> f64 {
    curve
        .iter()
        .filter(|(_, gamma, _)| *gamma >= 0.8)
        .map(|(sigma, _, _)| *sigma)
        .fold(0.0, f64::max)
}

fn main() {
    println!(
        "=== Fig. 10: noise robustness (period {PERIOD} s, {COUNT} beacons, {TRIALS} trials/cell) ===\n"
    );
    let sigmas = [
        0.0, 2.0, 5.0, 8.0, 11.0, 15.0, 20.0, 30.0, 45.0, 65.0, 90.0, 120.0, 150.0,
    ];

    let a = sweep("(a) Gaussian noise only", 0.0, 0.0, &sigmas);
    let b1 = sweep(
        "(b) missing events p=0.25 (no jitter sweep baseline)",
        0.25,
        0.0,
        &sigmas,
    );
    let c1 = sweep("(c) adding events rate=0.5", 0.0, 0.5, &sigmas);
    let d25 = sweep("(d) Gaussian + missing p=0.25", 0.25, 0.0, &sigmas);
    let d50 = sweep("(d) Gaussian + missing p=0.50", 0.50, 0.0, &sigmas);
    let d75 = sweep("(d) Gaussian + missing p=0.75", 0.75, 0.0, &sigmas);
    let dadd = sweep("(d) Gaussian + adding rate=0.75", 0.0, 0.75, &sigmas);

    println!("--- reliability thresholds (largest sigma with gamma_d >= 0.8) ---");
    let rows = vec![
        vec![
            "Gaussian only".into(),
            f(threshold(&a), 0),
            "~30 (paper)".into(),
        ],
        vec!["+ missing p=0.25".into(), f(threshold(&d25), 0), "".into()],
        vec!["+ missing p=0.50".into(), f(threshold(&d50), 0), "".into()],
        vec![
            "+ missing p=0.75".into(),
            f(threshold(&d75), 0),
            "~7-11 (paper, worst case)".into(),
        ],
        vec!["+ adding 0.75".into(), f(threshold(&dadd), 0), "".into()],
    ];
    println!(
        "{}",
        render_table(&["noise mix", "sigma threshold", "paper reference"], &rows)
    );

    // Shape assertions: clean detection at low sigma; combined noise
    // degrades earlier than Gaussian-only.
    assert!(a[0].1 >= 0.95, "clean beacons must be detected");
    assert!(
        threshold(&d75) <= threshold(&a),
        "combined noise should not out-survive Gaussian-only"
    );

    save_json(
        "fig10_noise",
        &[
            ("a_gaussian", a),
            ("b_missing25", b1),
            ("c_adding50", c1),
            ("d_miss25", d25),
            ("d_miss50", d50),
            ("d_miss75", d75),
            ("d_add75", dadd),
        ],
    );
}
