//! A deterministic circuit breaker.
//!
//! The state machine follows the production shape of the prodigy
//! `error_policy` blocks (SNIPPETS.md): a **Closed** breaker admits
//! everything and counts failures; crossing either a consecutive-failure
//! threshold or a failure-*rate* threshold trips it **Open**, which
//! rejects everything until a cooldown elapses; the first admission after
//! the cooldown moves it to **HalfOpen**, where a bounded probe budget
//! (`half_open_requests`) is admitted — enough consecutive probe
//! successes re-**Close** the breaker, any probe failure re-**Open**s it
//! and restarts the cooldown.
//!
//! ```text
//!              failures ≥ threshold, or
//!              rate ≥ failure_rate over ≥ min_samples
//!   ┌────────┐ ───────────────────────────────────────► ┌────────┐
//!   │ Closed │                                          │  Open  │
//!   └────────┘ ◄───────────────┐      cooldown elapsed  └────────┘
//!        ▲                     │            │
//!        │ successes ≥         │            ▼
//!        │ success_threshold   │      ┌──────────┐
//!        └─────────────────────┴───── │ HalfOpen │ ──► Open (any failure)
//!                                     └──────────┘
//! ```
//!
//! Time is read exclusively through the injected
//! [`Clock`](baywatch_obs::Clock), so a test driving a
//! [`ManualClock`](baywatch_obs::ManualClock) observes byte-identical
//! transition sequences on every run.

use std::sync::Arc;

use baywatch_obs::{Clock, ManualClock, MetricsRegistry};

/// Bound on the retained transition log: enough for any test scenario,
/// small enough that a flapping breaker cannot grow without bound.
const TRANSITION_LOG_LIMIT: usize = 64;

/// Thresholds and budgets for a [`CircuitBreaker`].
///
/// The defaults mirror the prodigy `error_policy` exemplar
/// (SNIPPETS.md): 5 consecutive failures or a 20 % failure rate (over at
/// least 20 samples) trips open, a 60 s cooldown precedes half-open, 3
/// half-open probes are admitted and 2 probe successes re-close.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open. `0` disables the
    /// consecutive-count trigger.
    pub failure_threshold: u32,
    /// Failure-rate cutoff in `[0, 1]` over the observation window.
    /// `0.0` disables the rate trigger.
    pub failure_rate: f64,
    /// Minimum observations before the rate trigger applies, so a single
    /// early failure cannot trip a rate of 1.0.
    pub min_samples: u32,
    /// Consecutive half-open probe successes that re-close the breaker.
    pub success_threshold: u32,
    /// Probe admissions budgeted per half-open period.
    pub half_open_requests: u32,
    /// Nanoseconds the breaker stays Open before probing half-open.
    pub cooldown_nanos: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            failure_rate: 0.2,
            min_samples: 20,
            success_threshold: 2,
            half_open_requests: 3,
            cooldown_nanos: 60_000_000_000,
        }
    }
}

impl BreakerConfig {
    /// The effective half-open probe budget: at least one probe must be
    /// admitted or an Open breaker could never recover.
    pub fn probe_budget(&self) -> u32 {
        self.half_open_requests.max(1)
    }

    /// The effective re-close threshold (at least one success).
    pub fn close_budget(&self) -> u32 {
        self.success_threshold.max(1)
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting everything; counting failures.
    #[default]
    Closed,
    /// Rejecting everything until the cooldown elapses.
    Open,
    /// Admitting a bounded probe budget to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label used in metrics names and logs.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// One recorded state transition, stamped with the injected clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Clock reading when the transition happened.
    pub at_nanos: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// Additive lifetime counters for one breaker. Merging two stats structs
/// field-wise equals the stats of the concatenated event sequence, which
/// is what makes registry merges exact (see the property tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Calls to [`CircuitBreaker::allow`] that returned `true`.
    pub admitted: u64,
    /// Calls to [`CircuitBreaker::allow`] that returned `false`.
    pub rejected: u64,
    /// Failures recorded.
    pub failures: u64,
    /// Successes recorded.
    pub successes: u64,
    /// Transitions into Open.
    pub opened: u64,
    /// Transitions into HalfOpen.
    pub half_opened: u64,
    /// Transitions into Closed (recoveries; the initial state is not
    /// counted).
    pub closed: u64,
    /// Half-open probe admissions (a subset of `admitted`).
    pub probes: u64,
}

impl BreakerStats {
    /// Total state transitions of any kind.
    pub fn transitions(&self) -> u64 {
        self.opened + self.half_opened + self.closed
    }

    /// Field-wise sum.
    pub fn merge(&mut self, other: &BreakerStats) {
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.failures += other.failures;
        self.successes += other.successes;
        self.opened += other.opened;
        self.half_opened += other.half_opened;
        self.closed += other.closed;
        self.probes += other.probes;
    }

    /// Registers nonzero counters under `prefix` in `registry`.
    ///
    /// Zero-valued counters are *not* registered, so a breaker that never
    /// saw a failure leaves the registry — and therefore the deterministic
    /// JSON export — byte-identical to a run without breakers at all
    /// (the same gating discipline as the `dlq.*` counters).
    pub fn record_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        let put = |name: &str, value: u64| {
            if value > 0 {
                registry.counter(&format!("{prefix}.{name}")).add(value);
            }
        };
        put("admitted", self.admitted);
        put("rejected", self.rejected);
        put("failures", self.failures);
        put("successes", self.successes);
        put("opened", self.opened);
        put("half_opened", self.half_opened);
        put("closed", self.closed);
        put("probes", self.probes);
    }
}

/// A deterministic Closed/Open/HalfOpen circuit breaker.
///
/// Call [`allow`](Self::allow) before attempting the guarded operation;
/// report the outcome with [`record_success`](Self::record_success) /
/// [`record_failure`](Self::record_failure). The breaker is single-owner
/// mutable state (wrap it yourself if you need sharing) and reads time
/// only through the injected clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    clock: Arc<dyn Clock>,
    state: BreakerState,
    /// Consecutive failures since the last success (Closed only).
    consecutive_failures: u32,
    /// Observations in the current rate window (Closed only).
    window_total: u64,
    /// Failures in the current rate window (Closed only).
    window_failures: u64,
    /// Probes admitted in the current half-open period.
    half_open_probes: u32,
    /// Probe successes in the current half-open period.
    half_open_successes: u32,
    /// Clock reading at the last transition into Open.
    opened_at: u64,
    stats: BreakerStats,
    transitions: Vec<Transition>,
}

impl CircuitBreaker {
    /// A breaker driven by `clock`, starting Closed.
    pub fn new(config: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        CircuitBreaker {
            config,
            clock,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            window_total: 0,
            window_failures: 0,
            half_open_probes: 0,
            half_open_successes: 0,
            opened_at: 0,
            stats: BreakerStats::default(),
            transitions: Vec::new(),
        }
    }

    /// A breaker on a fresh [`ManualClock`] frozen at zero — convenient
    /// for tests and for pure failure-count (no cooldown) use.
    pub fn with_manual_clock(config: BreakerConfig) -> Self {
        Self::new(config, Arc::new(ManualClock::new()))
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// The configuration this breaker runs under.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// The retained transition log (bounded; oldest entries are kept).
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Drains the transition log, handing ownership to the caller — the
    /// integration sites use this to emit per-transition span events.
    pub fn take_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.transitions)
    }

    /// Asks whether the next operation may proceed.
    ///
    /// Closed always admits. Open admits nothing until
    /// `cooldown_nanos` have elapsed since the trip, at which point the
    /// breaker moves to HalfOpen and this call consumes the first probe
    /// slot. HalfOpen admits up to [`BreakerConfig::probe_budget`]
    /// probes per period and rejects beyond that.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.stats.admitted += 1;
                true
            }
            BreakerState::Open => {
                let now = self.clock.now_nanos();
                if now.saturating_sub(self.opened_at) >= self.config.cooldown_nanos {
                    self.transition(BreakerState::HalfOpen, now);
                    self.half_open_probes = 1;
                    self.half_open_successes = 0;
                    self.stats.probes += 1;
                    self.stats.admitted += 1;
                    true
                } else {
                    self.stats.rejected += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.half_open_probes < self.config.probe_budget() {
                    self.half_open_probes += 1;
                    self.stats.probes += 1;
                    self.stats.admitted += 1;
                    true
                } else {
                    self.stats.rejected += 1;
                    false
                }
            }
        }
    }

    /// Records a successful guarded operation.
    pub fn record_success(&mut self) {
        self.stats.successes += 1;
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                self.window_total += 1;
            }
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.config.close_budget() {
                    let now = self.clock.now_nanos();
                    self.transition(BreakerState::Closed, now);
                    self.reset_windows();
                }
            }
            // A success reported while Open (e.g. an operation that was
            // in flight when the breaker tripped) is counted but does not
            // move the state machine.
            BreakerState::Open => {}
        }
    }

    /// Records a failed guarded operation.
    pub fn record_failure(&mut self) {
        self.stats.failures += 1;
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                self.window_total += 1;
                self.window_failures += 1;
                if self.count_tripped() || self.rate_tripped() {
                    self.trip_open();
                }
            }
            // Any half-open probe failure re-opens and restarts the
            // cooldown.
            BreakerState::HalfOpen => self.trip_open(),
            BreakerState::Open => {}
        }
    }

    fn count_tripped(&self) -> bool {
        self.config.failure_threshold > 0
            && self.consecutive_failures >= self.config.failure_threshold
    }

    fn rate_tripped(&self) -> bool {
        self.config.failure_rate > 0.0
            && self.window_total >= u64::from(self.config.min_samples)
            // Integer-free of rounding surprises: f ≥ rate·n compared as
            // exact IEEE doubles, identical across builds.
            && (self.window_failures as f64) >= self.config.failure_rate * (self.window_total as f64)
    }

    fn trip_open(&mut self) {
        let now = self.clock.now_nanos();
        self.opened_at = now;
        self.transition(BreakerState::Open, now);
        self.reset_windows();
    }

    fn reset_windows(&mut self) {
        self.consecutive_failures = 0;
        self.window_total = 0;
        self.window_failures = 0;
        self.half_open_probes = 0;
        self.half_open_successes = 0;
    }

    fn transition(&mut self, to: BreakerState, at_nanos: u64) {
        let from = self.state;
        self.state = to;
        match to {
            BreakerState::Open => self.stats.opened += 1,
            BreakerState::HalfOpen => self.stats.half_opened += 1,
            BreakerState::Closed => self.stats.closed += 1,
        }
        if self.transitions.len() < TRANSITION_LOG_LIMIT {
            self.transitions.push(Transition { at_nanos, from, to });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            failure_rate: 0.0,
            min_samples: 0,
            success_threshold: 2,
            half_open_requests: 2,
            cooldown_nanos: 1_000,
        }
    }

    #[test]
    fn closed_admits_and_counts() {
        let mut b = CircuitBreaker::with_manual_clock(fast_config());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.stats().admitted, 1);
        assert_eq!(b.stats().successes, 1);
    }

    #[test]
    fn consecutive_failures_trip_open() {
        let mut b = CircuitBreaker::with_manual_clock(fast_config());
        for _ in 0..2 {
            assert!(b.allow());
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open rejects before the cooldown");
        assert_eq!(b.stats().rejected, 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::with_manual_clock(fast_config());
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "2 < threshold after reset");
    }

    #[test]
    fn rate_threshold_trips_after_min_samples() {
        let config = BreakerConfig {
            failure_threshold: 0,
            failure_rate: 0.5,
            min_samples: 4,
            ..fast_config()
        };
        let mut b = CircuitBreaker::with_manual_clock(config);
        // Alternate success/failure: rate sits at exactly 0.5 but the
        // window is too small until the 4th observation.
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "2/4 ≥ 0.5 at min_samples");
    }

    #[test]
    fn cooldown_then_half_open_probe_recovery() {
        let clock = Arc::new(ManualClock::new());
        let mut b = CircuitBreaker::new(fast_config(), clock.clone());
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        clock.advance(1_000);
        assert!(b.allow(), "cooldown elapsed: first probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert!(b.allow(), "second probe within budget");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "2 probe successes close");
        assert_eq!(b.stats().closed, 1);
        assert_eq!(b.stats().probes, 2);
    }

    #[test]
    fn half_open_probe_budget_is_bounded() {
        let clock = Arc::new(ManualClock::new());
        let mut b = CircuitBreaker::new(fast_config(), clock.clone());
        for _ in 0..3 {
            b.record_failure();
        }
        clock.advance(1_000);
        assert!(b.allow());
        assert!(b.allow());
        assert!(!b.allow(), "probe budget (2) exhausted");
        assert_eq!(b.stats().probes, 2);
    }

    #[test]
    fn half_open_failure_reopens_and_restarts_cooldown() {
        let clock = Arc::new(ManualClock::new());
        let mut b = CircuitBreaker::new(fast_config(), clock.clone());
        for _ in 0..3 {
            b.record_failure();
        }
        clock.advance(1_000);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "cooldown restarted at the probe failure");
        clock.advance(1_000);
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.stats().opened, 2);
        assert_eq!(b.stats().half_opened, 2);
    }

    #[test]
    fn transition_log_is_stamped_and_bounded() {
        let clock = Arc::new(ManualClock::new());
        let mut b = CircuitBreaker::new(fast_config(), clock.clone());
        for _ in 0..3 {
            b.record_failure();
        }
        clock.advance(1_000);
        let _ = b.allow();
        b.record_success();
        b.record_success();
        let log = b.take_transitions();
        assert_eq!(
            log,
            vec![
                Transition {
                    at_nanos: 0,
                    from: BreakerState::Closed,
                    to: BreakerState::Open
                },
                Transition {
                    at_nanos: 1_000,
                    from: BreakerState::Open,
                    to: BreakerState::HalfOpen
                },
                Transition {
                    at_nanos: 1_000,
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Closed
                },
            ]
        );
        assert!(b.transitions().is_empty(), "take drains the log");
    }

    #[test]
    fn metrics_are_gated_on_nonzero() {
        let registry = MetricsRegistry::new();
        let quiet = BreakerStats::default();
        quiet.record_metrics(&registry, "resilience.breaker");
        assert_eq!(
            registry.snapshot().counters.len(),
            0,
            "an idle breaker must not perturb the registry"
        );
        let mut b = CircuitBreaker::with_manual_clock(fast_config());
        assert!(b.allow());
        b.record_success();
        b.stats().record_metrics(&registry, "resilience.breaker");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["resilience.breaker.admitted"], 1);
        assert_eq!(snap.counters["resilience.breaker.successes"], 1);
        assert!(!snap.counters.contains_key("resilience.breaker.opened"));
    }

    #[test]
    fn stats_merge_is_fieldwise_sum() {
        let mut a = BreakerStats {
            admitted: 1,
            rejected: 2,
            failures: 3,
            successes: 4,
            opened: 5,
            half_opened: 6,
            closed: 7,
            probes: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.admitted, 2);
        assert_eq!(a.probes, 16);
        assert_eq!(a.transitions(), 36);
    }

    #[test]
    fn zero_probe_budget_still_recovers() {
        let config = BreakerConfig {
            half_open_requests: 0,
            success_threshold: 0,
            ..fast_config()
        };
        let clock = Arc::new(ManualClock::new());
        let mut b = CircuitBreaker::new(config, clock.clone());
        for _ in 0..3 {
            b.record_failure();
        }
        clock.advance(1_000);
        assert!(b.allow(), "probe budget is clamped to ≥ 1");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "close budget clamped to ≥ 1");
    }
}
