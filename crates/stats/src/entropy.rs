//! Shannon entropy of symbol sequences.
//!
//! The investigation phase of BAYWATCH (§VI, Table II) symbolizes the
//! interval series of a candidate case into a three-letter alphabet
//! (`x` = interval matches a dominant period, `y` = zero interval,
//! `z` = otherwise) and uses the entropy of the symbolized series as a
//! classifier feature: a strongly periodic beacon yields a near-degenerate
//! symbol distribution, hence low entropy.

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy (base 2, in bits) of the empirical symbol distribution of
/// `sequence`.
///
/// Returns `0.0` for an empty sequence (the degenerate distribution carries
/// no information).
///
/// # Example
///
/// ```
/// use baywatch_stats::entropy::shannon_entropy;
///
/// // A perfectly periodic symbolized series is all 'x': zero entropy.
/// assert_eq!(shannon_entropy("xxxxxxxx".bytes()), 0.0);
///
/// // A uniform two-symbol sequence carries one bit per symbol.
/// let h = shannon_entropy("xzxzxzxz".bytes());
/// assert!((h - 1.0).abs() < 1e-12);
/// ```
pub fn shannon_entropy<T, I>(sequence: I) -> f64
where
    T: Eq + Hash,
    I: IntoIterator<Item = T>,
{
    let mut counts: HashMap<T, u64> = HashMap::new();
    let mut total: u64 = 0;
    for item in sequence {
        *counts.entry(item).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    // Float addition is not associative, and HashMap iteration order is
    // unspecified, so summing straight off `values()` could differ by an
    // ulp between runs. Sorting the counts first pins the summation order
    // regardless of hash seeding or item type.
    let mut sorted: Vec<u64> = counts.into_values().collect();
    sorted.sort_unstable();
    sorted
        .into_iter()
        .map(|c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Entropy of an explicit probability distribution (base 2, in bits).
///
/// Probabilities that are zero contribute nothing; the input need not be
/// normalized — it is renormalized internally.
///
/// # Panics
///
/// Panics if any weight is negative or the weights sum to zero.
pub fn distribution_entropy(weights: &[f64]) -> f64 {
    let sum: f64 = weights.iter().sum();
    assert!(
        weights.iter().all(|&w| w >= 0.0) && sum > 0.0,
        "weights must be non-negative and not all zero"
    );
    weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / sum;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sequence_zero_entropy() {
        let empty: Vec<u8> = vec![];
        assert_eq!(shannon_entropy(empty), 0.0);
    }

    #[test]
    fn single_symbol_zero_entropy() {
        assert_eq!(shannon_entropy([1u8; 100]), 0.0);
    }

    #[test]
    fn uniform_alphabet_max_entropy() {
        // Four equally likely symbols -> 2 bits.
        let seq = [0u8, 1, 2, 3].repeat(25);
        assert!((shannon_entropy(seq) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_less_than_uniform() {
        let skewed = "xxxxxxxz";
        let uniform = "xzxzxzxz";
        assert!(shannon_entropy(skewed.bytes()) < shannon_entropy(uniform.bytes()));
    }

    #[test]
    fn three_symbol_beacon_case() {
        // A realistic symbolized series: mostly 'x' with occasional 'z'
        // should sit well below log2(3) ≈ 1.585 bits.
        let series = "xxxxzxxxxxxxzxxxxxxxxzxxxx";
        let h = shannon_entropy(series.bytes());
        assert!(h > 0.0 && h < 1.0, "h = {h}");
    }

    #[test]
    fn distribution_entropy_normalizes() {
        // (2, 2) behaves like (0.5, 0.5).
        assert!((distribution_entropy(&[2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(distribution_entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn distribution_entropy_rejects_negative() {
        distribution_entropy(&[0.5, -0.5]);
    }

    #[test]
    fn generic_over_item_types() {
        let words = ["x", "y", "x", "y"];
        assert!((shannon_entropy(words) - 1.0).abs() < 1e-12);
        let nums = [1u64, 1, 1, 1];
        assert_eq!(shannon_entropy(nums), 0.0);
    }
}
