//! Retry with exponential backoff and deterministic seeded jitter.
//!
//! A [`RetryPolicy`] turns an attempt number into a backoff delay with no
//! wall-clock reads: the exponential curve is pure integer arithmetic
//! (`base · multiplier^attempt`, saturating, capped), and the jitter is
//! drawn from a `StdRng` stream seeded from `(seed, stream, attempt)` —
//! the same inputs always produce the same delay, bit-for-bit, in debug
//! and `--release` builds alike. Callers decide what a "delay" means:
//! the MapReduce engine sleeps for real, the tests advance a
//! [`ManualClock`](baywatch_obs::ManualClock) and assert on the exact
//! timestamps.
//!
//! Full jitter over the upper half of the exponential window
//! (`[exp/2, exp]`, AWS-style "equal jitter") keeps retries from
//! synchronizing across workers while preserving the exponential floor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential backoff parameters plus a jitter seed.
///
/// The default policy is **disarmed** (`base_nanos == 0`): every delay is
/// zero, which preserves the pre-resilience behavior of the retry loops
/// it replaced. Arm it by setting a nonzero base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (attempt numbers run
    /// `1..=max_retries`).
    pub max_retries: u32,
    /// First-retry delay in nanoseconds; `0` disarms backoff entirely.
    pub base_nanos: u64,
    /// Exponential growth factor per attempt (clamped to ≥ 1).
    pub multiplier: u32,
    /// Upper bound on any single delay; `0` means uncapped.
    pub cap_nanos: u64,
    /// When false, delays are the raw exponential values (no jitter).
    pub jitter: bool,
    /// Seed for the jitter stream. Two policies with the same seed
    /// produce identical schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_nanos: 0,
            multiplier: 2,
            cap_nanos: 1_000_000_000,
            jitter: true,
            seed: 0xBA1_57A7E,
        }
    }
}

impl RetryPolicy {
    /// True when the policy produces nonzero delays.
    pub fn is_armed(&self) -> bool {
        self.base_nanos > 0 && self.max_retries > 0
    }

    /// The raw (un-jittered) exponential delay for `attempt` (1-based):
    /// `min(base · multiplier^(attempt-1), cap)`, saturating.
    pub fn raw_backoff_nanos(&self, attempt: u32) -> u64 {
        if self.base_nanos == 0 || attempt == 0 {
            return 0;
        }
        let factor = u128::from(self.multiplier.max(1));
        // 2^127 dwarfs any u64 cap; exponents beyond 127 would only
        // saturate harder.
        let exp = factor.saturating_pow((attempt - 1).min(127));
        let raw = u128::from(self.base_nanos).saturating_mul(exp);
        let capped = u64::try_from(raw).unwrap_or(u64::MAX);
        if self.cap_nanos > 0 {
            capped.min(self.cap_nanos)
        } else {
            capped
        }
    }

    /// The jittered delay for `attempt` (1-based) on `stream`.
    ///
    /// Distinct streams (e.g. one per task) decorrelate workers that fail
    /// in lockstep; the same `(seed, stream, attempt)` triple always
    /// yields the same delay. With jitter enabled the delay is drawn
    /// uniformly from `[exp/2, exp]` using integer arithmetic only.
    pub fn backoff_nanos(&self, attempt: u32, stream: u64) -> u64 {
        let exp = self.raw_backoff_nanos(attempt);
        if exp == 0 || !self.jitter {
            return exp;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, stream, attempt));
        let low = exp / 2;
        low + rng.random_range(0..=(exp - low))
    }

    /// The full delay schedule for one task on `stream`: delays for
    /// attempts `1..=max_retries`.
    pub fn schedule(&self, stream: u64) -> Vec<u64> {
        (1..=self.max_retries)
            .map(|attempt| self.backoff_nanos(attempt, stream))
            .collect()
    }

    /// Total nanoseconds a task that exhausts every retry would back off.
    pub fn total_backoff_nanos(&self, stream: u64) -> u64 {
        self.schedule(stream)
            .into_iter()
            .fold(0u64, u64::saturating_add)
    }
}

/// SplitMix64-style finalizer mixing the three schedule inputs into one
/// RNG seed. Stable by construction: changing it would change every
/// locked backoff schedule, so treat it as part of the wire format.
fn mix(seed: u64, stream: u64, attempt: u32) -> u64 {
    let mut x = seed
        ^ stream.rotate_left(17)
        ^ (u64::from(attempt) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_nanos: 1_000,
            multiplier: 2,
            cap_nanos: 6_000,
            jitter: false,
            seed: 7,
        }
    }

    #[test]
    fn default_policy_is_disarmed_and_free() {
        let p = RetryPolicy::default();
        assert!(!p.is_armed());
        assert_eq!(p.backoff_nanos(1, 0), 0);
        assert_eq!(p.schedule(9), vec![0, 0]);
        assert_eq!(p.total_backoff_nanos(9), 0);
    }

    #[test]
    fn raw_curve_is_exponential_and_capped() {
        let p = armed();
        assert_eq!(p.raw_backoff_nanos(1), 1_000);
        assert_eq!(p.raw_backoff_nanos(2), 2_000);
        assert_eq!(p.raw_backoff_nanos(3), 4_000);
        assert_eq!(p.raw_backoff_nanos(4), 6_000, "capped");
        assert_eq!(p.raw_backoff_nanos(0), 0, "attempt 0 is the first try");
    }

    #[test]
    fn uncapped_curve_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            cap_nanos: 0,
            max_retries: 200,
            ..armed()
        };
        assert_eq!(p.raw_backoff_nanos(200), u64::MAX);
        assert_eq!(p.total_backoff_nanos(0), u64::MAX);
    }

    #[test]
    fn jitter_stays_in_the_equal_jitter_window() {
        let p = RetryPolicy {
            jitter: true,
            ..armed()
        };
        for attempt in 1..=4 {
            for stream in 0..32 {
                let exp = p.raw_backoff_nanos(attempt);
                let d = p.backoff_nanos(attempt, stream);
                assert!(d >= exp / 2 && d <= exp, "{d} outside [{}, {exp}]", exp / 2);
            }
        }
    }

    #[test]
    fn same_inputs_same_schedule() {
        let p = RetryPolicy {
            jitter: true,
            ..armed()
        };
        assert_eq!(p.schedule(42), p.schedule(42));
        assert_ne!(
            p.schedule(42),
            p.schedule(43),
            "streams must decorrelate (true for these parameters)"
        );
    }

    #[test]
    fn same_seed_and_failure_schedule_give_identical_retry_timestamps() {
        // Satellite: backoff determinism. Replay the same failure
        // schedule twice against independently constructed policies and
        // clocks; the virtual retry timestamps must match exactly. The
        // delay math is integer-only and the jitter stream is seeded, so
        // the same vector is produced by debug and `--release` builds
        // (the CI soak job diffs the two profiles' schedules for real).
        use baywatch_obs::{Clock, ManualClock};
        let failure_schedule = [true, true, false, true, true, true];
        let replay = || {
            let p = RetryPolicy {
                max_retries: 6,
                base_nanos: 500_000,
                multiplier: 3,
                cap_nanos: 10_000_000,
                jitter: true,
                seed: 0xC0FFEE,
            };
            let clock = ManualClock::new();
            let mut timestamps = Vec::new();
            let mut attempt = 0;
            for &failed in &failure_schedule {
                if failed {
                    attempt += 1;
                    clock.advance(p.backoff_nanos(attempt, 11));
                    timestamps.push(clock.now_nanos());
                } else {
                    attempt = 0;
                }
            }
            timestamps
        };
        let first = replay();
        assert_eq!(first, replay());
        assert_eq!(first.len(), 5);
        assert!(first.windows(2).all(|w| w[0] < w[1]), "clock is monotone");
    }

    #[test]
    fn delays_are_pure_functions_of_their_inputs() {
        // Each (seed, stream, attempt) triple seeds a fresh RNG, so the
        // order and interleaving of queries cannot perturb any delay —
        // the property that makes retry timestamps reproducible across
        // builds and across concurrent workers.
        let p = RetryPolicy {
            max_retries: 3,
            base_nanos: 1_000_000,
            multiplier: 2,
            cap_nanos: 0,
            jitter: true,
            seed: 0xDECAF,
        };
        let forward: Vec<u64> = (1..=3).map(|a| p.backoff_nanos(a, 5)).collect();
        let backward: Vec<u64> = (1..=3).rev().map(|a| p.backoff_nanos(a, 5)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        let other_seed = RetryPolicy { seed: 0xFEED, ..p };
        assert_ne!(p.schedule(5), other_seed.schedule(5), "seed must matter");
    }
}
