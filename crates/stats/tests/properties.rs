//! Property-based tests of the statistical substrate.

use baywatch_stats::describe::{mean, percentile, std_dev, Summary};
use baywatch_stats::dist::{Normal, StudentsT};
use baywatch_stats::entropy::shannon_entropy;
use baywatch_stats::special::{betainc_reg, erf, gammainc_reg, inv_norm_cdf};
use baywatch_stats::ttest::{one_sample_ttest, Alternative};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, 2..200)
}

proptest! {
    /// CDFs are monotone non-decreasing and bounded to [0, 1].
    #[test]
    fn normal_cdf_monotone(mu in -100.0..100.0f64, sigma in 0.1..50.0f64,
                           a in -500.0..500.0f64, b in -500.0..500.0f64) {
        let n = Normal::new(mu, sigma).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (ca, cb) = (n.cdf(lo), n.cdf(hi));
        prop_assert!(ca <= cb + 1e-12);
        prop_assert!((0.0..=1.0).contains(&ca));
        prop_assert!((0.0..=1.0).contains(&cb));
    }

    /// Quantile is the right inverse of the CDF.
    #[test]
    fn normal_quantile_inverse(mu in -10.0..10.0f64, sigma in 0.5..5.0f64, p in 0.001..0.999f64) {
        let n = Normal::new(mu, sigma).unwrap();
        prop_assert!((n.cdf(n.quantile(p)) - p).abs() < 1e-9);
    }

    /// Student-t CDF symmetry: F(-x) = 1 - F(x).
    #[test]
    fn t_cdf_symmetry(dof in 1.0..200.0f64, x in 0.0..50.0f64) {
        let t = StudentsT::new(dof).unwrap();
        prop_assert!((t.cdf(-x) + t.cdf(x) - 1.0).abs() < 1e-10);
    }

    /// Regularized incomplete beta is monotone in x and within [0, 1].
    #[test]
    fn betainc_monotone(a in 0.1..20.0f64, b in 0.1..20.0f64, x in 0.0..1.0f64, y in 0.0..1.0f64) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let (ia, ib) = (betainc_reg(a, b, lo), betainc_reg(a, b, hi));
        prop_assert!(ia <= ib + 1e-10);
        prop_assert!((0.0..=1.0).contains(&ia));
    }

    /// Regularized incomplete gamma is monotone in x and within [0, 1].
    #[test]
    fn gammainc_monotone(a in 0.1..30.0f64, x in 0.0..100.0f64, y in 0.0..100.0f64) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let (pa, pb) = (gammainc_reg(a, lo), gammainc_reg(a, hi));
        prop_assert!(pa <= pb + 1e-10);
        prop_assert!((0.0..=1.0).contains(&pb));
    }

    /// erf is odd and bounded.
    #[test]
    fn erf_odd_bounded(x in -10.0..10.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
    }

    /// inv_norm_cdf round-trips through the normal CDF.
    #[test]
    fn probit_roundtrip(p in 0.0001..0.9999f64) {
        let x = inv_norm_cdf(p);
        let n = Normal::standard();
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    /// Percentiles are order statistics: bounded by min/max, monotone in q.
    #[test]
    fn percentile_properties(sample in finite_sample(), q1 in 0.0..100.0f64, q2 in 0.0..100.0f64) {
        let mn = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (pl, ph) = (
            percentile(&sample, lo).unwrap(),
            percentile(&sample, hi).unwrap(),
        );
        prop_assert!(pl <= ph + 1e-9);
        prop_assert!(pl >= mn - 1e-9 && ph <= mx + 1e-9);
    }

    /// The mean sits within [min, max]; std_dev is non-negative.
    #[test]
    fn summary_consistency(sample in finite_sample()) {
        let s = Summary::of(&sample).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.q25 <= s.median + 1e-9 && s.median <= s.q75 + 1e-9);
        prop_assert!((s.mean - mean(&sample).unwrap()).abs() < 1e-9);
        prop_assert!((s.std_dev - std_dev(&sample).unwrap()).abs() < 1e-9);
    }

    /// Shifting a sample shifts the t statistic's sign coherently: testing
    /// against a value above the max always yields a negative statistic.
    #[test]
    fn ttest_sign_coherent(sample in prop::collection::vec(-1000.0..1000.0f64, 3..50)) {
        let mx = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let r = one_sample_ttest(&sample, mx + 10.0, Alternative::TwoSided).unwrap();
        prop_assert!(r.statistic <= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    /// Entropy is non-negative and maximal for distinct symbols.
    #[test]
    fn entropy_bounds(symbols in prop::collection::vec(0u8..4, 1..500)) {
        let h = shannon_entropy(symbols.iter().copied());
        prop_assert!(h >= 0.0);
        prop_assert!(h <= 2.0 + 1e-9, "4-symbol alphabet caps at 2 bits");
    }
}
