//! Streaming (single-pass) statistics.
//!
//! The paper's deployment processes tens of millions of connection pairs
//! per day; per-pair statistics (interval means, variances, extrema) must
//! be computable in one pass without buffering the raw intervals. This
//! module provides Welford-style online accumulators:
//!
//! * [`RunningStats`] — count, mean, variance, min, max in O(1) memory,
//! * [`ExponentialSmoother`] — EWMA level tracking for drift detection
//!   across analysis windows (e.g. a beacon slowly changing its period).

/// Welford online accumulator for mean/variance/extrema.
///
/// # Example
///
/// ```
/// use baywatch_stats::streaming::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (denominator n; 0 when n < 1).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (denominator n−1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observed value (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (σ/μ), 0 when undefined.
    pub fn cv(&self) -> f64 {
        if self.count < 2 || self.mean == 0.0 {
            0.0
        } else {
            self.sample_std() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (parallel aggregation —
    /// the shape MapReduce combiners need).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialSmoother {
    alpha: f64,
    level: Option<f64>,
}

impl ExponentialSmoother {
    /// Creates a smoother with weight `alpha` in `(0, 1]` for the newest
    /// observation.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, level: None }
    }

    /// Feeds an observation, returning the updated level.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.level {
            None => x,
            Some(l) => l + self.alpha * (x - l),
        };
        self.level = Some(next);
        next
    }

    /// Current level, if any observation has been fed.
    pub fn level(&self) -> Option<f64> {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let data = [3.1, 4.7, 2.2, 8.8, 5.5, 6.1, 0.4];
        let s: RunningStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 0.4);
        assert_eq!(s.max(), 8.8);
    }

    #[test]
    fn empty_and_single_value_degenerate() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        let mut s = RunningStats::new();
        s.push(5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.mean(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let seq: RunningStats = all.iter().copied().collect();
        let a: RunningStats = all[..37].iter().copied().collect();
        let b: RunningStats = all[37..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        assert!((merged.sample_variance() - seq.sample_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let data: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let mut empty = RunningStats::new();
        empty.merge(&data);
        assert_eq!(empty.count(), 3);
        let mut d2 = data;
        d2.merge(&RunningStats::new());
        assert_eq!(d2.count(), 3);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_of_regular_intervals_is_small() {
        let s: RunningStats = [60.0, 60.2, 59.8, 60.1, 59.9].into_iter().collect();
        assert!(s.cv() < 0.01);
    }

    #[test]
    fn ewma_tracks_level_shift() {
        let mut e = ExponentialSmoother::new(0.3);
        assert_eq!(e.level(), None);
        for _ in 0..50 {
            e.update(60.0);
        }
        assert!((e.level().unwrap() - 60.0).abs() < 1e-9);
        // Period drifts to 90: the level follows.
        for _ in 0..50 {
            e.update(90.0);
        }
        assert!((e.level().unwrap() - 90.0).abs() < 0.01);
    }

    #[test]
    fn ewma_first_value_initializes() {
        let mut e = ExponentialSmoother::new(0.1);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_bad_alpha() {
        ExponentialSmoother::new(0.0);
    }
}
