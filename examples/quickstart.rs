//! Quickstart: detect a beacon hiding in a day of noisy traffic.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![warn(clippy::unwrap_used)]

use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::record::LogRecord;
use baywatch::netsim::synth::{random_arrivals, SyntheticBeacon};

fn main() {
    // ---- Build a tiny synthetic window. ------------------------------
    // One infected host beacons to a DGA domain every 60 s with jitter and
    // 10% packet loss; a dozen healthy hosts browse irregularly.
    let mut records = Vec::new();

    let beacon = SyntheticBeacon {
        period: 60.0,
        gaussian_sigma: 2.0,
        p_miss: 0.10,
        add_rate: 0.05,
        count: 300,
        start: 1_700_000_000,
    };
    for t in beacon.generate(7) {
        records.push(LogRecord::new(t, "laptop-042", "xkqzvwrtbpl.com", "c2a91f"));
    }

    for h in 0..12 {
        let host = format!("host-{h:03}");
        for t in random_arrivals(1_700_000_000, 150, 240.0, 100 + h) {
            records.push(LogRecord::new(
                t,
                &host,
                format!("site-{}.example.org", h % 5),
                "index",
            ));
        }
    }
    println!("window: {} events from 13 hosts", records.len());

    // ---- Run the pipeline. -------------------------------------------
    // τ_P is relaxed because this demo population has 13 hosts, not 130 K.
    let mut engine = Baywatch::new(BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    });
    let report = engine.analyze(records);

    let s = report.stats;
    println!("\n--- filter funnel (Fig. 3 of the paper) ---");
    println!("events                 {:>8}", s.events);
    println!("communication pairs    {:>8}", s.pairs);
    println!("after global whitelist {:>8}", s.after_global_whitelist);
    println!("after local whitelist  {:>8}", s.after_local_whitelist);
    println!("periodic (verified)    {:>8}", s.periodic);
    println!("after token filter     {:>8}", s.after_token_filter);
    println!("after novelty          {:>8}", s.after_novelty);
    println!("reported (top decile)  {:>8}", s.reported);

    println!("\n--- ranked cases ---");
    for (i, rc) in report.ranked.iter().enumerate() {
        let period = rc
            .case
            .primary_period()
            .map(|p| format!("{p:.1}s"))
            .unwrap_or_else(|| "-".into());
        println!(
            "#{:<2} score {:.3}  period {:>8}  lm {:>6.2}  {}",
            i + 1,
            rc.score,
            period,
            rc.case.lm_score,
            rc.case.pair
        );
    }

    let top = &report.ranked[0];
    assert_eq!(
        top.case.pair.destination, "xkqzvwrtbpl.com",
        "the injected beacon should rank first"
    );
    println!("\nOK: the injected 60 s beacon to xkqzvwrtbpl.com ranks first.");
}
