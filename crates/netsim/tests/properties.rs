//! Property-based tests of the traffic simulator.

use baywatch_netsim::dns::cache_filter;
use baywatch_netsim::malware::MalwareProfile;
use baywatch_netsim::synth::{multi_period_burst, random_arrivals, SyntheticBeacon};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Synthetic beacons are sorted, respect the start bound, and have the
    /// expected count under each noise knob.
    #[test]
    fn synthetic_beacon_invariants(
        period in 1.0..5000.0f64,
        sigma in 0.0..100.0f64,
        p_miss in 0.0..0.9f64,
        add_rate in 0.0..2.0f64,
        count in 1usize..500,
        seed in any::<u64>(),
    ) {
        let cfg = SyntheticBeacon {
            period,
            gaussian_sigma: sigma,
            p_miss,
            add_rate,
            count,
            start: 1_000_000,
        };
        let ts = cfg.generate(seed);
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "unsorted");
        let expected_max = count + (count as f64 * add_rate).round() as usize;
        prop_assert!(ts.len() <= expected_max);
        // With p_miss = 0 every slot emits, so at least `count` events.
        if p_miss == 0.0 {
            prop_assert!(ts.len() >= count);
        }
    }

    /// The same seed always reproduces the same trace.
    #[test]
    fn beacon_deterministic(seed in any::<u64>()) {
        let cfg = SyntheticBeacon { gaussian_sigma: 3.0, p_miss: 0.2, add_rate: 0.3, ..Default::default() };
        prop_assert_eq!(cfg.generate(seed), cfg.generate(seed));
    }

    /// Burst traces contain exactly bursts × burst_len events, sorted.
    #[test]
    fn burst_structure(bursts in 1usize..20, burst_len in 1usize..20,
                       intra in 1.0..100.0f64, gap in 100.0..10_000.0f64, seed in any::<u64>()) {
        let ts = multi_period_burst(0, bursts, burst_len, intra, gap, 0.0, seed);
        prop_assert_eq!(ts.len(), bursts * burst_len);
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Random arrivals have roughly exponential spacing with the requested
    /// mean (within loose statistical bounds).
    #[test]
    fn random_arrivals_mean(mean_gap in 10.0..1000.0f64, seed in any::<u64>()) {
        let n = 2_000;
        let ts = random_arrivals(0, n, mean_gap, seed);
        let span = (ts[ts.len() - 1] - ts[0]) as f64;
        let measured = span / (n - 1) as f64;
        prop_assert!((measured - mean_gap).abs() < mean_gap * 0.2,
            "measured {measured} vs requested {mean_gap}");
    }

    /// DNS cache output is a subsequence with gaps of at least the TTL.
    #[test]
    fn cache_filter_invariants(
        gaps in prop::collection::vec(1u64..500, 1..300),
        ttl in 1u64..2000,
    ) {
        let mut requests = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in gaps {
            requests.push(t);
            t += g;
        }
        let logged = cache_filter(&requests, ttl);
        prop_assert!(!logged.is_empty());
        prop_assert_eq!(logged[0], requests[0]);
        for w in logged.windows(2) {
            prop_assert!(w[1] - w[0] >= ttl, "cache let a query through early");
        }
        // Subsequence check.
        let mut it = requests.iter();
        for l in &logged {
            prop_assert!(it.any(|r| r == l), "{l} not in original requests");
        }
    }

    /// All malware schedules stay inside their day window and are sorted.
    #[test]
    fn malware_schedules_bounded(start in 0u64..1_000_000_000, seed in any::<u64>()) {
        const DAY: u64 = 86_400;
        for profile in [
            MalwareProfile::Zeus { period: 180.0 },
            MalwareProfile::ZeroAccess { period: 929.0 },
            MalwareProfile::Tdss,
            MalwareProfile::Conficker,
            MalwareProfile::LowAndSlow { period: 7200.0 },
        ] {
            let ts = profile.schedule(start, DAY, seed);
            prop_assert!(!ts.is_empty(), "{profile:?}");
            prop_assert!(*ts.first().unwrap() >= start);
            prop_assert!(*ts.last().unwrap() < start + DAY);
            prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
