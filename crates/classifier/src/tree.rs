//! CART decision trees (binary splits, Gini impurity) over numeric
//! features — the building block of the random forest (§VI-B of the paper,
//! citing Breiman 2001).

use rand::prelude::*;
use rand::rngs::StdRng;

/// A binary class label: `false` = benign, `true` = malicious in the
/// BAYWATCH investigation phase.
pub type Label = bool;

/// Hyper-parameters of a single tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features examined per split; `None` = all features
    /// (single trees), `Some(k)` = random subset of `k` (forests use √d).
    pub features_per_split: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 2,
            features_per_split: None,
            seed: 0xDECAF,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Fraction of positive (malicious) training samples at the leaf.
        positive_fraction: f64,
        samples: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,  // feature value <= threshold
        right: Box<Node>, // feature value > threshold
    },
}

/// A trained CART decision tree.
///
/// # Example
///
/// ```
/// use baywatch_classifier::tree::{DecisionTree, TreeConfig};
///
/// // One informative feature: x[0] > 0.5 means malicious.
/// let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0, 0.0]).collect();
/// let ys: Vec<bool> = (0..100).map(|i| i >= 50).collect();
/// let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
/// assert!(tree.predict(&[0.9, 0.0]));
/// assert!(!tree.predict(&[0.1, 0.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
    importances: Vec<f64>,
}

/// Errors from tree/forest training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training samples were provided.
    EmptyTrainingSet,
    /// Feature vectors have inconsistent lengths.
    RaggedFeatures {
        /// Expected length (from the first sample).
        expected: usize,
        /// Actual length of the offending sample.
        actual: usize,
    },
    /// `labels.len() != samples.len()`.
    LabelMismatch,
    /// A configuration parameter was invalid.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "empty training set"),
            TrainError::RaggedFeatures { expected, actual } => {
                write!(f, "ragged features: expected {expected}, got {actual}")
            }
            TrainError::LabelMismatch => write!(f, "labels and samples differ in length"),
            TrainError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl DecisionTree {
    /// Trains a tree on feature vectors `xs` with labels `ys`.
    ///
    /// # Errors
    ///
    /// See [`TrainError`].
    pub fn fit(xs: &[Vec<f64>], ys: &[Label], config: &TreeConfig) -> Result<Self, TrainError> {
        validate(xs, ys)?;
        if config.max_depth == 0 {
            return Err(TrainError::InvalidConfig("max_depth must be >= 1"));
        }
        if config.min_samples_split < 2 {
            return Err(TrainError::InvalidConfig("min_samples_split must be >= 2"));
        }
        let n_features = xs[0].len();
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut importances = vec![0.0; n_features];
        let root = grow(
            xs,
            ys,
            &idx,
            0,
            config,
            n_features,
            &mut rng,
            &mut importances,
        );
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in importances.iter_mut() {
                *v /= total;
            }
        }
        Ok(Self {
            root,
            n_features,
            importances,
        })
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Probability that `x` is positive (malicious): the positive fraction
    /// of the training samples in the leaf `x` falls into.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training feature count.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.n_features,
            "feature vector length mismatch: expected {}, got {}",
            self.n_features,
            x.len()
        );
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf {
                    positive_fraction, ..
                } => return *positive_fraction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> Label {
        self.predict_proba(x) >= 0.5
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn c(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => c(left) + c(right),
            }
        }
        c(&self.root)
    }

    /// Mean-decrease-in-impurity feature importances, normalized to sum
    /// to 1 (all zeros for a stump with no splits).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }
}

pub(crate) fn validate(xs: &[Vec<f64>], ys: &[Label]) -> Result<(), TrainError> {
    if xs.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }
    if xs.len() != ys.len() {
        return Err(TrainError::LabelMismatch);
    }
    let expected = xs[0].len();
    for x in xs {
        if x.len() != expected {
            return Err(TrainError::RaggedFeatures {
                expected,
                actual: x.len(),
            });
        }
    }
    Ok(())
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

#[allow(clippy::too_many_arguments)]
fn grow(
    xs: &[Vec<f64>],
    ys: &[Label],
    idx: &[usize],
    depth: usize,
    config: &TreeConfig,
    n_features: usize,
    rng: &mut StdRng,
    importances: &mut [f64],
) -> Node {
    let positives = idx.iter().filter(|&&i| ys[i]).count();
    let make_leaf = || Node::Leaf {
        positive_fraction: positives as f64 / idx.len() as f64,
        samples: idx.len(),
    };
    if depth >= config.max_depth
        || idx.len() < config.min_samples_split
        || positives == 0
        || positives == idx.len()
    {
        return make_leaf();
    }

    // Candidate feature set.
    let mut features: Vec<usize> = (0..n_features).collect();
    if let Some(k) = config.features_per_split {
        features.shuffle(rng);
        features.truncate(k.clamp(1, n_features));
    }

    let parent_gini = gini(positives, idx.len());
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity_drop)

    for &f in &features {
        // Sort indices by feature value and scan split points.
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
        let total = order.len();
        let mut left_pos = 0usize;
        for i in 0..total - 1 {
            if ys[order[i]] {
                left_pos += 1;
            }
            // Can't split between equal values.
            if xs[order[i]][f] == xs[order[i + 1]][f] {
                continue;
            }
            let left_n = i + 1;
            let right_n = total - left_n;
            let right_pos = positives - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            let drop = parent_gini - weighted;
            if drop > best.map(|(_, _, d)| d).unwrap_or(1e-12) {
                let threshold = 0.5 * (xs[order[i]][f] + xs[order[i + 1]][f]);
                best = Some((f, threshold, drop));
            }
        }
    }

    match best {
        None => make_leaf(),
        Some((feature, threshold, drop)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return make_leaf();
            }
            // Mean-decrease-in-impurity: weight the drop by the number of
            // samples the split acts on.
            importances[feature] += drop * idx.len() as f64;
            let left = grow(
                xs,
                ys,
                &left_idx,
                depth + 1,
                config,
                n_features,
                rng,
                importances,
            );
            let right = grow(
                xs,
                ys,
                &right_idx,
                depth + 1,
                config,
                n_features,
                rng,
                importances,
            );
            Node::Split {
                feature,
                threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            // jitter so values aren't all identical
            xs.push(vec![a + (i as f64) * 1e-4, b - (i as f64) * 1e-4]);
            ys.push((a > 0.5) != (b > 0.5));
        }
        (xs, ys)
    }

    #[test]
    fn learns_threshold() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let ys: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let t = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert!(!t.predict(&[5.0]));
        assert!(t.predict(&[55.0]));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn learns_xor() {
        let (xs, ys) = xor_data();
        let t = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(t.predict(x), *y, "x = {x:?}");
        }
    }

    #[test]
    fn pure_leaf_probabilities() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let t = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert_eq!(t.predict_proba(&[0.0]), 0.0);
        assert_eq!(t.predict_proba(&[19.0]), 1.0);
    }

    #[test]
    fn depth_limit_respected() {
        let (xs, ys) = xor_data();
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let t = DecisionTree::fit(&xs, &ys, &cfg).unwrap();
        assert!(t.depth() <= 1);
    }

    #[test]
    fn constant_labels_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![true; 10];
        let t = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict_proba(&[3.0]), 1.0);
    }

    #[test]
    fn constant_features_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0, 2.0]).collect();
        let ys: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let t = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert!((t.predict_proba(&[1.0, 2.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            DecisionTree::fit(&[], &[], &TreeConfig::default()).unwrap_err(),
            TrainError::EmptyTrainingSet
        );
        assert_eq!(
            DecisionTree::fit(&[vec![1.0]], &[true, false], &TreeConfig::default()).unwrap_err(),
            TrainError::LabelMismatch
        );
        assert_eq!(
            DecisionTree::fit(
                &[vec![1.0], vec![1.0, 2.0]],
                &[true, false],
                &TreeConfig::default()
            )
            .unwrap_err(),
            TrainError::RaggedFeatures {
                expected: 1,
                actual: 2
            }
        );
        let bad = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        assert!(matches!(
            DecisionTree::fit(&[vec![1.0]], &[true], &bad),
            Err(TrainError::InvalidConfig(_))
        ));
    }

    #[test]
    #[should_panic]
    fn predict_wrong_arity_panics() {
        let t = DecisionTree::fit(
            &[vec![1.0], vec![2.0]],
            &[false, true],
            &TreeConfig::default(),
        )
        .unwrap();
        t.predict(&[1.0, 2.0]);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64, (i * 3 % 5) as f64])
            .collect();
        let ys: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let cfg = TreeConfig {
            features_per_split: Some(1),
            ..Default::default()
        };
        let t = DecisionTree::fit(&xs, &ys, &cfg).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| t.predict(x) == **y)
            .count();
        assert!(correct >= 90, "correct = {correct}");
    }

    #[test]
    fn importances_identify_informative_feature() {
        // Feature 0 decides the label; feature 1 is constant noise.
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let t = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        let imp = t.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.99, "importances = {imp:?}");
    }

    #[test]
    fn stump_has_zero_importances() {
        let xs: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0]).collect();
        let ys = vec![true; 10];
        let t = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert!(t.feature_importances().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!TrainError::EmptyTrainingSet.to_string().is_empty());
        assert!(!TrainError::LabelMismatch.to_string().is_empty());
    }
}
