//! Property-based tests of the MapReduce engine: results must equal a
//! sequential reference computation regardless of partitioning/threading.

use std::collections::HashMap;

use baywatch_mapreduce::{partition_of, JobConfig, MapReduce};
use proptest::prelude::*;

fn reference_word_count(docs: &[String]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for d in docs {
        for w in d.split_whitespace() {
            *m.entry(w.to_owned()).or_insert(0) += 1;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Word count equals the sequential reference for any corpus and any
    /// engine configuration.
    #[test]
    fn equals_sequential_reference(
        docs in prop::collection::vec("[a-c ]{0,30}", 0..60),
        partitions in 1usize..64,
        threads in 1usize..9,
    ) {
        let engine = MapReduce::new(JobConfig { partitions, threads });
        let out = engine.run(
            docs.clone(),
            |doc: String, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |w, ones| vec![(w.clone(), ones.len())],
        );
        let reference = reference_word_count(&docs);
        let as_map: HashMap<String, usize> = out.into_iter().collect();
        prop_assert_eq!(as_map, reference);
    }

    /// The combiner path computes identical sums to the plain path.
    #[test]
    fn combiner_equivalence(
        keys in prop::collection::vec(0u64..20, 0..400),
        partitions in 1usize..16,
    ) {
        let engine = MapReduce::new(JobConfig { partitions, threads: 4 });
        let mut plain = engine.run(
            keys.clone(),
            |k, emit| emit(k, 1u64),
            |k, vs| vec![(*k, vs.iter().sum::<u64>())],
        );
        let mut combined = engine.run_with_combiner(
            keys,
            |k: u64, emit: &mut dyn FnMut(u64, u64)| emit(k, 1u64),
            |a, b| a + b,
            |k, vs| vec![(*k, vs.iter().sum::<u64>())],
        );
        plain.sort();
        combined.sort();
        prop_assert_eq!(plain, combined);
    }

    /// Output is invariant to thread count (determinism).
    #[test]
    fn thread_count_invariance(values in prop::collection::vec(0u32..1000, 0..300)) {
        let run_with = |threads: usize| {
            MapReduce::new(JobConfig { partitions: 8, threads }).run(
                values.clone(),
                |v, emit| emit(v % 13, v as u64),
                |k, mut vs| {
                    vs.sort();
                    vec![(*k, vs)]
                },
            )
        };
        prop_assert_eq!(run_with(1), run_with(7));
    }

    /// Partition assignment is total and stable.
    #[test]
    fn partitioning_valid(key in any::<u64>(), partitions in 1usize..1000) {
        let p = partition_of(&key, partitions);
        prop_assert!(p < partitions);
        prop_assert_eq!(p, partition_of(&key, partitions));
    }

    /// No records are lost: the count of reduced values equals the count
    /// of mapped emissions.
    #[test]
    fn no_record_loss(values in prop::collection::vec(any::<u16>(), 0..500)) {
        let engine = MapReduce::new(JobConfig { partitions: 16, threads: 4 });
        let (out, stats) = engine.run_with_stats(
            values.clone(),
            |v, emit| emit(v % 31, v),
            |k, vs| vec![(*k, vs.len())],
        );
        let reduced_total: usize = out.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(reduced_total, values.len());
        prop_assert_eq!(stats.map_output_records(), values.len());
    }
}
