//! Deterministic resilience primitives for the BAYWATCH pipeline.
//!
//! The paper's deployment (§VIII-B2) is a continuously-fed service at an
//! enterprise edge: ingest bursts, flapping log sources, slow checkpoint
//! storage and malformed shards are routine, and the detector must degrade
//! gracefully rather than fall over. This crate provides the three
//! production-shaped mechanisms for that, each built so its behavior is a
//! pure function of its inputs:
//!
//! * [`CircuitBreaker`] — a Closed/Open/HalfOpen state machine guarding a
//!   dependency (a log source, a checkpoint directory). Time is injected
//!   through the [`Clock`](baywatch_obs::Clock) trait from `baywatch-obs`,
//!   so under a [`ManualClock`](baywatch_obs::ManualClock) every
//!   transition is byte-reproducible.
//! * [`RetryPolicy`] — exponential backoff with deterministic seeded
//!   jitter. Delays are computed with integer arithmetic from a seeded
//!   `StdRng` stream and never read the wall clock, so the same seed and
//!   failure schedule yield identical retry timestamps in debug and
//!   `--release` builds.
//! * [`AdmissionController`] — converts budget pressure (an
//!   `ExecBudget`/`PipelineBudget` utilization fraction) into
//!   accept/degrade/reject decisions with hysteresis, so the pipeline
//!   coarsens per-pair budgets under overload *before* shedding work.
//!
//! The crate is part of the deterministic set policed by `baywatch-lint`:
//! no ambient randomness, no wall-clock reads, no filesystem access. The
//! only time source is the injectable clock, and the only randomness is
//! the explicitly seeded jitter stream.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod admission;
pub mod breaker;
pub mod retry;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats};
pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker, Transition};
pub use retry::RetryPolicy;
