//! Training corpus of popular, human-chosen domain names.
//!
//! The paper trains its language model on the Alexa top-1M list, which is
//! proprietary and no longer distributed. This module substitutes (a) an
//! embedded seed list of several hundred real, well-known domains and (b) a
//! deterministic synthetic expansion that composes common English words and
//! brand-like fragments into plausible domain names. What the 3-gram model
//! learns is the *character statistics* of human-registered names, which the
//! expansion preserves; see DESIGN.md for the substitution rationale.

/// The embedded seed list (one domain per line, `#` comments).
const SEED: &str = include_str!("../data/popular_domains.txt");

/// Common English words used by the synthetic corpus expansion.
const WORDS: &[&str] = &[
    "able", "account", "action", "active", "advance", "agency", "agent", "air", "alert", "alpha",
    "amber", "angel", "apex", "app", "apple", "arcade", "archive", "area", "arrow", "art", "asset",
    "atlas", "auto", "backup", "badge", "bake", "bank", "base", "bay", "beacon", "bean", "bear",
    "beat", "berry", "best", "beta", "big", "bird", "bit", "black", "blaze", "block", "blog",
    "blue", "board", "body", "bold", "bolt", "book", "boost", "box", "brain", "brand", "brave",
    "bread", "breeze", "brick", "bridge", "bright", "brook", "budget", "build", "bus", "buy",
    "byte", "cab", "cable", "cache", "cake", "call", "camp", "candy", "cap", "car", "card", "care",
    "cart", "case", "cash", "cast", "cat", "cedar", "cell", "center", "chain", "chat", "check",
    "chef", "cherry", "chip", "city", "clean", "clear", "click", "client", "climb", "cloud",
    "clover", "club", "coach", "coast", "code", "coffee", "coin", "cold", "compass", "connect",
    "cook", "cool", "copper", "core", "corner", "craft", "crane", "create", "creek", "crew",
    "crisp", "crown", "cube", "cup", "curve", "cyber", "daily", "dash", "data", "date", "dawn",
    "day", "deal", "deck", "deep", "deliver", "delta", "den", "depot", "design", "desk", "dev",
    "dial", "diamond", "digital", "direct", "dish", "dock", "doctor", "dog", "dollar", "door",
    "dot", "dream", "drive", "drop", "dune", "eagle", "earth", "east", "easy", "echo", "edge",
    "edit", "elite", "ember", "energy", "engine", "epic", "event", "ever", "exchange", "expert",
    "express", "eye", "fab", "face", "fair", "falcon", "family", "farm", "fast", "feed", "fern",
    "field", "file", "film", "find", "fine", "fire", "first", "fish", "fit", "five", "flag",
    "flame", "flash", "fleet", "flex", "flight", "flow", "flower", "fly", "focus", "fog", "folk",
    "food", "force", "forest", "forge", "form", "fort", "forum", "fox", "frame", "free", "fresh",
    "frog", "front", "fuel", "full", "fun", "fund", "fusion", "future", "galaxy", "game", "gate",
    "gear", "gem", "gene", "gift", "giga", "give", "glass", "globe", "goal", "gold", "good",
    "grace", "grand", "grape", "graph", "grass", "gray", "great", "green", "grid", "grove", "grow",
    "guard", "guide", "gulf", "guru", "hand", "happy", "harbor", "hash", "haven", "hawk", "hazel",
    "head", "health", "heart", "heat", "help", "herb", "hero", "hill", "hive", "holly", "home",
    "honey", "hook", "hope", "horizon", "host", "hot", "house", "hub", "hunt", "ice", "idea",
    "index", "info", "ink", "inn", "iron", "island", "ivy", "jade", "jet", "job", "join", "jolt",
    "journal", "joy", "jump", "junction", "jungle", "keep", "key", "kind", "king", "kit", "kite",
    "lab", "lake", "lamp", "land", "lane", "large", "laser", "launch", "lawn", "layer", "lead",
    "leaf", "league", "learn", "ledge", "legend", "lemon", "lens", "level", "life", "lift",
    "light", "lily", "lime", "line", "link", "lion", "list", "live", "local", "lock", "loft",
    "log", "logic", "long", "look", "loop", "lotus", "love", "luck", "lunar", "lux", "mach",
    "magic", "magnet", "mail", "main", "make", "mango", "map", "maple", "march", "mark", "market",
    "mars", "mart", "mass", "master", "match", "mate", "matrix", "max", "maze", "meadow", "media",
    "mega", "melon", "memo", "mentor", "menu", "merit", "mesa", "mesh", "meta", "meter", "metro",
    "micro", "mid", "mile", "milk", "mill", "mind", "mine", "mint", "mira", "mist", "mix",
    "mobile", "mode", "model", "modern", "moment", "money", "moon", "more", "morning", "moss",
    "motion", "motor", "mount", "mouse", "move", "movie", "music", "myth", "nano", "nation",
    "native", "nature", "nav", "nest", "net", "new", "news", "next", "night", "nimbus", "nine",
    "noble", "node", "north", "nota", "note", "nova", "oak", "ocean", "offer", "office", "olive",
    "omega", "one", "onyx", "open", "opera", "orbit", "orchid", "order", "organic", "origin",
    "osprey", "outlet", "owl", "pace", "pack", "page", "paint", "pal", "palm", "panda", "panel",
    "paper", "park", "part", "pass", "path", "pay", "peak", "pearl", "pen", "people", "pepper",
    "perk", "pet", "phase", "phone", "photo", "pick", "pilot", "pin", "pine", "pink", "pioneer",
    "pixel", "place", "plan", "planet", "plant", "play", "plaza", "plum", "plus", "point", "polar",
    "pond", "pool", "pop", "port", "portal", "post", "power", "press", "prime", "print", "pro",
    "program", "project", "prompt", "proof", "pulse", "pump", "pure", "purple", "push", "quad",
    "quail", "quality", "quartz", "quest", "quick", "quiet", "quill", "race", "rack", "radar",
    "radio", "rain", "ranch", "range", "rapid", "raven", "ray", "reach", "read", "real", "record",
    "red", "reef", "relay", "rent", "report", "rest", "retro", "rice", "rich", "ride", "ridge",
    "right", "ring", "rise", "river", "road", "rock", "rocket", "room", "root", "rose", "round",
    "route", "royal", "ruby", "run", "rush", "safe", "sage", "sail", "salt", "sand", "save",
    "scale", "scan", "scene", "school", "scope", "score", "scout", "script", "sea", "search",
    "season", "secure", "seed", "select", "sense", "sequoia", "serve", "service", "set", "seven",
    "shade", "shape", "share", "sharp", "shell", "shield", "shift", "shine", "ship", "shop",
    "shore", "short", "shot", "show", "side", "sight", "sign", "signal", "silk", "silver",
    "simple", "site", "six", "sky", "sleek", "slice", "slide", "small", "smart", "smile", "smooth",
    "snap", "snow", "social", "soft", "solar", "solid", "solve", "sonic", "sound", "source",
    "south", "space", "spark", "spear", "speed", "sphere", "spice", "spin", "spirit", "split",
    "sport", "spot", "spring", "sprint", "spruce", "square", "stack", "staff", "stage", "star",
    "start", "state", "station", "stay", "steam", "steel", "stem", "step", "stitch", "stock",
    "stone", "store", "storm", "story", "stream", "street", "stride", "strong", "studio", "study",
    "style", "summit", "sun", "super", "supply", "surf", "swan", "sweet", "swift", "switch",
    "sync", "system", "table", "tag", "tail", "talent", "talk", "tap", "target", "task", "team",
    "tech", "tele", "temple", "ten", "term", "terra", "test", "text", "theme", "think", "thread",
    "three", "thrive", "tick", "tide", "tiger", "time", "tin", "tiny", "tip", "titan", "today",
    "token", "tone", "tool", "top", "torch", "total", "touch", "tour", "tower", "town", "track",
    "trade", "trail", "train", "transfer", "travel", "tree", "trek", "trend", "tribe", "trio",
    "trip", "true", "trust", "try", "tube", "tulip", "tune", "turbo", "turn", "twin", "two",
    "ultra", "umbrella", "union", "unit", "unity", "up", "update", "urban", "use", "user",
    "utopia", "valley", "value", "van", "vault", "vector", "vega", "vein", "venture", "venue",
    "verse", "vertex", "vibe", "video", "view", "villa", "vine", "vision", "vista", "vital",
    "vivid", "voice", "volt", "vortex", "voyage", "walk", "wall", "want", "ward", "ware", "warm",
    "watch", "water", "wave", "way", "wealth", "weather", "web", "well", "west", "whale", "wheel",
    "white", "wide", "wild", "will", "wind", "window", "wing", "wire", "wise", "wish", "wolf",
    "wonder", "wood", "word", "work", "world", "wren", "yard", "year", "yellow", "yield", "yoga",
    "young", "zen", "zenith", "zero", "zest", "zone", "zoom",
];

/// Top-level domains used by the synthetic expansion, weighted roughly like
/// real registrations by repetition.
const TLDS: &[&str] = &[
    ".com", ".com", ".com", ".com", ".com", ".net", ".org", ".io", ".co", ".us", ".info", ".biz",
    ".app", ".dev", ".online", ".shop", ".site", ".tech",
];

/// Connectors occasionally inserted between two words.
const JOINERS: &[&str] = &["", "", "", "", "-", "", "s", ""];

/// The real-domain seed list.
///
/// # Example
///
/// ```
/// let seeds = baywatch_langmodel::corpus::seed_domains();
/// assert!(seeds.len() > 500);
/// assert!(seeds.contains(&"google.com"));
/// ```
pub fn seed_domains() -> Vec<&'static str> {
    SEED.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect()
}

/// Deterministic synthetic expansion: `count` plausible word-combination
/// domains (e.g. `cloudforge.com`, `blue-harbor.net`). The same `count`
/// always yields the same list.
pub fn synthetic_domains(count: usize) -> Vec<String> {
    // A fixed multiplicative-congruential walk over word/TLD indices keeps
    // the expansion deterministic without pulling in an RNG.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let a = WORDS[(next() as usize) % WORDS.len()];
        let b = WORDS[(next() as usize) % WORDS.len()];
        let j = JOINERS[(next() as usize) % JOINERS.len()];
        let tld = TLDS[(next() as usize) % TLDS.len()];
        // One in eight names is a single word, the rest are compounds.
        let name = if next() % 8 == 0 {
            format!("{a}{tld}")
        } else {
            format!("{a}{j}{b}{tld}")
        };
        out.push(name);
    }
    out
}

/// The full training corpus: seed domains plus a synthetic expansion
/// (default 20,000 names), matching the scale at which the 3-gram
/// statistics stabilize.
pub fn training_corpus() -> Vec<String> {
    let mut corpus: Vec<String> = seed_domains().into_iter().map(str::to_owned).collect();
    corpus.extend(synthetic_domains(20_000));
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_list_is_clean() {
        for d in seed_domains() {
            assert!(!d.is_empty());
            assert!(!d.starts_with('#'));
            assert!(d.contains('.'), "no TLD in {d}");
            assert!(
                d.bytes().all(|b| b.is_ascii_lowercase()
                    || b.is_ascii_digit()
                    || b == b'.'
                    || b == b'-'),
                "unexpected characters in {d}"
            );
        }
    }

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(synthetic_domains(100), synthetic_domains(100));
        assert_eq!(synthetic_domains(5).len(), 5);
    }

    #[test]
    fn synthetic_names_look_like_domains() {
        for d in synthetic_domains(500) {
            assert!(d.contains('.'), "{d}");
            let name = d.split('.').next().unwrap();
            assert!(!name.is_empty());
            assert!(name.len() < 40, "{d} too long");
        }
    }

    #[test]
    fn training_corpus_size() {
        let c = training_corpus();
        assert!(c.len() > 20_000);
    }
}
