//! Fixture: `detector.rs` is a budgeted module, so L3 applies here.

pub fn unbudgeted_scan(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut i = 0;
    while i < xs.len() {
        acc += xs[i];
        i += 1;
    }
    acc
}

pub fn budgeted_scan(xs: &[f64], budget: &ExecBudget) -> f64 {
    let mut acc = 0.0;
    let mut i = 0;
    while i < xs.len() {
        let _ = budget.checkpoint(1);
        acc += xs[i];
        i += 1;
    }
    acc
}

pub fn unbudgeted_loop(budget_free: u64) -> u64 {
    let mut n = budget_free;
    loop {
        if n == 0 {
            return n;
        }
        n -= 1;
    }
}
