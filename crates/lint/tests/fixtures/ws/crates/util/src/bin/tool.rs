//! Fixture: binaries are outside L4's scope — an unwrap here is fine.

fn main() {
    let v: Option<u32> = Some(1);
    println!("{}", v.unwrap());
}
