//! Multi-scale iterative operation (§X of the paper).
//!
//! BAYWATCH runs at three cadences simultaneously:
//!
//! * **daily** at fine granularity — catches minute-level beaconing,
//! * **weekly** over merged daily summaries at a coarser scale — catches
//!   hour-level periodicity without reprocessing raw logs,
//! * **monthly** at the coarsest scale — catches 24-hour beacons that a
//!   single day can never show (a 24 h period needs ≥ `min_cycles` days of
//!   observation).
//!
//! The scheduler is the consumer of the rescaling/merging job (§VII-B):
//! each day's raw logs are summarized once; weekly and monthly tiers merge
//! and re-bin those summaries instead of touching raw data again.

use std::collections::BTreeMap;

use baywatch_mapreduce::{FaultPolicy, MapReduce};
use baywatch_timeseries::detector::{DetectionReport, DetectorConfig, PeriodicityDetector};
use baywatch_timeseries::BudgetSpec;

use crate::activity::ActivitySummary;
use crate::jobs;
use crate::pair::CommunicationPair;
use crate::record::LogRecord;
use crate::CoreError;

/// Tick/window arithmetic for the streaming engine (`core::stream`).
///
/// Time is divided into fixed-width **ticks** of `tick_seconds`; the
/// sliding detection window always covers the most recent `window_ticks`
/// whole ticks, *including* the current one. All boundary conventions are
/// half-open on ticks and **closed on the window's lower edge**:
///
/// * tick `k` covers `[k * tick_seconds, (k + 1) * tick_seconds)`;
/// * while tick `t` is current, the window is
///   `[window_start(t), (t + 1) * tick_seconds)` with
///   `window_start(t) = (t + 1 - window_ticks) * tick_seconds`
///   (saturating at 0);
/// * an event whose timestamp equals `window_start(t)` **is in the
///   window** — this is the off-by-one this type exists to pin down:
///   [`TimestampRing::retain_from`](baywatch_timeseries::TimestampRing::retain_from)
///   drops strictly-older entries only, so both sides agree that the
///   edge event survives a window shift.
///
/// With `window_ticks == 1` the window is exactly the current tick: each
/// shift discards everything from prior ticks but never the edge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// Width of one tick in seconds (must be positive).
    pub tick_seconds: u64,
    /// How many ticks the sliding window covers, current tick included
    /// (must be positive).
    pub window_ticks: u64,
}

impl ScheduleSpec {
    /// Validates and constructs a spec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when either field is zero.
    pub fn new(tick_seconds: u64, window_ticks: u64) -> Result<Self, CoreError> {
        if tick_seconds == 0 {
            return Err(CoreError::InvalidConfig {
                name: "tick_seconds",
                constraint: "must be positive",
            });
        }
        if window_ticks == 0 {
            return Err(CoreError::InvalidConfig {
                name: "window_ticks",
                constraint: "must be positive",
            });
        }
        Ok(Self {
            tick_seconds,
            window_ticks,
        })
    }

    /// The tick index containing `timestamp`.
    pub fn tick_of(&self, timestamp: u64) -> u64 {
        timestamp / self.tick_seconds
    }

    /// First timestamp of tick `tick` (saturating at `u64::MAX`).
    pub fn tick_start(&self, tick: u64) -> u64 {
        tick.saturating_mul(self.tick_seconds)
    }

    /// Inclusive lower edge of the window while `current_tick` is the
    /// newest tick: the start of tick `current_tick + 1 - window_ticks`,
    /// saturating at time zero when fewer than `window_ticks` ticks have
    /// elapsed.
    pub fn window_start(&self, current_tick: u64) -> u64 {
        let first_tick = (current_tick + 1).saturating_sub(self.window_ticks);
        self.tick_start(first_tick)
    }

    /// Exclusive upper edge of the window while `current_tick` is the
    /// newest tick (the end of that tick).
    pub fn window_end(&self, current_tick: u64) -> u64 {
        self.tick_start(current_tick.saturating_add(1))
    }

    /// Whether `timestamp` falls inside the window of `current_tick`:
    /// `window_start(current_tick) <= timestamp < window_end(current_tick)`.
    /// The lower comparison is `>=` — the edge event is **in**.
    pub fn in_window(&self, current_tick: u64, timestamp: u64) -> bool {
        timestamp >= self.window_start(current_tick) && timestamp < self.window_end(current_tick)
    }
}

/// One analysis tier of the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct Tier {
    /// Human-readable name ("daily", "weekly", "monthly").
    pub name: &'static str,
    /// How many days of summaries the tier aggregates.
    pub window_days: usize,
    /// Time scale (seconds) the tier analyzes at.
    pub scale: u64,
    /// Per-pair execution budget for this tier's detection runs
    /// (unlimited by default). Coarser tiers aggregate longer series, so
    /// operators can cap them independently; pairs that exhaust the
    /// budget are counted in
    /// [`MultiScaleScheduler::timed_out_pairs`], not detected.
    pub pair_budget: BudgetSpec,
}

/// The paper's three standard tiers.
pub fn standard_tiers() -> Vec<Tier> {
    vec![
        Tier {
            name: "daily",
            window_days: 1,
            scale: 1,
            pair_budget: BudgetSpec::UNLIMITED,
        },
        Tier {
            name: "weekly",
            window_days: 7,
            scale: 60,
            pair_budget: BudgetSpec::UNLIMITED,
        },
        Tier {
            name: "monthly",
            window_days: 30,
            scale: 3600,
            pair_budget: BudgetSpec::UNLIMITED,
        },
    ]
}

/// A detection produced by some tier.
#[derive(Debug, Clone)]
pub struct TierDetection {
    /// Tier that produced the finding.
    pub tier: &'static str,
    /// The communication pair.
    pub pair: CommunicationPair,
    /// The detector's report.
    pub report: DetectionReport,
}

/// Multi-scale scheduler: feed it one day of records at a time; it keeps
/// per-pair daily summaries, merges them into the coarser tiers when their
/// windows complete, and runs the detector at every tier.
#[derive(Debug)]
pub struct MultiScaleScheduler {
    tiers: Vec<Tier>,
    detector_config: DetectorConfig,
    engine: MapReduce,
    /// Ring of the last N days of summaries (N = max window).
    history: Vec<Vec<ActivitySummary>>,
    days_ingested: usize,
    /// Pairs whose detection exhausted a tier's per-pair budget, summed
    /// across all tiers and days.
    timed_out_pairs: usize,
}

impl MultiScaleScheduler {
    /// Creates a scheduler with the given tiers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `tiers` is empty or any
    /// tier has a zero window or scale.
    pub fn new(
        tiers: Vec<Tier>,
        detector_config: DetectorConfig,
        engine: MapReduce,
    ) -> Result<Self, CoreError> {
        if tiers.is_empty() {
            return Err(CoreError::InvalidConfig {
                name: "tiers",
                constraint: "must be non-empty",
            });
        }
        for t in &tiers {
            if t.window_days == 0 || t.scale == 0 {
                return Err(CoreError::InvalidConfig {
                    name: "tier",
                    constraint: "window_days and scale must be positive",
                });
            }
        }
        Ok(Self {
            tiers,
            detector_config,
            engine,
            history: Vec::new(),
            days_ingested: 0,
            timed_out_pairs: 0,
        })
    }

    /// Convenience: standard tiers with default configs.
    pub fn standard() -> Self {
        Self::new(
            standard_tiers(),
            DetectorConfig::default(),
            MapReduce::default(),
        )
        .expect("standard tiers are valid")
    }

    /// Number of days ingested so far.
    pub fn days_ingested(&self) -> usize {
        self.days_ingested
    }

    /// Pairs cut off by a tier's per-pair execution budget so far
    /// (degraded-mode accounting; zero when every tier is unlimited).
    pub fn timed_out_pairs(&self) -> usize {
        self.timed_out_pairs
    }

    /// Ingests one day of raw records and runs every tier whose window
    /// completes on this day. Returns all detections (periodic pairs),
    /// tagged with the tier that found them.
    pub fn ingest_day(&mut self, records: Vec<LogRecord>) -> Vec<TierDetection> {
        // Summarize the day once at the finest granularity.
        let day_summaries = jobs::extract_summaries(&self.engine, records, 1);
        self.history.push(day_summaries);
        self.days_ingested += 1;

        // `new()` rejects empty tier lists; fall back to a one-day window
        // instead of panicking if that invariant ever regresses.
        let max_window = self.tiers.iter().map(|t| t.window_days).max().unwrap_or(1);
        while self.history.len() > max_window {
            self.history.remove(0);
        }

        let mut out = Vec::new();
        let mut timed_out = 0usize;
        for tier in &self.tiers {
            // A tier fires when its window completes (every `window_days`).
            if !self.days_ingested.is_multiple_of(tier.window_days) {
                continue;
            }
            if self.history.len() < tier.window_days {
                continue;
            }
            let window: Vec<ActivitySummary> = self.history
                [self.history.len() - tier.window_days..]
                .iter()
                .flatten()
                .cloned()
                .collect();
            // Merge per-pair across days and re-bin to the tier's scale.
            let merged = jobs::rescale_and_merge(&self.engine, window, tier.scale);

            // Run the detector at the tier's scale.
            let detector_config = DetectorConfig {
                time_scale: tier.scale,
                ..self.detector_config.clone()
            };
            let detector = PeriodicityDetector::new(detector_config);
            let (rows, _faults) = jobs::detect_beaconing_budgeted_ft(
                &self.engine,
                merged,
                &detector,
                tier.pair_budget,
                None,
                &FaultPolicy::default(),
            );
            for row in rows {
                match row {
                    jobs::DetectRow::Hit(hit) => {
                        let (summary, report) = *hit;
                        out.push(TierDetection {
                            tier: tier.name,
                            pair: summary.pair,
                            report,
                        });
                    }
                    jobs::DetectRow::TimedOut(_) => timed_out += 1,
                    jobs::DetectRow::Quiet(_) => {}
                }
            }
        }
        self.timed_out_pairs += timed_out;
        out
    }

    /// Ingests many days and collects every detection, deduplicated by
    /// (tier, pair) keeping the strongest ACF score.
    pub fn ingest_days<I>(&mut self, days: I) -> Vec<TierDetection>
    where
        I: IntoIterator<Item = Vec<LogRecord>>,
    {
        // Keyed by (tier, pair), which is exactly the output order: a
        // BTreeMap makes `into_values` already sorted, so the final sort
        // below is a no-op safeguard rather than the thing producing order.
        let mut best: BTreeMap<(&'static str, CommunicationPair), TierDetection> = BTreeMap::new();
        for day in days {
            for det in self.ingest_day(day) {
                let key = (det.tier, det.pair.clone());
                let better = best
                    .get(&key)
                    .map(|old| {
                        det.report.best().map(|c| c.acf_score).unwrap_or(0.0)
                            > old.report.best().map(|c| c.acf_score).unwrap_or(0.0)
                    })
                    .unwrap_or(true);
                if better {
                    best.insert(key, det);
                }
            }
        }
        let mut out: Vec<TierDetection> = best.into_values().collect();
        out.sort_by(|a, b| a.tier.cmp(b.tier).then(a.pair.cmp(&b.pair)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    /// Beacon every `period` seconds across `days` days.
    fn beacon_days(source: &str, domain: &str, period: u64, days: usize) -> Vec<Vec<LogRecord>> {
        let mut out = Vec::new();
        for d in 0..days {
            let day_start = d as u64 * DAY;
            let mut records = Vec::new();
            let mut t = day_start + (period - (day_start % period)) % period;
            while t < day_start + DAY {
                records.push(LogRecord::new(t, source, domain, "x"));
                t += period;
            }
            out.push(records);
        }
        out
    }

    #[test]
    fn daily_tier_catches_fast_beacon() {
        let mut sched = MultiScaleScheduler::standard();
        let days = beacon_days("h", "fast.com", 120, 1);
        let detections = sched.ingest_days(days);
        assert!(detections
            .iter()
            .any(|d| d.tier == "daily" && d.pair.destination == "fast.com"));
    }

    #[test]
    fn twenty_four_hour_beacon_needs_the_monthly_tier() {
        // One beacon per day: invisible daily (1 event), invisible weekly
        // (7 events < min_events 8 at best), caught monthly.
        let mut sched = MultiScaleScheduler::standard();
        let days = beacon_days("h", "slow.com", 86_400, 30);
        let detections = sched.ingest_days(days);
        let tiers: Vec<&str> = detections
            .iter()
            .filter(|d| d.pair.destination == "slow.com")
            .map(|d| d.tier)
            .collect();
        assert!(
            tiers.contains(&"monthly"),
            "monthly tier should catch the 24 h beacon, got {tiers:?}"
        );
        assert!(
            !tiers.contains(&"daily"),
            "a single daily event cannot be periodic"
        );
    }

    #[test]
    fn hourly_beacon_visible_weekly() {
        // 6-hour beacon: 4 events/day (below min_events), 28 events/week.
        let mut sched = MultiScaleScheduler::standard();
        let days = beacon_days("h", "sixhour.com", 6 * 3600, 7);
        let detections = sched.ingest_days(days);
        let found_weekly = detections
            .iter()
            .any(|d| d.tier == "weekly" && d.pair.destination == "sixhour.com");
        assert!(found_weekly, "detections: {detections:?}");
    }

    #[test]
    fn weekly_tier_fires_every_seventh_day() {
        let mut sched = MultiScaleScheduler::standard();
        for d in 0..6 {
            let day = beacon_days("h", "x.com", 6 * 3600, 1).remove(0);
            let day: Vec<LogRecord> = day
                .into_iter()
                .map(|mut r| {
                    r.timestamp += d as u64 * DAY;
                    r
                })
                .collect();
            let dets = sched.ingest_day(day);
            assert!(
                !dets.iter().any(|x| x.tier == "weekly"),
                "weekly fired early on day {d}"
            );
        }
        let day7 = beacon_days("h", "x.com", 6 * 3600, 1)
            .remove(0)
            .into_iter()
            .map(|mut r| {
                r.timestamp += 6 * DAY;
                r
            })
            .collect();
        let dets = sched.ingest_day(day7);
        assert!(dets.iter().any(|x| x.tier == "weekly"));
    }

    #[test]
    fn invalid_tiers_rejected() {
        assert!(
            MultiScaleScheduler::new(vec![], DetectorConfig::default(), MapReduce::default())
                .is_err()
        );
        assert!(MultiScaleScheduler::new(
            vec![Tier {
                name: "bad",
                window_days: 0,
                scale: 1,
                pair_budget: BudgetSpec::UNLIMITED,
            }],
            DetectorConfig::default(),
            MapReduce::default()
        )
        .is_err());
    }

    #[test]
    fn exhausted_tier_budget_times_out_pairs_instead_of_detecting() {
        let starved = Tier {
            name: "daily",
            window_days: 1,
            scale: 1,
            pair_budget: BudgetSpec {
                max_ops: Some(1),
                ..Default::default()
            },
        };
        let mut sched = MultiScaleScheduler::new(
            vec![starved],
            DetectorConfig::default(),
            MapReduce::default(),
        )
        .unwrap();
        let detections = sched.ingest_days(beacon_days("h", "fast.com", 120, 1));
        assert!(detections.is_empty(), "starved tier must not detect");
        assert!(sched.timed_out_pairs() > 0);

        // The same day under an unlimited budget detects normally and
        // reports no timeouts.
        let mut unlimited = MultiScaleScheduler::standard();
        let detections = unlimited.ingest_days(beacon_days("h", "fast.com", 120, 1));
        assert!(detections.iter().any(|d| d.pair.destination == "fast.com"));
        assert_eq!(unlimited.timed_out_pairs(), 0);
    }

    #[test]
    fn history_is_bounded() {
        let mut sched = MultiScaleScheduler::standard();
        for day in beacon_days("h", "y.com", 3600, 40) {
            sched.ingest_day(day);
        }
        assert_eq!(sched.days_ingested(), 40);
        assert!(sched.history.len() <= 30);
    }

    #[test]
    fn schedule_spec_rejects_zero_fields() {
        assert!(ScheduleSpec::new(0, 4).is_err());
        assert!(ScheduleSpec::new(60, 0).is_err());
        assert!(ScheduleSpec::new(60, 4).is_ok());
    }

    #[test]
    fn window_edge_event_is_inside() {
        // The latent off-by-one this guards: an event landing exactly on
        // the window's lower edge must be IN the window, on both the
        // ScheduleSpec side and the ring-retention side.
        let spec = ScheduleSpec::new(60, 4).unwrap();
        // Current tick 10 → window covers ticks 7..=10 → [420, 660).
        assert_eq!(spec.window_start(10), 420);
        assert_eq!(spec.window_end(10), 660);
        assert!(spec.in_window(10, 420), "edge event must be in-window");
        assert!(!spec.in_window(10, 419));
        assert!(spec.in_window(10, 659));
        assert!(!spec.in_window(10, 660));

        let mut ring = baywatch_timeseries::TimestampRing::new(16);
        ring.append_batch(&[(419, 1), (420, 1), (500, 1)]);
        ring.retain_from(spec.window_start(10));
        assert_eq!(
            ring.timestamps(),
            vec![420, 500],
            "ring retention must agree with in_window on the edge"
        );
    }

    #[test]
    fn one_tick_window_is_exactly_the_current_tick() {
        let spec = ScheduleSpec::new(60, 1).unwrap();
        assert_eq!(spec.window_start(5), 300);
        assert_eq!(spec.window_end(5), 360);
        assert!(spec.in_window(5, 300));
        assert!(!spec.in_window(5, 299));
        assert!(!spec.in_window(5, 360));
    }

    #[test]
    fn early_ticks_saturate_at_time_zero() {
        let spec = ScheduleSpec::new(60, 8).unwrap();
        // Fewer than window_ticks ticks have elapsed: window starts at 0.
        assert_eq!(spec.window_start(3), 0);
        assert!(spec.in_window(3, 0));
        assert!(spec.in_window(3, 239));
        assert!(!spec.in_window(3, 240));
    }

    #[test]
    fn tick_of_matches_tick_start() {
        let spec = ScheduleSpec::new(90, 2).unwrap();
        for t in [0, 89, 90, 179, 180, 12345] {
            let k = spec.tick_of(t);
            assert!(spec.tick_start(k) <= t);
            assert!(t < spec.tick_start(k + 1));
        }
    }

    #[test]
    fn ingest_days_dedups_per_tier_pair() {
        let mut sched = MultiScaleScheduler::standard();
        let detections = sched.ingest_days(beacon_days("h", "z.com", 300, 3));
        let daily: Vec<_> = detections
            .iter()
            .filter(|d| d.tier == "daily" && d.pair.destination == "z.com")
            .collect();
        assert_eq!(daily.len(), 1, "expected one deduplicated daily finding");
    }
}
