//! Streaming/incremental detection engine with bounded per-pair state.
//!
//! The batch pipeline ([`crate::pipeline::Baywatch`]) loads one window of
//! records, runs filters 1–7, and reports. BAYWATCH's deployment model
//! (§VIII: ~30 B events over 5 months) instead wants *continuous*
//! admission: events arrive as they happen, state per communication pair
//! stays bounded, and every tick re-evaluates only what changed.
//! [`StreamingHunt`] is that engine:
//!
//! * **State layout** — one `PairState` per communication pair: a
//!   fixed-capacity [`TimestampRing`] of distinct raw timestamps with
//!   multiplicities (plus its interval sketch), the pair's URL tokens
//!   tagged with the last tick each was seen, a cached detection verdict
//!   keyed to the ring's mutation version, and bookkeeping (last-seen
//!   tick, byte cost). All maps are `BTreeMap`/`BTreeSet` — iteration
//!   order is part of the determinism contract.
//! * **Tick semantics** — time advances in fixed ticks
//!   ([`ScheduleSpec`]); events are buffered within the current tick
//!   (intra-tick arrival order is irrelevant: the buffer is folded and
//!   sorted at tick close, so any chunking of the same trace produces
//!   identical state). The sliding window covers the most recent
//!   `window_ticks` ticks with a **closed lower edge**: an event landing
//!   exactly on the window start is in the window, on both the schedule
//!   side and the ring-retention side.
//! * **Eviction policy** — a global byte budget over resident pair state.
//!   When it overflows, cold pairs are evicted strictly LRU by last-seen
//!   tick, ties broken by pair key ascending — a deterministic total
//!   order with no hash iteration anywhere. Pairs whose window empties
//!   expire the same way. An evicted pair that returns re-enters with a
//!   fresh ring and is counted under `stream.pairs.readmitted`.
//! * **Degradation before shedding** — the byte budget feeds pressure to
//!   an [`AdmissionController`]: `Degrade` coarsens the effective
//!   detection tick (re-detection only every
//!   [`StreamConfig::degrade_detect_stride`] ticks) and widens eviction
//!   (down to [`StreamConfig::degrade_target`] of the budget); `Reject`
//!   sheds the tick's buffered events with exact accounting.
//! * **Equivalence guarantees** — as long as nothing was shed, dropped by
//!   ring capacity, or evicted with live in-window events, the retained
//!   state is *lossless*: [`StreamingHunt::final_report`] reconstructs
//!   the final window's records and produces a report **byte-identical**
//!   (via [`crate::report::export_json`]) to the batch pipeline run over
//!   that window, and the per-tick funnel levels telescope exactly to the
//!   batch funnel. The test battery (`tests/stream_equivalence.rs`,
//!   `tests/stream_soak.rs`) locks both.
//!
//! Every [`StreamLedger`] movement is exact integer arithmetic (enforced
//! by the `L7-ledger-arith` lint rule): offered events equal admitted +
//! late + shed; admitted equal resident + retired + capacity-dropped +
//! evicted; admitted pairs equal live + evicted.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use baywatch_langmodel::{corpus, DomainScorer};
use baywatch_obs::{Clock, ManualClock, MetricsRegistry, MetricsSnapshot};
use baywatch_resilience::{AdmissionConfig, AdmissionController, AdmissionDecision};
use baywatch_timeseries::detector::PeriodicityDetector;
use baywatch_timeseries::workspace::with_thread_workspace;
use baywatch_timeseries::{CandidatePeriod, TimeSeriesError, TimestampRing};

use crate::pair::CommunicationPair;
use crate::pipeline::{AnalysisReport, Baywatch, BaywatchConfig, FilterStats};
use crate::rank::{rank_cases, BeaconCase};
use crate::record::LogRecord;
use crate::schedule::ScheduleSpec;
use crate::whitelist::{GlobalWhitelist, LocalWhitelist};
use crate::CoreError;

/// Fixed per-pair overhead charged against the state budget (struct,
/// map-node, and LRU-index overhead), in bytes. The cost model is a
/// deliberate platform-independent *model*, not `size_of` truth: the
/// same trace must make the same eviction decisions on every build.
const PAIR_BASE_BYTES: u64 = 192;
/// Budget cost of one ring slot. Charged for the full capacity up front —
/// the bound is what the budget must stand behind, not the fill level.
const RING_ENTRY_BYTES: u64 = 16;
/// Fixed cost of one retained URL token (map node + string header).
const TOKEN_BASE_BYTES: u64 = 56;

/// Configuration of the streaming engine.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Tick width and sliding-window length.
    pub schedule: ScheduleSpec,
    /// Distinct-timestamp capacity of each per-pair ring buffer.
    pub ring_capacity: usize,
    /// Global budget (bytes, under the model constants above) for all
    /// resident pair state. `u64::MAX` disables eviction pressure.
    pub state_budget_bytes: u64,
    /// While degraded, evict down to this fraction of the budget instead
    /// of stopping exactly at it (wider eviction). Must be in `(0, 1]`.
    pub degrade_target: f64,
    /// While degraded, run re-detection only on every N-th tick (coarser
    /// effective detection tick). Must be ≥ 1.
    pub degrade_detect_stride: u64,
    /// Hysteresis thresholds for the pressure controller.
    pub admission: AdmissionConfig,
    /// The batch-pipeline configuration the stream must stay equivalent
    /// to: detector settings, whitelists, token filter, ranking.
    pub pipeline: BaywatchConfig,
}

impl StreamConfig {
    /// A config with the given schedule and unbounded memory (no eviction
    /// pressure): the lossless mode the equivalence battery runs in.
    pub fn lossless(schedule: ScheduleSpec) -> Self {
        Self {
            schedule,
            ring_capacity: 4096,
            state_budget_bytes: u64::MAX,
            degrade_target: 0.7,
            degrade_detect_stride: 4,
            admission: AdmissionConfig::default(),
            pipeline: BaywatchConfig::default(),
        }
    }
}

/// Exact accounting of every event and pair that entered the engine.
///
/// All arithmetic on these fields is plain `+`/`-` on `u64` (the
/// `L7-ledger-arith` lint rule rejects narrowing casts and
/// wrapping/saturating calls inside this impl), and
/// [`StreamLedger::is_balanced`] states the invariants:
///
/// ```text
/// events_offered  == events_admitted + events_late + events_shed
///                    + events_buffered
/// events_admitted == events_resident + events_retired
///                    + events_dropped_capacity + events_evicted
/// pairs_admitted  == pairs_live + pairs_evicted
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamLedger {
    /// Every event handed to [`StreamingHunt::ingest`].
    pub events_offered: u64,
    /// Events admitted into some pair's ring (before any later loss).
    pub events_admitted: u64,
    /// Events dropped because their timestamp belonged to an already
    /// closed tick.
    pub events_late: u64,
    /// Buffered events shed whole-tick by an admission `Reject`.
    pub events_shed: u64,
    /// Events waiting in the still-open tick's buffer.
    pub events_buffered: u64,
    /// Admitted events later displaced by a ring's capacity bound.
    pub events_dropped_capacity: u64,
    /// Admitted events that slid out of the window (normal aging).
    pub events_retired: u64,
    /// Admitted events lost because their whole pair was evicted.
    pub events_evicted: u64,
    /// Admitted events currently resident in rings.
    pub events_resident: u64,
    /// Pairs ever admitted (readmissions count again).
    pub pairs_admitted: u64,
    /// Pairs currently holding state.
    pub pairs_live: u64,
    /// Pairs removed (budget eviction or window expiry).
    pub pairs_evicted: u64,
    /// Admissions of a pair previously evicted (fresh ring each time).
    pub pairs_readmitted: u64,
}

impl StreamLedger {
    /// An event arrived and entered the open tick's buffer.
    fn offer_buffered(&mut self, n: u64) {
        self.events_offered += n;
        self.events_buffered += n;
    }

    /// An event arrived but its tick had already closed.
    fn offer_late(&mut self, n: u64) {
        self.events_offered += n;
        self.events_late += n;
    }

    /// A closed tick's buffered events were shed by an admission reject.
    fn shed(&mut self, n: u64) {
        self.events_buffered -= n;
        self.events_shed += n;
    }

    /// A closed tick's buffered events entered rings.
    fn admit(&mut self, n: u64) {
        self.events_buffered -= n;
        self.events_admitted += n;
        self.events_resident += n;
    }

    /// Admitted events displaced by a ring's capacity bound.
    fn drop_capacity(&mut self, n: u64) {
        self.events_resident -= n;
        self.events_dropped_capacity += n;
    }

    fn retire(&mut self, n: u64) {
        self.events_resident -= n;
        self.events_retired += n;
    }

    fn evict_events(&mut self, n: u64) {
        self.events_resident -= n;
        self.events_evicted += n;
    }

    fn admit_pair(&mut self, readmitted: bool) {
        self.pairs_admitted += 1;
        self.pairs_live += 1;
        if readmitted {
            self.pairs_readmitted += 1;
        }
    }

    fn evict_pair(&mut self) {
        self.pairs_live -= 1;
        self.pairs_evicted += 1;
    }

    /// Whether every invariant holds exactly.
    pub fn is_balanced(&self) -> bool {
        self.events_offered
            == self.events_admitted + self.events_late + self.events_shed + self.events_buffered
            && self.events_admitted
                == self.events_resident
                    + self.events_retired
                    + self.events_dropped_capacity
                    + self.events_evicted
            && self.pairs_admitted == self.pairs_live + self.pairs_evicted
    }

    /// Whether no event or pair was ever lost: nothing late, shed,
    /// capacity-dropped, or evicted with events still in its ring. In
    /// this state the resident window is provably identical to what a
    /// batch run over the same window would extract.
    pub fn is_lossless(&self) -> bool {
        self.events_late == 0
            && self.events_shed == 0
            && self.events_dropped_capacity == 0
            && self.events_evicted == 0
    }
}

/// Cached periodicity verdict for one pair at one ring version.
#[derive(Debug, Clone)]
enum PairVerdict {
    /// Verified periodic, with the detector's candidate periods.
    Periodic(Vec<CandidatePeriod>),
    /// Analyzed and not periodic (includes too-few-events/zero-span).
    Quiet,
    /// The per-pair execution budget cut the analysis off.
    TimedOut,
}

/// Bounded per-pair streaming state.
#[derive(Debug)]
struct PairState {
    ring: TimestampRing,
    /// URL token → last tick it was observed in. A token is in-window
    /// while its last tick is ≥ the window's first tick.
    tokens: BTreeMap<String, u64>,
    /// Bumped on every ring mutation; verdicts cache against it.
    version: u64,
    verdict: Option<(u64, PairVerdict)>,
    last_seen_tick: u64,
    /// Whether the destination is on the global whitelist (filter 1),
    /// computed once at admission.
    whitelisted: bool,
    cost_bytes: u64,
}

impl PairState {
    fn new(pair: &CommunicationPair, capacity: usize, whitelisted: bool, tick: u64) -> Self {
        let ring = TimestampRing::new(capacity);
        let cost_bytes = PAIR_BASE_BYTES
            + pair.source.len() as u64
            + pair.destination.len() as u64
            + ring.capacity() as u64 * RING_ENTRY_BYTES;
        Self {
            ring,
            tokens: BTreeMap::new(),
            version: 0,
            verdict: None,
            last_seen_tick: tick,
            whitelisted,
            cost_bytes,
        }
    }

    /// The pair's URL tokens still inside the window that starts at
    /// `first_window_tick`.
    fn window_tokens(&self, first_window_tick: u64) -> BTreeSet<String> {
        self.tokens
            .iter()
            .filter(|(_, &last)| last >= first_window_tick)
            .map(|(t, _)| t.clone())
            .collect()
    }
}

/// Signed per-tick change of every funnel level. Summing any field's
/// deltas over all ticks telescopes exactly to that field's final level
/// (each tick's delta is the difference against the previous tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickDelta {
    /// Change in raw in-window events.
    pub events: i64,
    /// Change in live communication pairs.
    pub pairs: i64,
    /// Change in pairs surviving the global whitelist.
    pub after_global_whitelist: i64,
    /// Change in pairs surviving the local whitelist.
    pub after_local_whitelist: i64,
    /// Change in verified-periodic pairs.
    pub periodic: i64,
    /// Change in cases surviving the URL-token filter.
    pub after_token_filter: i64,
    /// Change in cases surviving novelty analysis.
    pub after_novelty: i64,
    /// Change in cases above the report percentile.
    pub reported: i64,
}

impl TickDelta {
    fn between(prev: &FilterStats, next: &FilterStats) -> Self {
        let d = |a: usize, b: usize| b as i64 - a as i64;
        Self {
            events: d(prev.events, next.events),
            pairs: d(prev.pairs, next.pairs),
            after_global_whitelist: d(prev.after_global_whitelist, next.after_global_whitelist),
            after_local_whitelist: d(prev.after_local_whitelist, next.after_local_whitelist),
            periodic: d(prev.periodic, next.periodic),
            after_token_filter: d(prev.after_token_filter, next.after_token_filter),
            after_novelty: d(prev.after_novelty, next.after_novelty),
            reported: d(prev.reported, next.reported),
        }
    }

    /// Adds `self` into a running accumulator (for telescoping checks).
    pub fn accumulate(&self, into: &mut [i64; 8]) {
        into[0] += self.events;
        into[1] += self.pairs;
        into[2] += self.after_global_whitelist;
        into[3] += self.after_local_whitelist;
        into[4] += self.periodic;
        into[5] += self.after_token_filter;
        into[6] += self.after_novelty;
        into[7] += self.reported;
    }
}

/// The outcome of closing one tick.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// The tick that closed.
    pub tick: u64,
    /// Inclusive lower edge of the window at this tick.
    pub window_start: u64,
    /// Full funnel levels over the current window state.
    pub stats: FilterStats,
    /// Signed change against the previous tick's levels.
    pub delta: TickDelta,
    /// Pairs removed this tick, in removal order: window expiries first
    /// (pair-key ascending), then budget evictions (LRU order).
    pub evicted: Vec<CommunicationPair>,
    /// The admission controller's decision for this tick.
    pub decision: AdmissionDecision,
    /// Detection runs actually executed this tick.
    pub detect_runs: u64,
    /// Detection verdicts served from the version cache this tick.
    pub detect_cached: u64,
    /// Resident state bytes (model cost) after this tick.
    pub resident_bytes: u64,
    /// Live pairs after this tick.
    pub live_pairs: u64,
}

/// The streaming engine. See the module docs for the full contract.
#[derive(Debug)]
pub struct StreamingHunt {
    config: StreamConfig,
    metrics: Arc<MetricsRegistry>,
    detector: PeriodicityDetector,
    scorer: DomainScorer,
    global_whitelist: GlobalWhitelist,
    local_whitelist: LocalWhitelist,
    admission: AdmissionController,
    pairs: BTreeMap<CommunicationPair, PairState>,
    /// LRU index: (last-seen tick, pair) ascending — pop-first is the
    /// coldest pair, ties broken by pair key.
    lru: BTreeSet<(u64, CommunicationPair)>,
    /// FNV-1a fingerprints of every pair ever removed, for readmission
    /// accounting without retaining the evicted keys themselves.
    evicted_fingerprints: BTreeSet<u64>,
    /// Read-only novelty memory: destination → sources already reported.
    /// Populated only by [`StreamingHunt::commit_reported`], so by
    /// default it matches a fresh batch engine (everything novel).
    novelty_reported: BTreeMap<String, BTreeSet<String>>,
    current_tick: Option<u64>,
    tick_buffer: Vec<LogRecord>,
    prev_stats: FilterStats,
    ledger: StreamLedger,
    resident_bytes: u64,
    /// Pre-eviction peak of the previous tick: eviction always pulls
    /// `resident_bytes` back under budget, so admission must react to
    /// how hard the budget was hit, not to the post-eviction residue.
    peak_resident_bytes: u64,
    ticks_closed: u64,
}

impl StreamingHunt {
    /// Builds a streaming engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `degrade_target` is
    /// outside `(0, 1]`, `degrade_detect_stride` is zero, or
    /// `ring_capacity` is zero.
    pub fn new(config: StreamConfig) -> Result<Self, CoreError> {
        if !(config.degrade_target > 0.0 && config.degrade_target <= 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "degrade_target",
                constraint: "must be in (0, 1]",
            });
        }
        if config.degrade_detect_stride == 0 {
            return Err(CoreError::InvalidConfig {
                name: "degrade_detect_stride",
                constraint: "must be at least 1",
            });
        }
        if config.ring_capacity == 0 {
            return Err(CoreError::InvalidConfig {
                name: "ring_capacity",
                constraint: "must be at least 1",
            });
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let scorer = DomainScorer::train(corpus::training_corpus(), config.pipeline.lm_order);
        let global_whitelist = if config.pipeline.use_builtin_whitelist {
            GlobalWhitelist::from_seed_corpus()
        } else {
            GlobalWhitelist::default()
        };
        let local_whitelist = LocalWhitelist::new(config.pipeline.local_tau);
        let detector = PeriodicityDetector::new(config.pipeline.detector.clone());
        let admission = AdmissionController::new(config.admission);
        Ok(Self {
            config,
            metrics,
            detector,
            scorer,
            global_whitelist,
            local_whitelist,
            admission,
            pairs: BTreeMap::new(),
            lru: BTreeSet::new(),
            evicted_fingerprints: BTreeSet::new(),
            novelty_reported: BTreeMap::new(),
            current_tick: None,
            tick_buffer: Vec::new(),
            prev_stats: FilterStats::default(),
            ledger: StreamLedger::default(),
            resident_bytes: 0,
            peak_resident_bytes: 0,
            ticks_closed: 0,
        })
    }

    /// The exact event/pair ledger.
    pub fn ledger(&self) -> &StreamLedger {
        &self.ledger
    }

    /// Resident state bytes under the deterministic cost model.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Live pairs currently holding state.
    pub fn live_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// The tick currently accepting events, if any event arrived yet.
    pub fn current_tick(&self) -> Option<u64> {
        self.current_tick
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Point-in-time snapshot of the stream's own metrics registry
    /// (`stream.*` counters and gauges, detector instruments).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Whether the admission controller is currently degrading or
    /// rejecting.
    pub fn is_under_pressure(&self) -> bool {
        self.admission.is_elevated()
    }

    /// Records pairs as already reported: they stop being novel for all
    /// subsequent per-tick funnels (the streaming analogue of the batch
    /// novelty store's day-over-day memory).
    pub fn commit_reported<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = CommunicationPair>,
    {
        for pair in pairs {
            self.novelty_reported
                .entry(pair.destination)
                .or_default()
                .insert(pair.source);
        }
    }

    /// Ingests a chunk of events, in any order within a tick. Records
    /// whose tick already closed are dropped as late; records in a future
    /// tick close every tick up to it. Returns the reports of all ticks
    /// closed by this chunk. Chunk boundaries carry no meaning: any
    /// split of the same trace yields identical state and reports.
    pub fn ingest(&mut self, records: &[LogRecord]) -> Vec<TickReport> {
        let mut reports = Vec::new();
        for record in records {
            self.metrics.counter("stream.events.offered").inc();
            let tick = self.config.schedule.tick_of(record.timestamp);
            match self.current_tick {
                None => {
                    self.ledger.offer_buffered(1);
                    self.current_tick = Some(tick);
                    self.tick_buffer.push(record.clone());
                }
                Some(current) if tick == current => {
                    self.ledger.offer_buffered(1);
                    self.tick_buffer.push(record.clone());
                }
                Some(current) if tick < current => {
                    self.ledger.offer_late(1);
                    // Gated: a clean in-order run never registers it.
                    self.metrics.counter("stream.events.late").inc();
                }
                Some(current) => {
                    reports.push(self.close_tick(current, false));
                    // Ticks with no events still advance the window.
                    for empty in current + 1..tick {
                        reports.push(self.close_tick(empty, false));
                    }
                    self.ledger.offer_buffered(1);
                    self.current_tick = Some(tick);
                    self.tick_buffer.push(record.clone());
                }
            }
        }
        reports
    }

    /// Closes the tick currently accepting events (forcing fresh
    /// detection even under degradation, so the final funnel is exact)
    /// and returns its report. `None` if no event was ever ingested.
    pub fn finish(&mut self) -> Option<TickReport> {
        let current = self.current_tick?;
        let report = self.close_tick(current, true);
        self.current_tick = Some(current);
        Some(report)
    }

    /// Reconstructs the final window's records from resident state, in
    /// deterministic order (pair key ascending, timestamps ascending).
    /// When [`StreamLedger::is_lossless`] holds, this is exactly the
    /// multiset of in-window records a batch run would have seen: every
    /// distinct timestamp with its multiplicity, and every in-window URL
    /// token carried by at least one record.
    pub fn final_window_records(&self) -> Vec<LogRecord> {
        let first_window_tick = self.first_window_tick();
        let mut out = Vec::new();
        for (pair, state) in &self.pairs {
            let tokens: Vec<String> = state.window_tokens(first_window_tick).into_iter().collect();
            let mut token_iter = tokens.iter();
            for entry in state.ring.entries() {
                for _ in 0..entry.multiplicity {
                    let token = token_iter.next().map(String::as_str).unwrap_or("");
                    out.push(LogRecord::new(
                        entry.timestamp,
                        &pair.source,
                        &pair.destination,
                        token,
                    ));
                }
            }
        }
        out
    }

    /// Runs the full batch pipeline over [`final_window_records`]
    /// (fresh engine, fresh novelty store — matching a fresh batch run
    /// over the same window) and returns its report together with that
    /// engine's metrics snapshot. In lossless mode the pair's
    /// [`crate::report::export_json`] is byte-identical to the batch
    /// pipeline's on the same window.
    ///
    /// [`final_window_records`]: StreamingHunt::final_window_records
    pub fn final_report(&self) -> (AnalysisReport, MetricsSnapshot) {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let mut engine = Baywatch::with_clock(self.config.pipeline.clone(), clock);
        let report = engine.analyze(self.final_window_records());
        let snapshot = engine.metrics_snapshot();
        (report, snapshot)
    }

    /// [`final_report`](StreamingHunt::final_report) exported through
    /// [`crate::report::export_json`] with the given `top_k`.
    pub fn final_export(&self, top_k: usize) -> String {
        let (report, snapshot) = self.final_report();
        crate::report::export_json(&report, &snapshot, top_k)
    }

    /// The ranked cases above the report percentile at the final window,
    /// by pair — the stream's confirmed-beacon set.
    pub fn confirmed_pairs(&self) -> Vec<CommunicationPair> {
        let (report, _) = self.final_report();
        report
            .reported()
            .iter()
            .map(|c| c.case.pair.clone())
            .collect()
    }

    /// First tick still inside the window of the current tick.
    fn first_window_tick(&self) -> u64 {
        let current = self.current_tick.unwrap_or(0);
        (current + 1).saturating_sub(self.config.schedule.window_ticks)
    }

    fn pressure(&self) -> f64 {
        if self.config.state_budget_bytes == u64::MAX {
            return 0.0;
        }
        if self.config.state_budget_bytes == 0 {
            return 1.0;
        }
        let bytes = self.resident_bytes.max(self.peak_resident_bytes);
        bytes as f64 / self.config.state_budget_bytes as f64
    }

    fn remove_pair(&mut self, pair: &CommunicationPair) {
        if let Some(state) = self.pairs.remove(pair) {
            self.lru.remove(&(state.last_seen_tick, pair.clone()));
            self.resident_bytes -= state.cost_bytes;
            let resident = state.ring.events();
            if resident > 0 {
                self.ledger.evict_events(resident);
            }
            self.ledger.evict_pair();
            self.evicted_fingerprints.insert(fingerprint(pair));
            self.metrics.counter("stream.pairs.evicted").inc();
        }
    }

    /// Folds the tick buffer into per-pair sorted (timestamp,
    /// multiplicity) batches plus token observations, then admits them.
    fn admit_buffer(&mut self, tick: u64, buffer: Vec<LogRecord>) {
        struct Fold {
            stamps: BTreeMap<u64, u64>,
            tokens: BTreeSet<String>,
        }
        let mut folded: BTreeMap<CommunicationPair, Fold> = BTreeMap::new();
        for record in buffer {
            let pair = CommunicationPair::new(&record.source, &record.domain);
            let fold = folded.entry(pair).or_insert_with(|| Fold {
                stamps: BTreeMap::new(),
                tokens: BTreeSet::new(),
            });
            *fold.stamps.entry(record.timestamp).or_insert(0) += 1;
            if !record.url_token.is_empty() {
                fold.tokens.insert(record.url_token);
            }
        }
        for (pair, fold) in folded {
            let mut overflow = 0u64;
            let batch: Vec<(u64, u32)> = fold
                .stamps
                .into_iter()
                .map(|(ts, n)| {
                    // A single timestamp observed more than u32::MAX times
                    // in one tick cannot be represented in a ring entry;
                    // the excess is accounted as capacity loss.
                    let kept = n.min(u64::from(u32::MAX));
                    overflow += n - kept;
                    (ts, kept as u32)
                })
                .collect();
            if !self.pairs.contains_key(&pair) {
                let readmitted = self.evicted_fingerprints.contains(&fingerprint(&pair));
                let whitelisted = self.global_whitelist.contains(&pair.destination);
                let state = PairState::new(&pair, self.config.ring_capacity, whitelisted, tick);
                self.resident_bytes += state.cost_bytes;
                self.lru.insert((tick, pair.clone()));
                self.pairs.insert(pair.clone(), state);
                self.ledger.admit_pair(readmitted);
                self.metrics.counter("stream.pairs.admitted").inc();
                if readmitted {
                    self.metrics.counter("stream.pairs.readmitted").inc();
                }
            }
            if let Some(state) = self.pairs.get_mut(&pair) {
                let total: u64 = batch.iter().map(|&(_, n)| u64::from(n)).sum::<u64>() + overflow;
                let before = state.ring.events();
                state.ring.append_batch(&batch);
                // Whatever was offered or previously resident but is not
                // resident now was lost to the capacity bound (including
                // the u32 overflow, which never reached the ring).
                let lost = before + total - state.ring.events();
                self.ledger.admit(total);
                if lost > 0 {
                    self.ledger.drop_capacity(lost);
                    // Gated: only a capacity overflow registers it.
                    self.metrics
                        .counter("stream.events.dropped_capacity")
                        .add(lost);
                }
                self.metrics.counter("stream.events.admitted").add(total);
                state.version += 1;
                let token_cost: u64 = fold
                    .tokens
                    .iter()
                    .filter(|t| !state.tokens.contains_key(*t))
                    .map(|t| TOKEN_BASE_BYTES + t.len() as u64)
                    .sum();
                for token in fold.tokens {
                    state.tokens.insert(token, tick);
                }
                state.cost_bytes += token_cost;
                self.resident_bytes += token_cost;
                if state.last_seen_tick != tick {
                    self.lru.remove(&(state.last_seen_tick, pair.clone()));
                    self.lru.insert((tick, pair.clone()));
                    state.last_seen_tick = tick;
                }
            }
        }
    }

    /// Ages every pair to the window of `tick`: ring retention at the
    /// (inclusive) window start, token retirement, and expiry of pairs
    /// whose window emptied. Returns expired pairs in key order.
    fn advance_window(&mut self, tick: u64) -> Vec<CommunicationPair> {
        let cutoff = self.config.schedule.window_start(tick);
        let first_window_tick = (tick + 1).saturating_sub(self.config.schedule.window_ticks);
        let mut expired = Vec::new();
        let mut retired_total = 0u64;
        let mut cost_freed = 0u64;
        for (pair, state) in &mut self.pairs {
            let dropped = state.ring.retain_from(cutoff);
            if dropped > 0 {
                retired_total += dropped;
                state.version += 1;
            }
            // Retire tokens whose last observation aged out of the window.
            let stale: Vec<String> = state
                .tokens
                .iter()
                .filter(|(_, &last)| last < first_window_tick)
                .map(|(t, _)| t.clone())
                .collect();
            for token in stale {
                let freed = TOKEN_BASE_BYTES + token.len() as u64;
                state.tokens.remove(&token);
                state.cost_bytes -= freed;
                cost_freed += freed;
                state.version += 1;
            }
            if state.ring.is_empty() {
                expired.push(pair.clone());
            }
        }
        if retired_total > 0 {
            self.ledger.retire(retired_total);
            self.metrics
                .counter("stream.events.retired")
                .add(retired_total);
        }
        self.resident_bytes -= cost_freed;
        for pair in &expired {
            // An expired pair's ring is already empty, so this moves no
            // events — only the pair itself — through the ledger.
            self.remove_pair(pair);
        }
        expired
    }

    /// Evicts coldest-first until resident state fits `target_bytes`.
    /// Returns the evicted pairs in eviction order.
    fn evict_to(&mut self, target_bytes: u64) -> Vec<CommunicationPair> {
        let mut evicted = Vec::new();
        while self.resident_bytes > target_bytes {
            let Some((_, pair)) = self.lru.first().cloned() else {
                break;
            };
            self.remove_pair(&pair);
            evicted.push(pair);
        }
        evicted
    }

    fn funnel_gauges(&self, stats: &FilterStats) {
        for (name, value) in [
            ("events", stats.events),
            ("pairs", stats.pairs),
            ("after_global_whitelist", stats.after_global_whitelist),
            ("after_local_whitelist", stats.after_local_whitelist),
            ("periodic", stats.periodic),
            ("after_token_filter", stats.after_token_filter),
            ("after_novelty", stats.after_novelty),
            ("reported", stats.reported),
        ] {
            self.metrics
                .gauge(&format!("stream.funnel.{name}"))
                .set(value as i64);
        }
    }

    /// Closes `tick`: admission decision, buffer fold-in, window
    /// advance, budget eviction, incremental re-detection, and the full
    /// funnel over the resulting state.
    fn close_tick(&mut self, tick: u64, force_detect: bool) -> TickReport {
        let buffer = std::mem::take(&mut self.tick_buffer);
        let decision = self.admission.decide(self.pressure(), false);
        match decision {
            AdmissionDecision::Reject => {
                let shed = buffer.len() as u64;
                if shed > 0 {
                    self.ledger.shed(shed);
                    // Gated: only an actual rejection registers these.
                    self.metrics.counter("stream.events.shed").add(shed);
                }
                self.metrics.counter("stream.ticks.rejected").inc();
            }
            AdmissionDecision::Degrade => {
                self.metrics.counter("stream.ticks.degraded").inc();
                self.admit_buffer(tick, buffer);
            }
            AdmissionDecision::Accept => {
                self.admit_buffer(tick, buffer);
            }
        }

        let mut removed = self.advance_window(tick);
        self.peak_resident_bytes = self.resident_bytes;
        let eviction_target = match decision {
            AdmissionDecision::Accept => self.config.state_budget_bytes,
            AdmissionDecision::Degrade | AdmissionDecision::Reject => {
                // Wider eviction while elevated: clear down to the
                // degrade target so pressure actually recedes.
                (self.config.state_budget_bytes as f64 * self.config.degrade_target) as u64
            }
        };
        removed.extend(self.evict_to(eviction_target));

        // Detection coarsening: while elevated, re-detect only every
        // N-th tick (stale verdicts stand in between); a forced close
        // (finish) always refreshes so the final funnel is exact.
        let detect_this_tick = force_detect
            || !self.admission.is_elevated()
            || self
                .ticks_closed
                .is_multiple_of(self.config.degrade_detect_stride);

        let stats = self.window_stats(tick, detect_this_tick);
        let delta = TickDelta::between(&self.prev_stats, &stats.0);
        self.prev_stats = stats.0;
        self.ticks_closed += 1;
        self.metrics.counter("stream.ticks").inc();
        self.metrics.counter("stream.detect.runs").add(stats.1);
        self.metrics.counter("stream.detect.cached").add(stats.2);
        self.metrics
            .gauge("stream.pairs.live")
            .set(self.pairs.len() as i64);
        self.metrics
            .gauge("stream.state.resident_bytes")
            .set(self.resident_bytes.min(i64::MAX as u64) as i64);
        self.funnel_gauges(&self.prev_stats);

        TickReport {
            tick,
            window_start: self.config.schedule.window_start(tick),
            stats: self.prev_stats,
            delta,
            evicted: removed,
            decision,
            detect_runs: stats.1,
            detect_cached: stats.2,
            resident_bytes: self.resident_bytes,
            live_pairs: self.pairs.len() as u64,
        }
    }

    /// Computes the full funnel over current window state, re-running
    /// detection only where the cached verdict's ring version is stale
    /// (and only if `detect` allows). Returns (stats, runs, cache hits).
    fn window_stats(&mut self, tick: u64, detect: bool) -> (FilterStats, u64, u64) {
        let first_window_tick = (tick + 1).saturating_sub(self.config.schedule.window_ticks);

        // Popularity over live pairs — bit-identical to
        // `PopularityStats::compute` over the window's records: distinct
        // sources per destination divided by total distinct sources.
        let mut all_sources: BTreeSet<&str> = BTreeSet::new();
        let mut per_domain: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for pair in self.pairs.keys() {
            all_sources.insert(pair.source.as_str());
            per_domain
                .entry(pair.destination.as_str())
                .or_default()
                .insert(pair.source.as_str());
        }
        let total_sources = all_sources.len();

        let mut stats = FilterStats::default();
        let mut events = 0u64;
        for state in self.pairs.values() {
            events += state.ring.events();
        }
        stats.events = events as usize;
        stats.pairs = self.pairs.len();

        // Filters 1–2 over pair keys; survivors carry their popularity.
        let mut survivors: Vec<(CommunicationPair, f64)> = Vec::new();
        for (pair, state) in &self.pairs {
            if state.whitelisted {
                continue;
            }
            stats.after_global_whitelist += 1;
            let sources = per_domain
                .get(pair.destination.as_str())
                .map(|s| s.len())
                .unwrap_or(0);
            let popularity = if total_sources == 0 {
                0.0
            } else {
                sources as f64 / total_sources as f64
            };
            if self.local_whitelist.is_whitelisted(popularity) {
                continue;
            }
            stats.after_local_whitelist += 1;
            survivors.push((pair.clone(), popularity));
        }

        // Filter 3: periodicity, cached by ring version. The detector
        // runs on this thread, so `with_thread_workspace` reuses FFT
        // plans across pairs *and* across ticks.
        let mut runs = 0u64;
        let mut cached = 0u64;
        let scale = self.config.pipeline.time_scale;
        let mut periodic: Vec<(CommunicationPair, Vec<CandidatePeriod>, f64)> = Vec::new();
        for (pair, popularity) in &survivors {
            let Some(state) = self.pairs.get_mut(pair) else {
                continue;
            };
            let fresh = matches!(&state.verdict, Some((v, _)) if *v == state.version);
            if fresh || !detect {
                cached += u64::from(fresh);
            } else {
                let verdict = detect_pair(&self.detector, &self.config.pipeline, &state.ring);
                state.verdict = Some((state.version, verdict));
                runs += 1;
            }
            match &state.verdict {
                Some((_, PairVerdict::Periodic(candidates))) => {
                    periodic.push((pair.clone(), candidates.clone(), *popularity));
                }
                Some((_, PairVerdict::TimedOut)) => stats.timed_out_pairs += 1,
                Some((_, PairVerdict::Quiet)) | None => {}
            }
        }
        stats.periodic = periodic.len();

        // Similar-source counts among periodic destinations — computed
        // before the token filter, exactly like the batch pipeline.
        let mut similar: BTreeMap<&str, usize> = BTreeMap::new();
        for (pair, _, _) in &periodic {
            *similar.entry(pair.destination.as_str()).or_insert(0) += 1;
        }
        let similar: BTreeMap<String, usize> = similar
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();

        // Filters 4–7.
        let mut cases: Vec<BeaconCase> = Vec::new();
        for (pair, candidates, popularity) in periodic {
            let Some(state) = self.pairs.get(&pair) else {
                continue;
            };
            let tokens = state.window_tokens(first_window_tick);
            if self.config.pipeline.token_filter.is_benign(&tokens) {
                continue;
            }
            stats.after_token_filter += 1;
            let novel = !self
                .novelty_reported
                .get(&pair.destination)
                .is_some_and(|s| s.contains(&pair.source));
            if !novel {
                continue;
            }
            stats.after_novelty += 1;
            let intervals: Vec<f64> = {
                let quantized: Vec<u64> = state
                    .ring
                    .entries()
                    .map(|e| e.timestamp / scale * scale)
                    .collect();
                quantized.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
            };
            cases.push(BeaconCase {
                popularity,
                lm_score: self.scorer.score_per_char(&pair.destination),
                similar_sources: similar.get(pair.destination.as_str()).copied().unwrap_or(1),
                intervals,
                url_tokens: tokens,
                pair,
                candidates,
            });
        }
        let (_ranked, report_cutoff) = rank_cases(&cases, &self.config.pipeline.rank);
        stats.reported = report_cutoff;
        (stats, runs, cached)
    }
}

/// One detection run over a pair's ring, replicating the batch job's
/// call exactly: quantized timestamps, a fresh per-pair budget, a
/// thread-local spectral workspace, and the same verdict mapping.
fn detect_pair(
    detector: &PeriodicityDetector,
    pipeline: &BaywatchConfig,
    ring: &TimestampRing,
) -> PairVerdict {
    let scale = pipeline.time_scale;
    let timestamps: Vec<u64> = ring
        .entries()
        .map(|e| e.timestamp / scale * scale)
        .collect();
    let budget = pipeline.detector.budget;
    with_thread_workspace(|ws| {
        match detector.detect_budgeted_in(ws, &timestamps, &budget.start()) {
            Ok(report) if report.is_periodic() => PairVerdict::Periodic(report.candidates),
            Ok(_) => PairVerdict::Quiet,
            Err(TimeSeriesError::BudgetExhausted) => PairVerdict::TimedOut,
            // Validation errors (too few events, zero span, …) mean "not
            // a beacon candidate", exactly as in the batch job.
            Err(_) => PairVerdict::Quiet,
        }
    })
}

/// FNV-1a 64-bit fingerprint of a pair key (source NUL destination).
fn fingerprint(pair: &CommunicationPair) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in pair
        .source
        .as_bytes()
        .iter()
        .chain([0u8].iter())
        .chain(pair.destination.as_bytes())
    {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(tick_seconds: u64, window_ticks: u64) -> StreamConfig {
        let schedule = ScheduleSpec::new(tick_seconds, window_ticks).unwrap();
        let mut config = StreamConfig::lossless(schedule);
        // Toy populations: a single-source pair has popularity 1.0, so
        // only the strict `> 1.0` comparison keeps it out of the local
        // whitelist. Skip the built-in global whitelist (synthetic
        // domains).
        config.pipeline.local_tau = 1.0;
        config.pipeline.use_builtin_whitelist = false;
        config
    }

    fn record(ts: u64, source: &str, domain: &str) -> LogRecord {
        LogRecord::new(ts, source, domain, "a1b2c3")
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = config(60, 4);
        c.degrade_target = 0.0;
        assert!(StreamingHunt::new(c).is_err());
        let mut c = config(60, 4);
        c.degrade_detect_stride = 0;
        assert!(StreamingHunt::new(c).is_err());
        let mut c = config(60, 4);
        c.ring_capacity = 0;
        assert!(StreamingHunt::new(c).is_err());
    }

    #[test]
    fn window_boundary_one_tick() {
        // window_ticks = 1: closing tick k+1 must retire every tick-k
        // event, but an event exactly on the new window edge stays.
        let mut hunt = StreamingHunt::new(config(60, 1)).unwrap();
        let records = vec![
            record(10, "h", "a.test"),
            record(59, "h", "a.test"),
            record(60, "h", "a.test"), // first ts of tick 1 == window edge
            record(61, "h", "a.test"),
        ];
        let reports = hunt.ingest(&records);
        assert_eq!(reports.len(), 1, "tick 0 closed when tick 1 opened");
        assert_eq!(reports[0].stats.events, 2);
        let last = hunt.finish().unwrap();
        assert_eq!(last.tick, 1);
        assert_eq!(last.window_start, 60);
        assert_eq!(
            last.stats.events, 2,
            "tick-0 events retired; the edge event at ts=60 retained"
        );
        assert_eq!(hunt.ledger().events_retired, 2);
        assert!(hunt.ledger().is_balanced());
    }

    #[test]
    fn window_boundary_exact_capacity_is_lossless() {
        let mut c = config(1_000, 4);
        c.ring_capacity = 5;
        let mut hunt = StreamingHunt::new(c).unwrap();
        let records: Vec<LogRecord> = (0..5).map(|i| record(i * 10, "h", "a.test")).collect();
        hunt.ingest(&records);
        let last = hunt.finish().unwrap();
        assert_eq!(last.stats.events, 5);
        assert_eq!(hunt.ledger().events_dropped_capacity, 0);
        assert!(hunt.ledger().is_lossless());
    }

    #[test]
    fn window_boundary_capacity_plus_one_drops_exactly_one() {
        let mut c = config(1_000, 4);
        c.ring_capacity = 5;
        let mut hunt = StreamingHunt::new(c).unwrap();
        let records: Vec<LogRecord> = (0..6).map(|i| record(i * 10, "h", "a.test")).collect();
        hunt.ingest(&records);
        let last = hunt.finish().unwrap();
        assert_eq!(last.stats.events, 5);
        assert_eq!(hunt.ledger().events_dropped_capacity, 1);
        assert!(!hunt.ledger().is_lossless());
        assert!(hunt.ledger().is_balanced());
        // The oldest timestamp is the one displaced.
        let state = hunt.pairs.values().next().unwrap();
        assert_eq!(state.ring.first_timestamp(), Some(10));
    }

    #[test]
    fn late_events_are_counted_not_admitted() {
        let mut hunt = StreamingHunt::new(config(60, 4)).unwrap();
        hunt.ingest(&[record(10, "h", "a.test"), record(130, "h", "a.test")]);
        // Tick 0 closed when ts=130 (tick 2) arrived; ts=30 is now late.
        hunt.ingest(&[record(30, "h", "a.test")]);
        assert_eq!(hunt.ledger().events_late, 1);
        // ts=130 still sits in the open tick-2 buffer.
        assert_eq!(hunt.ledger().events_admitted, 1);
        assert_eq!(hunt.ledger().events_buffered, 1);
        assert!(hunt.ledger().is_balanced());
        hunt.finish();
        assert_eq!(hunt.ledger().events_admitted, 2);
        assert_eq!(hunt.ledger().events_buffered, 0);
        assert!(hunt.ledger().is_balanced());
    }

    /// Same records, same tick boundaries, different chunk splits and
    /// intra-tick order: identical state, reports, and eviction order.
    #[test]
    fn eviction_determinism_across_interleavings() {
        let mut c = config(100, 2);
        // Small rings (519 bytes/pair with one token) and a budget that
        // fits ~7 of the 12 pairs, forcing evictions every tick.
        c.ring_capacity = 16;
        c.state_budget_bytes = 4 * 1024;
        let mut records = Vec::new();
        for tick in 0u64..8 {
            for p in 0u64..12 {
                let ts = tick * 100 + (p * 7) % 100;
                records.push(record(ts, &format!("h{p}"), &format!("d{p}.test")));
            }
        }
        records.push(record(900, "h0", "d0.test")); // closes the last tick

        let run = |chunks: Vec<Vec<LogRecord>>| {
            let mut hunt = StreamingHunt::new(c.clone()).unwrap();
            let mut reports = Vec::new();
            for chunk in chunks {
                reports.extend(hunt.ingest(&chunk));
            }
            let evictions: Vec<Vec<CommunicationPair>> =
                reports.iter().map(|r| r.evicted.clone()).collect();
            let live: Vec<CommunicationPair> = hunt.pairs.keys().cloned().collect();
            (evictions, live, *hunt.ledger())
        };

        let whole = run(vec![records.clone()]);
        // Chunked at an arbitrary boundary.
        let mid = records.len() / 3;
        let chunked = run(vec![records[..mid].to_vec(), records[mid..].to_vec()]);
        // Reversed within each tick (ticks themselves must stay ordered).
        let mut shuffled = Vec::new();
        for tick_records in records.chunks(12) {
            let mut tick_records = tick_records.to_vec();
            tick_records.reverse();
            shuffled.push(tick_records);
        }
        let reordered = run(shuffled);

        assert_eq!(whole.0, chunked.0, "eviction order differs when chunked");
        assert_eq!(whole.0, reordered.0, "eviction order differs when shuffled");
        assert_eq!(whole.1, chunked.1);
        assert_eq!(whole.1, reordered.1);
        assert_eq!(whole.2, chunked.2);
        assert_eq!(whole.2, reordered.2);
        assert!(whole.2.pairs_evicted > 0, "budget must actually evict");
        assert!(whole.2.is_balanced());
    }

    #[test]
    fn evicted_pair_readmits_with_a_fresh_ring() {
        let mut c = config(100, 8);
        // 519 bytes per pair (base 192 + 9 key bytes + 16×16 ring + one
        // 62-byte token): six pairs fit (3114), seven do not (3633), so
        // exactly one eviction happens per over-budget tick — always the
        // coldest pair, ties broken by key order.
        c.ring_capacity = 16;
        c.state_budget_bytes = 3_400;
        // Keep admission out of the way: this test is about eviction
        // only, and degradation would widen the eviction target.
        c.admission = AdmissionConfig {
            degrade_enter: 10.0,
            degrade_exit: 9.0,
            reject_enter: 20.0,
            reject_exit: 19.0,
        };
        let mut hunt = StreamingHunt::new(c).unwrap();
        // Tick 0: pair A (smallest key, so it loses LRU ties) plus five
        // others — six pairs, under budget.
        let mut records = vec![record(5, "a0", "aa.test")];
        for p in 0..5 {
            records.push(record(10 + p, &format!("h{p}"), &format!("d{p}.test")));
        }
        // Tick 1: the five stay warm and a sixth pair joins; seven pairs
        // exceed the budget and the coldest — A, at tick 0 — is evicted.
        for p in 0..6 {
            records.push(record(110 + p, &format!("h{p}"), &format!("d{p}.test")));
        }
        // Tick 2: A returns (readmission); now h5 is the coldest and is
        // evicted in its turn, never to return.
        records.push(record(205, "a0", "aa.test"));
        for p in 0..5 {
            records.push(record(210 + p, &format!("h{p}"), &format!("d{p}.test")));
        }
        // Tick 3: closes tick 2.
        records.push(record(305, "h0", "d0.test"));
        let reports = hunt.ingest(&records);
        let a = CommunicationPair::new("a0", "aa.test");
        assert!(
            reports.iter().any(|r| r.evicted.contains(&a)),
            "pair A must be evicted while cold: {reports:?}"
        );
        assert_eq!(hunt.ledger().pairs_readmitted, 1);
        let state = hunt.pairs.get(&a).expect("A is live again");
        assert_eq!(
            state.ring.timestamps(),
            vec![205],
            "readmitted pair must start from a fresh ring"
        );
        assert!(hunt.ledger().is_balanced());
        // The declared counters observed the cycle.
        let json = hunt.metrics_snapshot().to_json();
        assert!(json.contains("\"stream.pairs.evicted\""));
        assert!(json.contains("\"stream.pairs.readmitted\""));
    }

    #[test]
    fn reject_sheds_the_buffered_tick() {
        let mut c = config(100, 4);
        c.state_budget_bytes = 1; // any state at all overflows
        c.admission = AdmissionConfig {
            degrade_enter: 0.5,
            degrade_exit: 0.25,
            reject_enter: 1.0,
            reject_exit: 0.75,
        };
        let mut hunt = StreamingHunt::new(c).unwrap();
        let mut records = Vec::new();
        for tick in 0u64..4 {
            for p in 0..4 {
                records.push(record(
                    tick * 100 + p,
                    &format!("h{p}"),
                    &format!("d{p}.test"),
                ));
            }
        }
        let reports = hunt.ingest(&records);
        assert!(
            reports
                .iter()
                .any(|r| r.decision == AdmissionDecision::Reject),
            "pressure ≥ 1 must reject: {reports:?}"
        );
        assert!(hunt.ledger().events_shed > 0);
        assert!(hunt.ledger().is_balanced());
    }

    #[test]
    fn deltas_telescope_to_final_levels() {
        let mut hunt = StreamingHunt::new(config(60, 4)).unwrap();
        let mut records = Vec::new();
        for i in 0..40u64 {
            records.push(record(i * 30, "beacon", "qwzkrvbplm.test"));
        }
        for i in 0..25u64 {
            records.push(record((i * i * 13) % 1200, "human", "news.test"));
        }
        records.sort_by_key(|r| r.timestamp);
        let mut reports = hunt.ingest(&records);
        reports.extend(hunt.finish());
        let mut acc = [0i64; 8];
        for r in &reports {
            r.delta.accumulate(&mut acc);
        }
        let last = &reports[reports.len() - 1].stats;
        assert_eq!(
            acc,
            [
                last.events as i64,
                last.pairs as i64,
                last.after_global_whitelist as i64,
                last.after_local_whitelist as i64,
                last.periodic as i64,
                last.after_token_filter as i64,
                last.after_novelty as i64,
                last.reported as i64,
            ]
        );
    }

    #[test]
    fn verdict_cache_reuses_unchanged_windows() {
        // A pair that stops sending keeps its window unchanged while the
        // window hasn't slid past its events: no re-detection needed.
        let mut hunt = StreamingHunt::new(config(100, 100)).unwrap();
        let mut records: Vec<LogRecord> =
            (0..30u64).map(|i| record(i * 10, "h", "a.test")).collect();
        // Three quiet ticks afterwards (window long enough to retire
        // nothing), driven by a second distant pair.
        for tick in 4u64..7 {
            records.push(record(tick * 100 + 1, "other", "b.test"));
        }
        let reports = hunt.ingest(&records);
        let later: Vec<&TickReport> = reports.iter().filter(|r| r.tick >= 4).collect();
        assert!(!later.is_empty());
        assert!(
            later.iter().any(|r| r.detect_cached > 0),
            "unchanged pair must serve from the verdict cache: {later:?}"
        );
        assert!(hunt.ledger().is_lossless());
    }

    #[test]
    fn commit_reported_suppresses_novelty() {
        let mut hunt = StreamingHunt::new(config(60, 4)).unwrap();
        let records: Vec<LogRecord> = (0..40u64)
            .map(|i| record(i * 30, "beacon", "qwzkrvbplm.test"))
            .collect();
        hunt.ingest(&records);
        let before = hunt.finish().unwrap();
        assert!(before.stats.after_novelty > 0, "fresh pair must be novel");
        hunt.commit_reported([CommunicationPair::new("beacon", "qwzkrvbplm.test")]);
        let after = hunt.finish().unwrap();
        assert_eq!(after.stats.after_novelty, 0, "committed pair is not novel");
    }

    #[test]
    fn fingerprints_distinguish_field_boundaries() {
        // The NUL separator keeps ("ab", "c") distinct from ("a", "bc").
        let a = fingerprint(&CommunicationPair::new("ab", "c"));
        let b = fingerprint(&CommunicationPair::new("a", "bc"));
        assert_ne!(a, b);
    }
}
