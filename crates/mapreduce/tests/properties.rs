//! Property-based tests of the MapReduce engine: results must equal a
//! sequential reference computation regardless of partitioning/threading.

use std::collections::HashMap;

use baywatch_mapreduce::{partition_of, JobConfig, MapReduce};
use proptest::prelude::*;

fn reference_word_count(docs: &[String]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for d in docs {
        for w in d.split_whitespace() {
            *m.entry(w.to_owned()).or_insert(0) += 1;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Word count equals the sequential reference for any corpus and any
    /// engine configuration.
    #[test]
    fn equals_sequential_reference(
        docs in prop::collection::vec("[a-c ]{0,30}", 0..60),
        partitions in 1usize..64,
        threads in 1usize..9,
    ) {
        let engine = MapReduce::new(JobConfig { partitions, threads });
        let out = engine.run(
            docs.clone(),
            |doc: String, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |w, ones| vec![(w.clone(), ones.len())],
        );
        let reference = reference_word_count(&docs);
        let as_map: HashMap<String, usize> = out.into_iter().collect();
        prop_assert_eq!(as_map, reference);
    }

    /// The combiner path computes identical sums to the plain path.
    #[test]
    fn combiner_equivalence(
        keys in prop::collection::vec(0u64..20, 0..400),
        partitions in 1usize..16,
    ) {
        let engine = MapReduce::new(JobConfig { partitions, threads: 4 });
        let mut plain = engine.run(
            keys.clone(),
            |k, emit| emit(k, 1u64),
            |k, vs| vec![(*k, vs.iter().sum::<u64>())],
        );
        let mut combined = engine.run_with_combiner(
            keys,
            |k: u64, emit: &mut dyn FnMut(u64, u64)| emit(k, 1u64),
            |a, b| a + b,
            |k, vs| vec![(*k, vs.iter().sum::<u64>())],
        );
        plain.sort();
        combined.sort();
        prop_assert_eq!(plain, combined);
    }

    /// Output is invariant to thread count (determinism).
    #[test]
    fn thread_count_invariance(values in prop::collection::vec(0u32..1000, 0..300)) {
        let run_with = |threads: usize| {
            MapReduce::new(JobConfig { partitions: 8, threads }).run(
                values.clone(),
                |v, emit| emit(v % 13, v as u64),
                |k, mut vs| {
                    vs.sort();
                    vec![(*k, vs)]
                },
            )
        };
        prop_assert_eq!(run_with(1), run_with(7));
    }

    /// Partition assignment is total and stable.
    #[test]
    fn partitioning_valid(key in any::<u64>(), partitions in 1usize..1000) {
        let p = partition_of(&key, partitions);
        prop_assert!(p < partitions);
        prop_assert_eq!(p, partition_of(&key, partitions));
    }

    /// No records are lost: the count of reduced values equals the count
    /// of mapped emissions.
    #[test]
    fn no_record_loss(values in prop::collection::vec(any::<u16>(), 0..500)) {
        let engine = MapReduce::new(JobConfig { partitions: 16, threads: 4 });
        let (out, stats) = engine.run_with_stats(
            values.clone(),
            |v, emit| emit(v % 31, v),
            |k, vs| vec![(*k, vs.len())],
        );
        let reduced_total: usize = out.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(reduced_total, values.len());
        prop_assert_eq!(stats.map_output_records(), values.len());
    }
}

use baywatch_mapreduce::FaultReport;
use std::time::Duration;

/// Sample lists as the engine maintains them: deduplicated, bounded. Long
/// enough (up to 15 each) that merging three reports can trip the 32-entry
/// absorb cap.
fn arb_samples() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-e]{1,3}", 0..15).prop_map(|raw| {
        let mut out: Vec<String> = Vec::new();
        for s in raw {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    })
}

fn arb_fault_report() -> impl Strategy<Value = FaultReport> {
    (
        (0usize..100, 0usize..100, 0usize..100, 0usize..100),
        (0usize..100, 0usize..100, 0usize..100, 0usize..1000),
        (arb_samples(), arb_samples(), arb_samples(), arb_samples()),
        (0u64..10_000, 0u64..10_000, 0u64..10_000),
    )
        .prop_map(
            |(
                (map_retries, reduce_retries, quarantined_inputs, map_bisections),
                (quarantined_keys, timed_out_inputs, timed_out_keys, lost_values),
                (input_samples, key_samples, timeout_samples, panic_samples),
                (map_us, shuffle_us, reduce_us),
            )| FaultReport {
                map_retries,
                reduce_retries,
                quarantined_inputs,
                map_bisections,
                quarantined_keys,
                timed_out_inputs,
                timed_out_keys,
                lost_values,
                input_samples,
                key_samples,
                timeout_samples,
                panic_samples,
                map_elapsed: Duration::from_micros(map_us),
                shuffle_elapsed: Duration::from_micros(shuffle_us),
                reduce_elapsed: Duration::from_micros(reduce_us),
            },
        )
}

proptest! {
    /// `FaultReport::absorb` is associative over engine-reachable reports
    /// (deduplicated, bounded sample lists) and preserves every numeric
    /// tally exactly — the property the checkpoint machinery relies on
    /// when it folds per-shard reports into a window report in resume
    /// order rather than execution order.
    #[test]
    fn fault_report_absorb_is_associative_and_count_preserving(
        a in arb_fault_report(),
        b in arb_fault_report(),
        c in arb_fault_report(),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        prop_assert_eq!(&left, &right);

        // Count preservation: numeric tallies sum exactly, nothing
        // saturates or is clamped.
        prop_assert_eq!(left.map_retries, a.map_retries + b.map_retries + c.map_retries);
        prop_assert_eq!(left.reduce_retries, a.reduce_retries + b.reduce_retries + c.reduce_retries);
        prop_assert_eq!(
            left.quarantined_inputs,
            a.quarantined_inputs + b.quarantined_inputs + c.quarantined_inputs
        );
        prop_assert_eq!(left.map_bisections, a.map_bisections + b.map_bisections + c.map_bisections);
        prop_assert_eq!(
            left.quarantined_keys,
            a.quarantined_keys + b.quarantined_keys + c.quarantined_keys
        );
        prop_assert_eq!(
            left.timed_out_inputs,
            a.timed_out_inputs + b.timed_out_inputs + c.timed_out_inputs
        );
        prop_assert_eq!(left.timed_out_keys, a.timed_out_keys + b.timed_out_keys + c.timed_out_keys);
        prop_assert_eq!(left.lost_values, a.lost_values + b.lost_values + c.lost_values);
        prop_assert_eq!(left.map_elapsed, a.map_elapsed + b.map_elapsed + c.map_elapsed);
        prop_assert_eq!(
            left.shuffle_elapsed,
            a.shuffle_elapsed + b.shuffle_elapsed + c.shuffle_elapsed
        );
        prop_assert_eq!(left.reduce_elapsed, a.reduce_elapsed + b.reduce_elapsed + c.reduce_elapsed);

        // The default report is the identity element.
        let mut with_identity = a.clone();
        with_identity.absorb(&FaultReport::default());
        prop_assert_eq!(with_identity, a);
    }
}
