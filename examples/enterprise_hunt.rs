//! Enterprise hunt: simulate a corporate network for a week, run BAYWATCH
//! daily (as the paper operates it, §VIII-B2), and score the findings
//! against ground truth.
//!
//! ```text
//! cargo run --release --example enterprise_hunt
//! ```
//!
//! Pass `--json` to additionally emit the machine-readable observability
//! export for the final day — the funnel, fault report, metrics snapshot
//! and ranked top-K as one stable JSON document (the same schema the
//! golden-run suite pins; see README "Observability"):
//!
//! ```text
//! cargo run --release --example enterprise_hunt -- --json
//! ```
//!
//! Durable hunts: `--checkpoint-dir DIR` persists each day's detection
//! phase shard-by-shard under `DIR/day_NN`, so an interrupted hunt loses
//! at most one shard of work. Re-run with `--resume` to pick up where the
//! interrupted run stopped (the resumed report is byte-identical to an
//! uninterrupted one), and add `--replay-dlq` to re-run dead-letter-queue
//! pairs — budget-exhausted or quarantined ones — under 4× the configured
//! per-pair budget:
//!
//! ```text
//! cargo run --release --example enterprise_hunt -- --checkpoint-dir /tmp/hunt
//! cargo run --release --example enterprise_hunt -- --checkpoint-dir /tmp/hunt --resume --replay-dlq
//! ```
//!
//! Resilience knobs (see DESIGN.md §11):
//!
//! * `--breaker-failures N` / `--breaker-rate F` / `--breaker-cooldown-secs S`
//!   configure the per-source ingest circuit breakers,
//! * `--max-retries N` / `--backoff-base NANOS` arm the retry backoff
//!   schedule between MapReduce task attempts (base 0 = disarmed),
//! * `--flapping` replaces the hunt with a breaker soak: a netsim
//!   flapping ELFF source (alternating clean / 90%-corrupt windows) is
//!   driven through the guarded ingest on a manual clock, demonstrating
//!   the full open → half-open → closed recovery cycle with exact
//!   per-line accounting; combine with `--json` for the machine export,
//! * `--print-backoff` prints the deterministic backoff schedule and
//!   exits (the CI soak job diffs this output across debug and release).
//!
//! Streaming mode (see DESIGN.md §12): `--stream` replaces the daily
//! batch hunt with the incremental engine — bounded per-pair state,
//! budget-driven eviction, per-tick funnel deltas — fed either from the
//! infinite netsim long trace (default) or from newline-delimited
//! `timestamp source domain [token]` shards on stdin (`--stream-stdin`):
//!
//! ```text
//! cargo run --release --example enterprise_hunt -- --stream
//! cargo run --release --example enterprise_hunt -- --stream \
//!     --tick-seconds 300 --window-ticks 4 --ring-capacity 64 \
//!     --state-budget-bytes 262144 --stream-ticks 24 --json
//! generate_shards | cargo run --release --example enterprise_hunt -- \
//!     --stream --stream-stdin
//! ```

#![warn(clippy::unwrap_used)]

use std::collections::HashSet;
use std::sync::Arc;

use baywatch::core::checkpoint::CheckpointSpec;
use baywatch::core::io::IngestGuard;
use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::record::LogRecord;
use baywatch::core::report::export_json;
use baywatch::core::stream::{StreamConfig, StreamingHunt, TickReport};
use baywatch::core::ScheduleSpec;
use baywatch::netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use baywatch::netsim::longtrace::{LongTraceConfig, LongTraceGenerator};
use baywatch::netsim::resilience::{flapping_source, FlappingConfig};
use baywatch::obs::{Clock, ManualClock};
use baywatch::record_from_event;
use baywatch::resilience::{BreakerConfig, RetryPolicy};
use baywatch::timeseries::BudgetSpec;

/// Parses the value following `name`, exiting with a message when present
/// but unparseable.
fn flag_value<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let i = args.iter().position(|a| a == name)?;
    let Some(raw) = args.get(i + 1) else {
        eprintln!("{name} requires a value");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("invalid value `{raw}` for {name}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let emit_json = args.iter().any(|a| a == "--json");
    let resume = args.iter().any(|a| a == "--resume");
    let replay_dlq = args.iter().any(|a| a == "--replay-dlq");
    let checkpoint_dir = args
        .iter()
        .position(|a| a == "--checkpoint-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if (resume || replay_dlq) && checkpoint_dir.is_none() {
        eprintln!("--resume / --replay-dlq require --checkpoint-dir DIR");
        std::process::exit(2);
    }
    let mut retry = RetryPolicy::default();
    if let Some(n) = flag_value(&args, "--max-retries") {
        retry.max_retries = n;
    }
    if let Some(base) = flag_value(&args, "--backoff-base") {
        retry.base_nanos = base;
    }
    if args.iter().any(|a| a == "--print-backoff") {
        print_backoff_schedule(&retry);
        return;
    }
    let breaker = BreakerConfig {
        failure_threshold: flag_value(&args, "--breaker-failures").unwrap_or(5),
        failure_rate: flag_value(&args, "--breaker-rate").unwrap_or(0.2),
        cooldown_nanos: flag_value::<u64>(&args, "--breaker-cooldown-secs").unwrap_or(60)
            * 1_000_000_000,
        ..BreakerConfig::default()
    };
    if args.iter().any(|a| a == "--flapping") {
        run_flapping_scenario(breaker, retry, emit_json);
        return;
    }
    if args.iter().any(|a| a == "--stream") {
        run_stream_scenario(&args, emit_json);
        return;
    }
    // ---- Simulate the enterprise. -------------------------------------
    let config = EnterpriseConfig {
        hosts: 150,
        days: 7,
        infection_rate: 0.06,
        ..Default::default()
    };
    let sim = EnterpriseSimulator::new(config);
    let truth = sim.ground_truth();
    println!(
        "simulated {} hosts, {} campaigns, {} infected hosts",
        sim.config().hosts,
        sim.campaigns().len(),
        truth.infected_host_count()
    );
    for c in sim.campaigns() {
        println!(
            "  campaign: {:?} -> {} ({} hosts, from day {})",
            c.profile,
            c.domain,
            c.hosts.len(),
            c.start_day
        );
    }

    // ---- Daily operation. ----------------------------------------------
    // τ_P = 5%: with 150 hosts, organizational services (update/AV pollers
    // subscribed by ~80% of machines) sit far above it, victim pools of
    // 1–5 hosts far below.
    let config = BaywatchConfig {
        local_tau: 0.05,
        retry,
        ..Default::default()
    };
    // DLQ replay runs under 4× the per-pair detection budget (a limit of
    // `None` stays unlimited).
    let replay_budget = BudgetSpec {
        max_millis: config.detector.budget.max_millis.map(|m| m * 4),
        max_ops: config.detector.budget.max_ops.map(|o| o * 4),
    };
    let mut engine = Baywatch::new(config);

    let mut reported: HashSet<String> = HashSet::new();
    let mut flagged: HashSet<String> = HashSet::new();
    let mut last_report = None;
    for day in 0..sim.config().days {
        let events = sim.generate_day(day);
        let records = events.iter().map(record_from_event).collect();
        let report = match &checkpoint_dir {
            None => engine.analyze(records),
            Some(base) => {
                let spec = CheckpointSpec {
                    resume,
                    replay_budget: replay_dlq.then_some(replay_budget),
                    ..CheckpointSpec::new(base.join(format!("day_{day:02}")))
                };
                match engine.analyze_checkpointed(records, &spec) {
                    Ok(report) => report,
                    Err(err) => {
                        eprintln!("checkpoint I/O failed under {}: {err}", spec.dir.display());
                        std::process::exit(1);
                    }
                }
            }
        };
        let day_kind = if sim.is_weekend(day) {
            "weekend"
        } else {
            "weekday"
        };
        println!(
            "day {day} ({day_kind}): {} events, {} pairs, {} periodic, {} reported",
            report.stats.events, report.stats.pairs, report.stats.periodic, report.stats.reported
        );
        if let Some(ck) = &report.checkpoint {
            println!(
                "    checkpoint: {}/{} shards resumed, {} executed, dlq {} entries ({} replayed, {} recovered)",
                ck.resumed_shards,
                ck.total_shards,
                ck.executed_shards,
                ck.dlq_entries,
                ck.dlq_replayed,
                ck.dlq_recovered
            );
        }
        for rc in &report.ranked {
            flagged.insert(rc.case.pair.destination.clone());
        }
        for rc in report.reported() {
            println!(
                "    reported: {}  (score {:.2}, period {:?})",
                rc.case.pair,
                rc.score,
                rc.case.smallest_period().map(|p| p.round())
            );
            reported.insert(rc.case.pair.destination.clone());
        }
        last_report = Some(report);
    }

    // ---- Score against ground truth. -----------------------------------
    let true_hits: Vec<&String> = reported.iter().filter(|d| truth.is_malicious(d)).collect();
    let missed: Vec<&String> = truth
        .malicious_domains
        .iter()
        .filter(|d| !flagged.contains(*d))
        .collect();
    println!("\n--- verdict ---");
    println!(
        "reported {} distinct destinations above the 90th percentile; {} truly malicious, {} false alarms",
        reported.len(),
        true_hits.len(),
        reported.len() - true_hits.len()
    );
    let flagged_mal = truth
        .malicious_domains
        .iter()
        .filter(|d| flagged.contains(*d))
        .count();
    println!(
        "coverage: {}/{} malicious destinations flagged by the pipeline ({} of them top-ranked)",
        flagged_mal,
        truth.malicious_domains.len(),
        true_hits.len()
    );
    if !missed.is_empty() {
        println!("missed: {missed:?} (low-and-slow campaigns may need the weekly/monthly pass)");
    }

    // ---- Machine-readable export. --------------------------------------
    // Funnel counts are the final day's window; the metrics snapshot is
    // cumulative over the whole week (the registry lives on the engine).
    if emit_json {
        if let Some(report) = &last_report {
            println!("\n--- observability export (--json) ---");
            println!("{}", export_json(report, &engine.metrics_snapshot(), 10));
        }
    }
}

/// Runs the streaming engine: continuous ingestion with bounded
/// per-pair state under a global memory budget, per-tick funnel deltas,
/// and a final window report equivalent to a batch run. Fed from the
/// infinite netsim long trace by default, or from stdin shards
/// (`--stream-stdin`, one `timestamp source domain [token]` per line).
fn run_stream_scenario(args: &[String], emit_json: bool) {
    let tick_seconds = flag_value(args, "--tick-seconds").unwrap_or(300);
    let window_ticks = flag_value(args, "--window-ticks").unwrap_or(4);
    let schedule = match ScheduleSpec::new(tick_seconds, window_ticks) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("invalid schedule: {err}");
            std::process::exit(2);
        }
    };
    let mut config = StreamConfig::lossless(schedule);
    config.ring_capacity = flag_value(args, "--ring-capacity").unwrap_or(64);
    config.state_budget_bytes = flag_value(args, "--state-budget-bytes").unwrap_or(256 * 1024);
    config.pipeline = BaywatchConfig {
        local_tau: 0.05,
        ..Default::default()
    };
    let mut hunt = match StreamingHunt::new(config) {
        Ok(hunt) => hunt,
        Err(err) => {
            eprintln!("invalid stream config: {err}");
            std::process::exit(2);
        }
    };

    let print_tick = |r: &TickReport| {
        println!(
            "tick {:>4} [{:>7}] events {:>5} pairs {:>4} periodic {:>3} reported {:>3} | \
             live {:>4} resident {:>8}B evicted {:>3} detect {}/{} cached",
            r.tick,
            format!("{:?}", r.decision),
            r.stats.events,
            r.stats.pairs,
            r.stats.periodic,
            r.stats.reported,
            r.live_pairs,
            r.resident_bytes,
            r.evicted.len(),
            r.detect_runs,
            r.detect_cached,
        );
    };

    if args.iter().any(|a| a == "--stream-stdin") {
        println!("streaming from stdin (timestamp source domain [token] per line)...");
        let mut malformed = 0usize;
        let mut line = String::new();
        while std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut line).unwrap_or(0) > 0
        {
            let mut fields = line.split_whitespace();
            let record = match (fields.next().and_then(|t| t.parse().ok()), fields.next(), fields.next())
            {
                (Some(timestamp), Some(source), Some(domain)) => LogRecord::new(
                    timestamp,
                    source,
                    domain,
                    fields.next().unwrap_or(""),
                ),
                _ => {
                    if !line.trim().is_empty() {
                        malformed += 1;
                    }
                    line.clear();
                    continue;
                }
            };
            line.clear();
            for report in hunt.ingest(&[record]) {
                print_tick(&report);
            }
        }
        if malformed > 0 {
            println!("skipped {malformed} malformed stdin lines");
        }
    } else {
        let ticks: u64 = flag_value(args, "--stream-ticks").unwrap_or(12);
        let generator = LongTraceGenerator::new(LongTraceConfig {
            tick_seconds,
            ..LongTraceConfig::default()
        });
        println!(
            "streaming {} ticks of the long trace; planted beacons: {:?}",
            ticks,
            generator.beacon_domains()
        );
        for tick in 0..ticks {
            let records: Vec<LogRecord> = generator
                .tick_events(tick)
                .iter()
                .map(record_from_event)
                .collect();
            for report in hunt.ingest(&records) {
                print_tick(&report);
            }
        }
    }
    if let Some(report) = hunt.finish() {
        print_tick(&report);
    }

    let ledger = hunt.ledger();
    println!(
        "ledger: offered {} admitted {} late {} shed {} capacity-dropped {} retired {} \
         evicted {} resident {} | pairs admitted {} live {} evicted {} readmitted {} \
         balanced={} lossless={}",
        ledger.events_offered,
        ledger.events_admitted,
        ledger.events_late,
        ledger.events_shed,
        ledger.events_dropped_capacity,
        ledger.events_retired,
        ledger.events_evicted,
        ledger.events_resident,
        ledger.pairs_admitted,
        ledger.pairs_live,
        ledger.pairs_evicted,
        ledger.pairs_readmitted,
        ledger.is_balanced(),
        ledger.is_lossless(),
    );
    println!("confirmed beacons at the final window:");
    for pair in hunt.confirmed_pairs() {
        println!("    {pair}");
    }
    if emit_json {
        println!("\n--- observability export (--json) ---");
        println!("{}", hunt.final_export(10));
    }
}

/// Prints the retry backoff schedule for a grid of (stream, attempt)
/// pairs. The schedule is a pure function of the policy, so this output
/// is byte-identical across builds and optimization levels — the CI soak
/// job diffs it between debug and release binaries.
fn print_backoff_schedule(retry: &RetryPolicy) {
    println!(
        "backoff schedule: base={} multiplier={} cap={} seed={:#x} jitter={} max_retries={}",
        retry.base_nanos, retry.multiplier, retry.cap_nanos, retry.seed, retry.jitter, retry.max_retries
    );
    let attempts = retry.max_retries.max(4);
    for stream in 0..4u64 {
        for attempt in 1..=attempts {
            println!(
                "stream={stream} attempt={attempt} nanos={}",
                retry.backoff_nanos(attempt, stream)
            );
        }
    }
}

/// Drives a netsim flapping ELFF source (alternating clean and
/// 90%-corrupt windows) through the breaker-guarded ingest on a manual
/// clock, then analyzes the admitted records. The window cadence exceeds
/// the breaker cooldown, so every bad window trips the source open and
/// every following clean window walks it through half-open probes back
/// to closed — the `resilience.ingest.*` counters in the `--json` export
/// carry the full cycle.
fn run_flapping_scenario(breaker: BreakerConfig, retry: RetryPolicy, emit_json: bool) {
    let flap = FlappingConfig {
        windows: 8,
        ..Default::default()
    };
    let windows = flapping_source(&flap, 42);
    let clock = Arc::new(ManualClock::new());
    let mut guard = IngestGuard::new(breaker, clock.clone() as Arc<dyn Clock>);
    let mut records = Vec::new();
    let (mut offered, mut admitted, mut rejected) = (0usize, 0usize, 0usize);
    println!(
        "flapping source: {} windows x {} events, corruption {:.0}% on bad windows",
        flap.windows,
        flap.events_per_window,
        flap.bad_corruption_rate * 100.0
    );
    for w in &windows {
        let out = match guard.read_elff_source("flapping-proxy", w.bytes.as_slice()) {
            Ok(out) => out,
            Err(err) => {
                eprintln!("in-memory read cannot fail: {err}");
                std::process::exit(1);
            }
        };
        println!(
            "window {} ({}): offered {} admitted {} rejected {} probes {} malformed {} -> {:?}",
            w.index,
            if w.bad { "corrupt" } else { "clean" },
            out.offered_lines,
            out.admitted_lines,
            out.rejected_lines,
            out.probe_lines,
            out.outcome.malformed_lines,
            out.final_state
        );
        offered += out.offered_lines;
        admitted += out.admitted_lines;
        rejected += out.rejected_lines;
        records.extend(out.outcome.records);
        clock.advance(flap.window_seconds * 1_000_000_000);
    }
    let stats = guard.stats();
    println!(
        "breaker cycle: opened {} half-opened {} closed {}",
        stats.opened, stats.half_opened, stats.closed
    );
    println!(
        "flapping accounting: offered={offered} admitted={admitted} rejected={rejected} exact={}",
        offered == admitted + rejected
    );
    let config = BaywatchConfig {
        local_tau: 0.05,
        retry,
        ..Default::default()
    };
    let mut engine = Baywatch::with_clock(config, clock);
    guard.record_metrics(engine.metrics());
    let report = engine.analyze(records);
    println!(
        "analysis of admitted lines: {} events, {} pairs, {} periodic, {} reported",
        report.stats.events, report.stats.pairs, report.stats.periodic, report.stats.reported
    );
    if emit_json {
        println!("\n--- observability export (--json) ---");
        println!("{}", export_json(&report, &engine.metrics_snapshot(), 10));
    }
}
