//! Structure recovered from the token stream: matched delimiters, test-only
//! regions, and function-body spans.
//!
//! The rules need just enough shape to reason about scopes — "is this token
//! inside `#[cfg(test)]` code?", "what is the body of this `while`?",
//! "which `let` bindings in this function hold hash containers?" — without
//! a full AST. Delimiter matching over the lexed stream recovers all of it.

use crate::lexer::{Token, TokenKind};

/// A half-open token-index range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }
}

/// Token stream plus the structural indexes every rule shares.
pub struct File {
    pub tokens: Vec<Token>,
    /// `match_of[i]` is the index of the delimiter matching the one at `i`
    /// (for both the opening and closing side), when balanced.
    match_of: Vec<Option<usize>>,
    /// Spans of test-only code: bodies introduced by `#[cfg(test)]` or
    /// `#[test]`-like attributes, including the attribute itself.
    test_spans: Vec<Span>,
    /// Body spans of every `fn` (token range between its `{` and `}`,
    /// inclusive of the braces).
    fn_bodies: Vec<Span>,
}

impl File {
    pub fn parse(tokens: Vec<Token>) -> Self {
        let match_of = match_delimiters(&tokens);
        let test_spans = find_test_spans(&tokens, &match_of);
        let fn_bodies = find_fn_bodies(&tokens, &match_of);
        Self {
            tokens,
            match_of,
            test_spans,
            fn_bodies,
        }
    }

    /// The index of the delimiter matching the one at `idx`, when balanced.
    pub fn matching(&self, idx: usize) -> Option<usize> {
        self.match_of.get(idx).copied().flatten()
    }

    /// Whether the token at `idx` lies inside test-only code.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(idx))
    }

    /// The innermost function body containing `idx`, if any.
    pub fn enclosing_fn_body(&self, idx: usize) -> Option<Span> {
        self.fn_bodies
            .iter()
            .filter(|s| s.contains(idx))
            .min_by_key(|s| s.end - s.start)
            .copied()
    }

    /// The end of the statement containing `idx`: the index of the `;`
    /// closing it at the same delimiter depth, or of the `}` that closes
    /// the enclosing block. Nested `(`/`[`/`{` groups are skipped whole.
    pub fn statement_end(&self, idx: usize) -> usize {
        let mut i = idx;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            if t.is_punct(';') {
                return i;
            }
            if t.is_punct('}') {
                return i;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                match self.matching(i) {
                    Some(close) => i = close + 1,
                    None => return self.tokens.len().saturating_sub(1),
                }
                continue;
            }
            i += 1;
        }
        self.tokens.len().saturating_sub(1)
    }

    /// The start of the statement containing `idx`: the token right after
    /// the previous `;`, `{`, or `}` at the same delimiter depth.
    pub fn statement_start(&self, idx: usize) -> usize {
        let mut i = idx;
        while i > 0 {
            let prev = &self.tokens[i - 1];
            if prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}') {
                return i;
            }
            if prev.is_punct(')') || prev.is_punct(']') {
                // Step over the whole group; `}` is handled above because a
                // closing brace at the same depth really does end the
                // previous statement (blocks are statements).
                match self.matching(i - 1) {
                    Some(open) => i = open,
                    None => return 0,
                }
                continue;
            }
            i -= 1;
        }
        0
    }
}

fn match_delimiters(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut match_of = vec![None; tokens.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => {
                let c = t.text.chars().next().unwrap_or('(');
                stack.push((c, i));
            }
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                // Pop past any mismatched leftovers so one stray delimiter
                // cannot desynchronize the rest of the file.
                while let Some((c, open)) = stack.pop() {
                    if c == want {
                        match_of[open] = Some(i);
                        match_of[i] = Some(open);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    match_of
}

/// True when the attribute body tokens (between `[` and `]`) mark test-only
/// code: `test`, `cfg(test)`, `cfg(any(test, …))`, `tokio::test`, `bench`.
fn attr_is_test(body: &[Token]) -> bool {
    let mut idents = body.iter().filter(|t| t.kind == TokenKind::Ident);
    match idents.next() {
        Some(first) if first.text == "cfg" => {
            // `cfg(test)` / `cfg(any(test, …))` — but not `cfg(not(test))`,
            // which marks code that is compiled *out* of test builds.
            body.iter().enumerate().any(|(p, t)| {
                t.is_ident("test")
                    && body[..p]
                        .iter()
                        .rfind(|u| u.kind == TokenKind::Ident)
                        .is_none_or(|u| u.text != "not")
            })
        }
        Some(first) => {
            first.text == "test"
                || first.text == "bench"
                || body
                    .iter()
                    .rfind(|t| t.kind == TokenKind::Ident)
                    .is_some_and(|t| t.text == "test")
        }
        None => false,
    }
}

fn find_test_spans(tokens: &[Token], match_of: &[Option<usize>]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let open = i + 1;
        let Some(close) = match_of[open] else {
            i += 1;
            continue;
        };
        if !attr_is_test(&tokens[open + 1..close]) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then the annotated item's body is
        // the first `{ … }` group before a bare `;` (skipping over
        // parenthesized/bracketed groups such as argument lists).
        let mut j = close + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            match match_of[j + 1] {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                body = match_of[j].map(|end| Span {
                    start: i,
                    end: end + 1,
                });
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                match match_of[j] {
                    Some(c) => j = c + 1,
                    None => break,
                }
                continue;
            }
            j += 1;
        }
        if let Some(span) = body {
            i = span.end;
            spans.push(span);
        } else {
            i = j + 1;
        }
    }
    spans
}

fn find_fn_bodies(tokens: &[Token], match_of: &[Option<usize>]) -> Vec<Span> {
    let mut bodies = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            // Walk to the body `{` or a `;` (trait method signatures),
            // skipping over the parameter list, generics' brackets, and any
            // parenthesized groups in the return type / where clause.
            let mut j = i + 1;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct(';') {
                    break;
                }
                if t.is_punct('{') {
                    if let Some(end) = match_of[j] {
                        bodies.push(Span {
                            start: j,
                            end: end + 1,
                        });
                    }
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') {
                    match match_of[j] {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                    continue;
                }
                j += 1;
            }
        }
        i += 1;
    }
    bodies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> File {
        File::parse(lex(src))
    }

    fn ident_idx(f: &File, name: &str, nth: usize) -> usize {
        f.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident(name))
            .map(|(i, _)| i)
            .nth(nth)
            .unwrap_or(usize::MAX)
    }

    #[test]
    fn cfg_test_module_is_a_test_span() {
        let f = parse(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n fn helper() { y.unwrap(); }\n}",
        );
        let live = ident_idx(&f, "x", 0);
        let test = ident_idx(&f, "y", 0);
        assert!(!f.in_test_code(live));
        assert!(f.in_test_code(test));
    }

    #[test]
    fn test_attribute_fn_is_a_test_span() {
        let f = parse("#[test]\nfn check() { q.unwrap(); }\nfn live() { r.unwrap(); }");
        assert!(f.in_test_code(ident_idx(&f, "q", 0)));
        assert!(!f.in_test_code(ident_idx(&f, "r", 0)));
    }

    #[test]
    fn fn_bodies_nest() {
        let f = parse("fn outer() { fn inner() { z } }");
        let z = ident_idx(&f, "z", 0);
        let body = f.enclosing_fn_body(z).expect("z is inside inner");
        // The innermost body is inner's: it starts after outer's `{`.
        let outer_open = f
            .tokens
            .iter()
            .position(|t| t.is_punct('{'))
            .unwrap_or(usize::MAX);
        assert!(body.start > outer_open);
    }

    #[test]
    fn statement_bounds_skip_nested_groups() {
        let f = parse("fn a() { let v = m.iter().map(|(k, x)| { k }).collect::<Vec<_>>(); v }");
        let iter = ident_idx(&f, "iter", 0);
        let start = f.statement_start(iter);
        let end = f.statement_end(iter);
        assert!(f.tokens[start].is_ident("let"));
        assert!(f.tokens[end].is_punct(';'));
    }

    #[test]
    fn unbalanced_files_do_not_panic() {
        let f = parse("fn broken( { ) } ] let x = ;");
        assert!(f.tokens.len() > 3);
        let _ = f.statement_start(2);
        let _ = f.statement_end(2);
    }
}
