//! Probability distributions: Normal and Student-t.
//!
//! The BAYWATCH pruning step models observed beacon intervals as draws from
//! `N(P, σ²)` around the true period `P`, and tests candidate periods with a
//! one-sample t-test whose p-values come from the Student-t CDF.

use crate::special::{betainc_reg, erfc, inv_norm_cdf};
use crate::StatsError;

/// A normal (Gaussian) distribution parameterized by mean and standard
/// deviation.
///
/// # Example
///
/// ```
/// use baywatch_stats::dist::Normal;
///
/// let n = Normal::new(0.0, 1.0).unwrap();
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((n.quantile(0.975) - 1.96).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `std_dev` is not a
    /// positive finite number or `mean` is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                constraint: "must be finite",
            });
        }
        if !(std_dev.is_finite() && std_dev > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "std_dev",
                constraint: "must be positive and finite",
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Natural log of the density at `x`; numerically stable in the tails.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        -0.5 * z * z - self.std_dev.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly within `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std_dev * inv_norm_cdf(p)
    }
}

impl Default for Normal {
    fn default() -> Self {
        Self::standard()
    }
}

/// Student's t distribution with `ν` degrees of freedom.
///
/// Used for p-values in the one-sample t-test of the pruning step (§IV,
/// Step 2 of the paper).
///
/// # Example
///
/// ```
/// use baywatch_stats::dist::StudentsT;
///
/// let t = StudentsT::new(10.0).unwrap();
/// // The t distribution is symmetric around zero.
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((t.cdf(-1.5) + t.cdf(1.5) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentsT {
    dof: f64,
}

impl StudentsT {
    /// Creates a Student-t distribution with `dof` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `dof` is not a positive
    /// finite number.
    pub fn new(dof: f64) -> Result<Self, StatsError> {
        if !(dof.is_finite() && dof > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "dof",
                constraint: "must be positive and finite",
            });
        }
        Ok(Self { dof })
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.dof
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        use crate::special::ln_gamma;
        let v = self.dof;
        let ln_coef =
            ln_gamma((v + 1.0) / 2.0) - ln_gamma(v / 2.0) - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_coef - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    /// Cumulative distribution function at `x`, via the regularized
    /// incomplete beta function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x == 0.0 {
            return 0.5;
        }
        let v = self.dof;
        let ib = betainc_reg(v / 2.0, 0.5, v / (v + x * x));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    /// Survival function `P(T > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Two-sided tail probability `P(|T| > |x|)`.
    pub fn two_sided_p(&self, x: f64) -> f64 {
        let v = self.dof;
        betainc_reg(v / 2.0, 0.5, v / (v + x * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_pdf_peak() {
        let n = Normal::standard();
        assert_close(n.pdf(0.0), 1.0 / (2.0 * std::f64::consts::PI).sqrt(), 1e-15);
        assert!(n.pdf(0.0) > n.pdf(0.5));
        assert_close(n.pdf(1.0), n.pdf(-1.0), 1e-15);
    }

    #[test]
    fn normal_ln_pdf_consistent() {
        let n = Normal::new(3.0, 2.5).unwrap();
        for x in [-10.0, 0.0, 3.0, 7.7] {
            assert_close(n.ln_pdf(x), n.pdf(x).ln(), 1e-12);
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        let n = Normal::standard();
        assert_close(n.cdf(0.0), 0.5, 1e-15);
        assert_close(n.cdf(1.96), 0.9750021048517795, 1e-12);
        assert_close(n.cdf(-1.0), 0.15865525393145707, 1e-12);
    }

    #[test]
    fn normal_quantile_roundtrip() {
        let n = Normal::new(100.0, 15.0).unwrap();
        for p in [0.01, 0.2, 0.5, 0.8, 0.99] {
            assert_close(n.cdf(n.quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn normal_default_is_standard() {
        assert_eq!(Normal::default(), Normal::standard());
    }

    #[test]
    fn students_t_rejects_bad_dof() {
        assert!(StudentsT::new(0.0).is_err());
        assert!(StudentsT::new(-2.0).is_err());
        assert!(StudentsT::new(f64::NAN).is_err());
    }

    #[test]
    fn students_t_symmetry() {
        let t = StudentsT::new(7.0).unwrap();
        for x in [0.3, 1.0, 2.4, 5.0] {
            assert_close(t.cdf(-x), 1.0 - t.cdf(x), 1e-13);
            assert_close(t.pdf(-x), t.pdf(x), 1e-15);
        }
    }

    #[test]
    fn students_t_cdf_known_values() {
        // Reference values from R: pt(2.0, df=10) = 0.963306
        let t = StudentsT::new(10.0).unwrap();
        assert_close(t.cdf(2.0), 0.9633059826769653, 1e-10);
        // pt(1.0, df=1) = 0.75 (Cauchy)
        let cauchy = StudentsT::new(1.0).unwrap();
        assert_close(cauchy.cdf(1.0), 0.75, 1e-12);
    }

    #[test]
    fn students_t_approaches_normal_for_large_dof() {
        let t = StudentsT::new(1e6).unwrap();
        let n = Normal::standard();
        for x in [-2.0, -0.5, 0.5, 2.0] {
            assert_close(t.cdf(x), n.cdf(x), 1e-5);
        }
    }

    #[test]
    fn two_sided_p_matches_cdf() {
        let t = StudentsT::new(12.0).unwrap();
        for x in [0.5, 1.7, 3.0] {
            assert_close(t.two_sided_p(x), 2.0 * (1.0 - t.cdf(x)), 1e-12);
        }
    }

    #[test]
    fn t_pdf_integrates_to_one() {
        // Crude trapezoidal integration over [-50, 50].
        let t = StudentsT::new(4.0).unwrap();
        let n = 200_000;
        let (a, b) = (-50.0, 50.0);
        let h = (b - a) / n as f64;
        let mut sum = 0.5 * (t.pdf(a) + t.pdf(b));
        for i in 1..n {
            sum += t.pdf(a + i as f64 * h);
        }
        assert_close(sum * h, 1.0, 1e-4);
    }
}
