//! Special functions: log-gamma, regularized incomplete beta and gamma,
//! and the error function.
//!
//! These back the CDFs of the [`crate::dist`] module. Implementations follow
//! the classic formulations (Lanczos approximation for `ln_gamma`, continued
//! fractions for the incomplete beta/gamma, Abramowitz–Stegun style rational
//! approximation refined with one Newton step for the inverse normal CDF).

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), giving roughly
/// 15 significant digits over the positive real axis.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is intentionally not provided;
/// all callers in this workspace use positive arguments).
///
/// # Example
///
/// ```
/// use baywatch_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7 (canonical published values; the
    // excess digits are intentional and rounded by the compiler).
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `0 <= x <= 1`.
///
/// Evaluated with the Lentz continued-fraction algorithm; used for the
/// Student-t CDF.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
pub fn betainc_reg(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc_reg requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "betainc_reg requires 0 <= x <= 1");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Use the symmetry relation for faster convergence. Both arms evaluate
    // the continued fraction directly (no recursion) so boundary values of x
    // cannot cause mutual recursion.
    if x < (a + 1.0) / (a + b + 2.0) {
        betainc_front(a, b, x) * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - betainc_front(b, a, 1.0 - x) * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// The prefactor `x^a (1-x)^b / (a B(a, b))` of the continued-fraction form,
/// evaluated in log space.
fn betainc_front(a: f64, b: f64, x: f64) -> f64 {
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    (x.ln() * a + (1.0 - x).ln() * b - ln_beta).exp()
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0, x >= 0`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise. Used for
/// chi-squared style tail probabilities.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gammainc_reg(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gammainc_reg requires a > 0");
    assert!(x >= 0.0, "gammainc_reg requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        const TINY: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / TINY;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < TINY {
                d = TINY;
            }
            c = b + an / c;
            if c.abs() < TINY {
                c = TINY;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Error function `erf(x)`, computed via the regularized incomplete gamma
/// function: `erf(x) = sign(x) · P(1/2, x²)`.
///
/// # Example
///
/// ```
/// use baywatch_stats::special::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gammainc_reg(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation refined with a single Halley step,
/// giving full double precision over `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inv_norm_cdf requires 0 < p < 1, got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact CDF.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(π)/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn betainc_endpoints() {
        assert_eq!(betainc_reg(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc_reg(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betainc_symmetric_midpoint() {
        // I_{1/2}(a, a) = 1/2 for all a.
        for a in [0.5, 1.0, 2.0, 5.0, 10.0] {
            assert_close(betainc_reg(a, a, 0.5), 0.5, 1e-12);
        }
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert_close(betainc_reg(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn betainc_known_values() {
        // I_0.5(2, 3) computed analytically: integral of 12 t (1-t)^2 from 0 to .5
        // = 12*(x^2/2 - 2x^3/3 + x^4/4) at 0.5 = 0.6875
        assert_close(betainc_reg(2.0, 3.0, 0.5), 0.6875, 1e-12);
    }

    #[test]
    fn gammainc_known_values() {
        // P(1, x) = 1 - exp(-x)
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            assert_close(gammainc_reg(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        assert_eq!(gammainc_reg(2.5, 0.0), 0.0);
    }

    #[test]
    fn gammainc_large_x_saturates() {
        assert_close(gammainc_reg(2.0, 100.0), 1.0, 1e-12);
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.5), 0.5204998778130465, 1e-12);
        assert_close(erf(1.0), 0.8427007929497149, 1e-12);
        assert_close(erf(2.0), 0.9953222650189527, 1e-12);
        assert_close(erf(-1.0), -0.8427007929497149, 1e-12);
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.3, 0.0, 0.7, 1.9] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-14);
        }
    }

    #[test]
    fn inv_norm_cdf_roundtrip() {
        for p in [1e-10, 1e-4, 0.025, 0.5, 0.84, 0.975, 1.0 - 1e-6] {
            let x = inv_norm_cdf(p);
            let back = 0.5 * erfc(-x / std::f64::consts::SQRT_2);
            assert_close(back, p, 1e-12);
        }
    }

    #[test]
    fn inv_norm_cdf_known_quantiles() {
        assert_close(inv_norm_cdf(0.5), 0.0, 1e-14);
        assert_close(inv_norm_cdf(0.975), 1.959963984540054, 1e-10);
        assert_close(inv_norm_cdf(0.025), -1.959963984540054, 1e-10);
    }

    #[test]
    #[should_panic]
    fn inv_norm_cdf_rejects_zero() {
        inv_norm_cdf(0.0);
    }
}
