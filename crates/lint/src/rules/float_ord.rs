//! L1 — float comparators must impose a *total* order.
//!
//! `a.partial_cmp(b).unwrap()` (and the `expect`/`unwrap_or*` variants)
//! either panics on NaN or, worse, silently collapses NaN to `Equal`,
//! making sorts incomparable-input-order-dependent. Both break the
//! permutation test's reproducibility contract: the ranked report must be
//! a pure function of the window. `f64::total_cmp` is the fix everywhere.

use super::{snippet_at, Finding};
use crate::fix::{Edit, Fix};
use crate::syntax::File;
use crate::walk::SourceFile;

/// The escape hatches that turn a partial order into a panic or a lie.
const SINKS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
];

pub fn check(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") {
            continue;
        }
        // `partial_cmp ( … ) . sink (`
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(close) = file.matching(i + 1) else {
            continue;
        };
        let dot = close + 1;
        let sink = close + 2;
        let is_sink = tokens.get(dot).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(sink)
                .is_some_and(|t| SINKS.iter().any(|s| t.is_ident(s)));
        if is_sink {
            // Mechanical rewrite only for the sinks whose removal cannot
            // change semantics on non-NaN inputs: `total_cmp` returns
            // `Ordering` directly, so `.unwrap()`/`.expect(..)` simply
            // disappear. The `unwrap_or*` variants encode a fallback the
            // author chose; those stay manual.
            let fix = tokens
                .get(sink)
                .filter(|s| s.is_ident("unwrap") || s.is_ident("expect"))
                .and_then(|_| {
                    let sink_close = file.matching(sink + 1)?;
                    Some(Fix {
                        edits: vec![
                            Edit {
                                start: t.start,
                                end: t.end,
                                replacement: "total_cmp".to_string(),
                            },
                            Edit {
                                start: tokens[dot].start,
                                end: tokens[sink_close].end,
                                replacement: String::new(),
                            },
                        ],
                    })
                });
            findings.push(Finding {
                rule: "L1-float-ord",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!(
                    "partial_cmp(..).{}() panics or lies on NaN; use f64::total_cmp for a \
                     total, reproducible order",
                    tokens
                        .get(sink)
                        .map(|t| t.text.as_str())
                        .unwrap_or("unwrap"),
                ),
                fix,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::check_file;
    use crate::walk::{Section, SourceFile};
    use std::path::PathBuf;

    fn lib_file(rel: &str) -> SourceFile {
        SourceFile {
            abs_path: PathBuf::from(rel),
            rel_path: rel.to_string(),
            crate_name: rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .map(str::to_string),
            section: Section::Lib,
        }
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}";
        let f = check_file(&lib_file("crates/langmodel/src/x.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "L1-float-ord");
        assert_eq!(f[0].line, 3);
        assert!(f[0].snippet.contains("sort_by"));
    }

    #[test]
    fn expect_and_unwrap_or_variants_are_flagged() {
        let src = "fn a() { x.partial_cmp(&y).expect(\"no NaN\"); }\n\
                   fn b() { x.partial_cmp(&y).unwrap_or(core::cmp::Ordering::Equal); }";
        let f = check_file(&lib_file("crates/langmodel/src/x.rs"), src);
        assert_eq!(f.iter().filter(|f| f.rule == "L1-float-ord").count(), 2);
    }

    #[test]
    fn total_cmp_and_handled_partial_cmp_pass() {
        let src = "fn a() { v.sort_by(|a, b| a.total_cmp(b)); }\n\
                   fn b() { match x.partial_cmp(&y) { Some(o) => o, None => Ordering::Equal } }\n\
                   fn c() { let s = \"a.partial_cmp(b).unwrap()\"; }";
        let f = check_file(&lib_file("crates/langmodel/src/x.rs"), src);
        assert!(f.iter().all(|f| f.rule != "L1-float-ord"), "{f:?}");
    }
}
