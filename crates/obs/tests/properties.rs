//! Property tests pinning the histogram merge algebra.
//!
//! The MapReduce layers combine per-shard snapshots in whatever order the
//! scheduler produces them, so the merge must be a commutative monoid and
//! must preserve every observation no matter how the stream is split.

use baywatch_obs::{Buckets, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Strictly increasing bucket bounds, 1..=6 of them.
fn arb_buckets() -> impl Strategy<Value = Buckets> {
    proptest::collection::btree_set(1u64..10_000, 1..=6).prop_map(|set| {
        let bounds: Vec<u64> = set.into_iter().collect();
        Buckets::new(&bounds).expect("btree_set of u64 is strictly increasing")
    })
}

fn snapshot_of(buckets: &Buckets, values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new(buckets.clone());
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b).expect("same layout");
    out
}

proptest! {
    /// Splitting one observation stream at any point and merging the two
    /// halves yields exactly the snapshot of the unsplit stream.
    #[test]
    fn merge_preserves_totals_under_arbitrary_splits(
        buckets in arb_buckets(),
        values in proptest::collection::vec(0u64..20_000, 0..200),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = ((values.len() as f64) * split_frac) as usize;
        let split = split.min(values.len());
        let whole = snapshot_of(&buckets, &values);
        let left = snapshot_of(&buckets, &values[..split]);
        let right = snapshot_of(&buckets, &values[split..]);
        let combined = merged(&left, &right);
        prop_assert_eq!(&combined, &whole);
        prop_assert_eq!(combined.total, values.len() as u64);
        prop_assert_eq!(
            combined.counts.iter().sum::<u64>(),
            values.len() as u64,
            "every observation must land in exactly one bucket"
        );
    }

    /// a ⊕ b == b ⊕ a
    #[test]
    fn merge_is_commutative(
        buckets in arb_buckets(),
        xs in proptest::collection::vec(0u64..20_000, 0..100),
        ys in proptest::collection::vec(0u64..20_000, 0..100),
    ) {
        let a = snapshot_of(&buckets, &xs);
        let b = snapshot_of(&buckets, &ys);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    #[test]
    fn merge_is_associative(
        buckets in arb_buckets(),
        xs in proptest::collection::vec(0u64..20_000, 0..80),
        ys in proptest::collection::vec(0u64..20_000, 0..80),
        zs in proptest::collection::vec(0u64..20_000, 0..80),
    ) {
        let a = snapshot_of(&buckets, &xs);
        let b = snapshot_of(&buckets, &ys);
        let c = snapshot_of(&buckets, &zs);
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// The empty snapshot is the identity element.
    #[test]
    fn empty_snapshot_is_identity(
        buckets in arb_buckets(),
        xs in proptest::collection::vec(0u64..20_000, 0..100),
    ) {
        let a = snapshot_of(&buckets, &xs);
        let zero = HistogramSnapshot::empty(&buckets);
        prop_assert_eq!(&merged(&a, &zero), &a);
        prop_assert_eq!(&merged(&zero, &a), &a);
    }
}
