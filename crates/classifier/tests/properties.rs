//! Property-based tests of the classifier crate.

use baywatch_classifier::compress::{compress, compression_ratio, decompress};
use baywatch_classifier::features::{CaseFeatures, CaseInput};
use baywatch_classifier::forest::{ForestConfig, RandomForest};
use baywatch_classifier::tree::{DecisionTree, TreeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compressor is lossless on arbitrary bytes.
    #[test]
    fn compress_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let packed = compress(&data);
        let unpacked = decompress(&packed);
        prop_assert_eq!(unpacked.as_deref(), Some(data.as_slice()));
    }

    /// The compressor is lossless on three-symbol alphabets (the actual
    /// feature input) and highly repetitive strings compress well.
    #[test]
    fn compress_symbol_series(data in prop::collection::vec(prop::sample::select(vec![b'x', b'y', b'z']), 1..3000)) {
        let packed = compress(&data);
        let unpacked = decompress(&packed);
        prop_assert_eq!(unpacked.as_deref(), Some(data.as_slice()));
        let ratio = compression_ratio(&data);
        prop_assert!(ratio > 0.0);
    }

    /// Trees always emit probabilities in [0, 1] and agree with their hard
    /// prediction at the 0.5 threshold.
    #[test]
    fn tree_proba_valid(
        data in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64, any::<bool>()), 4..80),
        qx in 0.0..100.0f64,
        qy in 0.0..100.0f64,
    ) {
        let xs: Vec<Vec<f64>> = data.iter().map(|(a, b, _)| vec![*a, *b]).collect();
        let ys: Vec<bool> = data.iter().map(|(_, _, y)| *y).collect();
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        let p = tree.predict_proba(&[qx, qy]);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert_eq!(tree.predict(&[qx, qy]), p >= 0.5);
    }

    /// Trees perfectly memorize separable training data (distinct feature
    /// values per sample, unlimited depth).
    #[test]
    fn tree_memorizes_separable(labels in prop::collection::vec(any::<bool>(), 2..60)) {
        let xs: Vec<Vec<f64>> = (0..labels.len()).map(|i| vec![i as f64]).collect();
        let cfg = TreeConfig { max_depth: 64, ..Default::default() };
        let tree = DecisionTree::fit(&xs, &labels, &cfg).unwrap();
        for (x, y) in xs.iter().zip(&labels) {
            prop_assert_eq!(tree.predict(x), *y);
        }
    }

    /// Forest probability = fraction of trees voting positive; uncertainty
    /// is maximal when the vote splits.
    #[test]
    fn forest_uncertainty_bounds(seed in any::<u64>()) {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let ys: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let rf = RandomForest::fit(&xs, &ys, &ForestConfig {
            n_trees: 15,
            seed,
            ..Default::default()
        }).unwrap();
        for x in xs.iter().step_by(7) {
            let u = rf.uncertainty(x);
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    /// Feature extraction never produces NaN/infinite features.
    #[test]
    fn features_always_finite(
        intervals in prop::collection::vec(0.0..100_000.0f64, 0..300),
        period in 0.0..100_000.0f64,
        power in 0.0..1000.0f64,
        acf in -1.0..1.0f64,
        lm in -100.0..0.0f64,
        pop in 0.0..1.0f64,
    ) {
        let input = CaseInput {
            intervals,
            dominant_periods: if period > 0.0 { vec![period] } else { vec![] },
            power,
            acf_score: acf,
            similar_sources: 3,
            lm_score: lm,
            popularity: pop,
        };
        let v = CaseFeatures::extract(&input).to_vector();
        prop_assert_eq!(v.len(), baywatch_classifier::N_FEATURES);
        prop_assert!(v.iter().all(|x| x.is_finite()), "{:?}", v);
    }
}
