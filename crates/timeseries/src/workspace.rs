//! Spectral workspace — cached FFT plans and reusable scratch buffers.
//!
//! Every step of the detection pipeline is FFT-bound: the periodogram
//! (Step 1) transforms the count series once, the permutation filter
//! transforms `m` shuffled copies of the *same length*, and the ACF
//! verifier (Step 3) runs a forward/inverse pair at the padded length.
//! Planning an FFT is far from free — rustfft decomposes the length into
//! a recipe of butterflies and allocates twiddle tables — and the seed
//! implementation rebuilt a fresh [`FftPlanner`] for every single
//! transform, i.e. 20+ times per communication pair.
//!
//! [`SpectralWorkspace`] amortizes that cost: it owns one planner, a map
//! of already-built forward/inverse plans keyed by transform length, and
//! a complex scratch/working buffer that is recycled between transforms.
//! A workspace is deliberately single-threaded (`!Sync`, interior
//! mutability via [`RefCell`]); each MapReduce worker thread gets its own
//! instance through [`with_thread_workspace`], so plans are reused across
//! every pair and permutation round the thread processes during a window
//! without any locking.
//!
//! The numerical output is bit-for-bit identical to planning from
//! scratch: rustfft plans are deterministic functions of the length.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use rustfft::{num_complex::Complex, Fft, FftPlanner};

/// A per-thread cache of FFT plans plus reusable transform buffers.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::workspace::SpectralWorkspace;
///
/// let ws = SpectralWorkspace::new();
/// let samples = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
/// // The Nyquist bin carries all the energy of an alternating series.
/// let max = ws.with_spectrum(&samples, |spectrum| {
///     spectrum[1..=4].iter().map(|v| v.norm_sqr()).fold(0.0, f64::max)
/// });
/// assert!(max > 0.0);
/// // A second transform of the same length reuses the cached plan.
/// ws.with_spectrum(&samples, |_| ());
/// assert_eq!(ws.plans_built(), 1);
/// assert_eq!(ws.transforms_run(), 2);
/// ```
pub struct SpectralWorkspace {
    inner: RefCell<Inner>,
}

struct Inner {
    planner: FftPlanner<f64>,
    forward: HashMap<usize, Arc<dyn Fft<f64>>>,
    inverse: HashMap<usize, Arc<dyn Fft<f64>>>,
    /// Recycled complex working buffer (the transform target).
    buffer: Vec<Complex<f64>>,
    /// Recycled rustfft scratch space.
    scratch: Vec<Complex<f64>>,
    plans_built: usize,
    transforms_run: usize,
}

const ZERO: Complex<f64> = Complex { re: 0.0, im: 0.0 };

impl SpectralWorkspace {
    /// Creates an empty workspace; plans are built lazily on first use.
    pub fn new() -> Self {
        Self {
            inner: RefCell::new(Inner {
                planner: FftPlanner::new(),
                forward: HashMap::new(),
                inverse: HashMap::new(),
                buffer: Vec::new(),
                scratch: Vec::new(),
                plans_built: 0,
                transforms_run: 0,
            }),
        }
    }

    /// The cached forward plan for length `n`, building it on first use.
    pub fn forward(&self, n: usize) -> Arc<dyn Fft<f64>> {
        self.plan(n, true)
    }

    /// The cached inverse plan for length `n`, building it on first use.
    pub fn inverse(&self, n: usize) -> Arc<dyn Fft<f64>> {
        self.plan(n, false)
    }

    fn plan(&self, n: usize, forward: bool) -> Arc<dyn Fft<f64>> {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let map = if forward {
            &mut inner.forward
        } else {
            &mut inner.inverse
        };
        if let Some(plan) = map.get(&n) {
            return Arc::clone(plan);
        }
        let plan = if forward {
            inner.planner.plan_fft_forward(n)
        } else {
            inner.planner.plan_fft_inverse(n)
        };
        inner.plans_built += 1;
        map.insert(n, Arc::clone(&plan));
        plan
    }

    /// Number of distinct plans built so far (cache misses).
    pub fn plans_built(&self) -> usize {
        self.inner.borrow().plans_built
    }

    /// Number of transforms executed through the workspace.
    pub fn transforms_run(&self) -> usize {
        self.inner.borrow().transforms_run
    }

    /// Runs the forward DFT of `samples` into the recycled buffer and hands
    /// the spectrum to `f`. No allocation occurs once the buffers have
    /// grown to the working length.
    pub fn with_spectrum<R>(&self, samples: &[f64], f: impl FnOnce(&[Complex<f64>]) -> R) -> R {
        let fft = self.forward(samples.len());
        let (mut buffer, mut scratch) = self.take_buffers();
        buffer.clear();
        buffer.extend(samples.iter().map(|&v| Complex::new(v, 0.0)));
        run_in_place(&*fft, &mut buffer, &mut scratch);
        let out = f(&buffer);
        self.put_buffers(buffer, scratch, 1);
        out
    }

    /// Computes the *raw* (unnormalized) circular autocorrelation of
    /// `samples` via Wiener–Khinchin — zero-pad to the next power of two at
    /// or above `2·len` (making the circular convolution linear), forward
    /// FFT, multiply by the conjugate, inverse FFT — and hands the padded
    /// result buffer to `f`. Entries `0..len` are the meaningful lags;
    /// callers normalize by the lag-0 value. Both transforms run through
    /// the plan cache and the recycled buffers.
    pub fn with_autocorrelation<R>(
        &self,
        samples: &[f64],
        f: impl FnOnce(&[Complex<f64>]) -> R,
    ) -> R {
        let padded = (2 * samples.len()).next_power_of_two();
        let fwd = self.forward(padded);
        let inv = self.inverse(padded);
        let (mut buffer, mut scratch) = self.take_buffers();
        buffer.clear();
        buffer.extend(samples.iter().map(|&v| Complex::new(v, 0.0)));
        buffer.resize(padded, ZERO);
        run_in_place(&*fwd, &mut buffer, &mut scratch);
        for v in buffer.iter_mut() {
            *v = Complex::new(v.norm_sqr(), 0.0);
        }
        run_in_place(&*inv, &mut buffer, &mut scratch);
        let out = f(&buffer);
        self.put_buffers(buffer, scratch, 2);
        out
    }

    /// Detaches the recycled buffers so a transform can run without holding
    /// the `RefCell` borrow — re-entrant calls (a closure that itself uses
    /// the workspace) then simply start from empty buffers instead of
    /// panicking.
    fn take_buffers(&self) -> (Vec<Complex<f64>>, Vec<Complex<f64>>) {
        let mut inner = self.inner.borrow_mut();
        (
            std::mem::take(&mut inner.buffer),
            std::mem::take(&mut inner.scratch),
        )
    }

    fn put_buffers(&self, buffer: Vec<Complex<f64>>, scratch: Vec<Complex<f64>>, ran: usize) {
        let mut inner = self.inner.borrow_mut();
        // Keep the larger allocation: nested use may have grown a fresh pair.
        if buffer.capacity() >= inner.buffer.capacity() {
            inner.buffer = buffer;
        }
        if scratch.capacity() >= inner.scratch.capacity() {
            inner.scratch = scratch;
        }
        inner.transforms_run += ran;
    }
}

/// Runs `fft` in place over `buffer`, growing `scratch` as required.
fn run_in_place(fft: &dyn Fft<f64>, buffer: &mut [Complex<f64>], scratch: &mut Vec<Complex<f64>>) {
    let need = fft.get_inplace_scratch_len();
    if scratch.len() < need {
        scratch.resize(need, ZERO);
    }
    fft.process_with_scratch(buffer, scratch);
}

impl Default for SpectralWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SpectralWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("SpectralWorkspace")
            .field("forward_plans", &inner.forward.len())
            .field("inverse_plans", &inner.inverse.len())
            .field("plans_built", &inner.plans_built)
            .field("transforms_run", &inner.transforms_run)
            .finish()
    }
}

thread_local! {
    static THREAD_WORKSPACE: SpectralWorkspace = SpectralWorkspace::new();
}

/// Runs `f` with the calling thread's shared [`SpectralWorkspace`].
///
/// This is how the detection pipeline gets plan reuse without threading a
/// workspace through every signature: `Periodogram::compute`,
/// `permutation_threshold`, `Autocorrelation::compute` and
/// `PeriodicityDetector::detect` all route here, so a MapReduce worker
/// thread builds each plan once per window and reuses it for every pair
/// and every permutation round it processes.
pub fn with_thread_workspace<R>(f: impl FnOnce(&SpectralWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference spectrum computed the way the seed code did: fresh
    /// planner, fresh buffers, every call.
    fn naive_spectrum(samples: &[f64]) -> Vec<Complex<f64>> {
        let mut buf: Vec<Complex<f64>> = samples.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut planner = FftPlanner::new();
        planner.plan_fft_forward(samples.len()).process(&mut buf);
        buf
    }

    fn test_samples(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 7.3).sin() + 0.1 * i as f64)
            .collect()
    }

    #[test]
    fn spectrum_matches_fresh_planner_exactly() {
        let ws = SpectralWorkspace::new();
        for n in [8usize, 60, 256, 1000] {
            let samples = test_samples(n);
            let expected = naive_spectrum(&samples);
            ws.with_spectrum(&samples, |got| {
                assert_eq!(got.len(), expected.len());
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(g, e, "n = {n}");
                }
            });
        }
    }

    #[test]
    fn plans_are_cached_per_length() {
        let ws = SpectralWorkspace::new();
        let samples = test_samples(128);
        for _ in 0..10 {
            ws.with_spectrum(&samples, |_| ());
        }
        assert_eq!(ws.plans_built(), 1);
        assert_eq!(ws.transforms_run(), 10);

        let other = test_samples(96);
        ws.with_spectrum(&other, |_| ());
        assert_eq!(ws.plans_built(), 2);
    }

    #[test]
    fn forward_and_inverse_plans_are_distinct() {
        let ws = SpectralWorkspace::new();
        let f = ws.forward(64);
        let i = ws.inverse(64);
        assert_eq!(ws.plans_built(), 2);
        // Round trip: forward then inverse scales by n.
        let mut buf: Vec<Complex<f64>> = test_samples(64)
            .iter()
            .map(|&v| Complex::new(v, 0.0))
            .collect();
        let original = buf.clone();
        f.process(&mut buf);
        i.process(&mut buf);
        for (got, want) in buf.iter().zip(&original) {
            assert!((got.re / 64.0 - want.re).abs() < 1e-9);
            assert!((got.im / 64.0 - want.im).abs() < 1e-9);
        }
    }

    #[test]
    fn autocorrelation_lag0_dominates() {
        let ws = SpectralWorkspace::new();
        let samples = test_samples(100);
        ws.with_autocorrelation(&samples, |buf| {
            assert_eq!(buf.len(), 256); // (2·100).next_power_of_two()
            let r0 = buf[0].re;
            assert!(r0 > 0.0);
            for (lag, v) in buf.iter().enumerate().take(100).skip(1) {
                assert!(v.re.abs() <= r0 * (1.0 + 1e-9), "lag {lag}");
            }
        });
        // One forward + one inverse plan at the padded length.
        assert_eq!(ws.plans_built(), 2);
        assert_eq!(ws.transforms_run(), 2);
    }

    #[test]
    fn reentrant_use_does_not_panic() {
        let ws = SpectralWorkspace::new();
        let outer = test_samples(64);
        let inner = test_samples(32);
        let expected = naive_spectrum(&inner);
        ws.with_spectrum(&outer, |_| {
            // Nested use of the same workspace from inside a closure.
            ws.with_spectrum(&inner, |got| {
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(g, e);
                }
            });
        });
    }

    #[test]
    fn thread_workspace_persists_across_calls() {
        let before = with_thread_workspace(|ws| ws.plans_built());
        let samples = test_samples(333);
        with_thread_workspace(|ws| ws.with_spectrum(&samples, |_| ()));
        with_thread_workspace(|ws| ws.with_spectrum(&samples, |_| ()));
        let after = with_thread_workspace(|ws| ws.plans_built());
        // Both calls hit the same per-thread cache: one new plan at most
        // (another test on this thread may have planned length 333 first).
        assert!(after <= before + 1);
    }

    #[test]
    fn debug_format_mentions_plan_counts() {
        let ws = SpectralWorkspace::new();
        ws.forward(16);
        let s = format!("{ws:?}");
        assert!(s.contains("plans_built"), "{s}");
    }
}
