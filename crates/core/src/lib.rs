//! The BAYWATCH 8-step beaconing-detection pipeline (Hu et al., DSN 2016).
//!
//! BAYWATCH analyzes web-proxy (or DNS/Netflow) logs to expose *beaconing*:
//! periodic callbacks from infected hosts to command-and-control servers.
//! Starting from the assumption that *every* event in the window may be
//! relevant, it applies eight filters grouped into four phases (Fig. 3 of
//! the paper):
//!
//! | # | Filter | Phase | Module |
//! |---|--------|-------|--------|
//! | 1 | Global whitelist | Whitelist analysis | [`whitelist`] |
//! | 2 | Local whitelist (popularity τ_P) | Whitelist analysis | [`whitelist`], [`popularity`] |
//! | 3 | Periodicity detection (periodogram → pruning → ACF) | Time-series analysis | [`baywatch_timeseries`] |
//! | 4 | URL-token filter | Suspicious-indication analysis | [`tokens`] |
//! | 5 | Novelty analysis | Suspicious-indication analysis | [`novelty`] |
//! | 6 | Language-model scoring | Suspicious-indication analysis | [`baywatch_langmodel`] |
//! | 7 | Weighted ranking + percentile threshold | Suspicious-indication analysis | [`rank`] |
//! | 8 | Bootstrap classification & uncertainty triage | Investigation | [`investigate`] |
//!
//! Each phase is also expressible as a MapReduce job ([`jobs`]) mirroring
//! §VII of the paper; [`pipeline::Baywatch`] wires everything together:
//!
//! ```
//! use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
//! use baywatch_core::record::LogRecord;
//!
//! // A tiny window: one beaconing pair and some human noise.
//! let mut records = Vec::new();
//! for i in 0..120u64 {
//!     records.push(LogRecord::new(1_000 + i * 60, "host-a", "qwzkrvbplm.com", "a1b2c3"));
//! }
//! for i in 0..40u64 {
//!     records.push(LogRecord::new(1_000 + i * i * 13 % 7200, "host-b", "news-site.com", "index"));
//! }
//!
//! // The paper's τ_P = 1% assumes a 130 K-host population; this toy window
//! // has two hosts, so relax the local whitelist accordingly.
//! let mut engine = Baywatch::new(BaywatchConfig {
//!     local_tau: 0.9,
//!     ..Default::default()
//! });
//! let report = engine.analyze(records);
//! assert!(report
//!     .ranked
//!     .iter()
//!     .any(|c| c.case.pair.destination == "qwzkrvbplm.com"));
//! ```

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod activity;
pub mod checkpoint;
pub mod elff;
pub mod investigate;
pub mod io;
pub mod jobs;
pub mod novelty;
pub mod pair;
pub mod pipeline;
pub mod popularity;
pub mod rank;
pub mod record;
pub mod report;
pub mod schedule;
pub mod stream;
pub mod tokens;
pub mod whitelist;

pub use checkpoint::{CheckpointOutcome, CheckpointSpec};
pub use pair::CommunicationPair;
pub use pipeline::{AnalysisReport, Baywatch, BaywatchConfig};
pub use record::LogRecord;
pub use schedule::ScheduleSpec;
pub use stream::{StreamConfig, StreamLedger, StreamingHunt, TickDelta, TickReport};

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Offending parameter.
        name: &'static str,
        /// Constraint violated.
        constraint: &'static str,
    },
    /// The time-series layer failed.
    TimeSeries(baywatch_timeseries::TimeSeriesError),
    /// The classifier layer failed.
    Classifier(baywatch_classifier::TrainError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig { name, constraint } => {
                write!(f, "invalid config `{name}`: {constraint}")
            }
            CoreError::TimeSeries(e) => write!(f, "time-series error: {e}"),
            CoreError::Classifier(e) => write!(f, "classifier error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::TimeSeries(e) => Some(e),
            CoreError::Classifier(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<baywatch_timeseries::TimeSeriesError> for CoreError {
    fn from(e: baywatch_timeseries::TimeSeriesError) -> Self {
        CoreError::TimeSeries(e)
    }
}

impl From<baywatch_classifier::TrainError> for CoreError {
    fn from(e: baywatch_classifier::TrainError) -> Self {
        CoreError::Classifier(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: CoreError = baywatch_classifier::TrainError::EmptyTrainingSet.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.to_string().is_empty());
        let e: CoreError = baywatch_timeseries::TimeSeriesError::ZeroSpan.into();
        assert!(e.to_string().contains("time-series"));
    }
}
