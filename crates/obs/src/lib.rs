//! Observability substrate for the BAYWATCH pipeline: a metrics registry
//! (monotonic counters, gauges, fixed-bucket histograms with exact merge
//! semantics), injectable clocks, and a lightweight stage tracer.
//!
//! The paper's operational story (§V: 30 B events over 5 months, the
//! Tables III–VI funnel volumes) depends on knowing exactly how many pairs
//! each of the 8 filtering steps admits, drops, sheds, or quarantines —
//! and where the time goes. Large-scale enterprise detectors live or die
//! by per-stage volume/latency accounting (Oprea et al., MORTON); this
//! crate is that accounting layer, built under two hard constraints:
//!
//! * **zero external dependencies**, so every crate in the workspace —
//!   including the deterministic set policed by `baywatch-lint` — can
//!   embed it;
//! * **determinism-safe by construction**: counter and value-histogram
//!   updates are pure functions of the analyzed data, while anything
//!   wall-clock-derived (span durations, phase timings) is quarantined in
//!   a separate *timings* section that the deterministic JSON export
//!   ([`MetricsSnapshot::to_json`]) never includes. Time itself is
//!   injected through the [`Clock`] trait — [`MonotonicClock`] in
//!   production, [`ManualClock`] in tests — so the one real wall-clock
//!   read in the workspace's deterministic crates lives here, behind a
//!   single audited allowlist entry.
//!
//! ```
//! use std::sync::Arc;
//! use baywatch_obs::{Buckets, ManualClock, MetricsRegistry, StageTracer};
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let admitted = registry.counter("stage.whitelist.admitted");
//! admitted.add(42);
//!
//! let clock = Arc::new(ManualClock::new());
//! let tracer = StageTracer::new(clock.clone());
//! {
//!     let _span = tracer.span("analyze");
//!     clock.advance(1_000);
//! }
//! let spans = tracer.finished();
//! assert_eq!(spans[0].path, "analyze");
//! assert_eq!(spans[0].duration_nanos, 1_000);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["stage.whitelist.admitted"], 42);
//! assert!(snapshot.to_json().contains("stage.whitelist.admitted"));
//! ```

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod clock;
pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use hist::{Buckets, Histogram, HistogramSnapshot};
pub use json::{JsonParseError, JsonValue, JsonWriter};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use trace::{SpanRecord, StageTracer};

/// Errors surfaced by the observability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// Bucket bounds were empty or not strictly increasing.
    InvalidBuckets(String),
    /// Two histograms with different bucket layouts cannot be merged
    /// exactly; the merge is refused rather than approximated.
    BucketMismatch {
        /// Bounds of the left-hand histogram.
        left: Vec<u64>,
        /// Bounds of the right-hand histogram.
        right: Vec<u64>,
    },
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::InvalidBuckets(why) => write!(f, "invalid histogram buckets: {why}"),
            ObsError::BucketMismatch { left, right } => write!(
                f,
                "histogram bucket layouts differ ({left:?} vs {right:?}); exact merge refused"
            ),
        }
    }
}

impl std::error::Error for ObsError {}
