//! Periodogram (DFT power spectrum) analysis — Step 1 of the BAYWATCH
//! detection algorithm.
//!
//! The mean-centered count series is transformed with an FFT; the power at
//! frequency bin `k` is `|X(k)|² / N`. Only bins `1..N/2` carry independent
//! information for a real signal; bin `k` maps to frequency `k / (N·dt)` Hz
//! and period `N·dt / k` seconds, where `dt` is the series' bin width.

use crate::series::TimeSeries;
use crate::workspace::{with_thread_workspace, SpectralWorkspace};

/// A single spectral line of the periodogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralLine {
    /// DFT bin index (1-based within the half spectrum).
    pub bin: usize,
    /// Frequency in hertz.
    pub frequency: f64,
    /// Corresponding period in seconds (`1 / frequency`).
    pub period: f64,
    /// Power `|X(k)|² / N`.
    pub power: f64,
}

/// The one-sided power spectrum of a [`TimeSeries`].
///
/// # Example
///
/// ```
/// use baywatch_timeseries::series::TimeSeries;
/// use baywatch_timeseries::periodogram::Periodogram;
///
/// // 1 event every 8 s, observed for 512 s at 1 s bins.
/// let timestamps: Vec<u64> = (0..64).map(|i| i * 8).collect();
/// let ts = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
/// let pg = Periodogram::compute(&ts);
/// let peak = pg.max_line().unwrap();
/// assert!((peak.period - 8.0).abs() < 0.5, "period = {}", peak.period);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Periodogram {
    lines: Vec<SpectralLine>,
    n: usize,
    dt: f64,
}

impl Periodogram {
    /// Computes the one-sided periodogram of the series (mean-centered
    /// before the FFT so the DC component is excluded), using the calling
    /// thread's shared [`SpectralWorkspace`].
    pub fn compute(series: &TimeSeries) -> Self {
        with_thread_workspace(|ws| Self::compute_in(ws, series))
    }

    /// Like [`Periodogram::compute`] with an explicit workspace, so callers
    /// that already hold one (the detector hot path) skip the thread-local
    /// lookup.
    pub fn compute_in(ws: &SpectralWorkspace, series: &TimeSeries) -> Self {
        Self::from_samples_in(ws, &series.centered(), series.scale() as f64)
    }

    /// Computes the periodogram of arbitrary mean-centered samples with bin
    /// width `dt` seconds. Exposed for the permutation filter, which
    /// transforms shuffled copies of the same samples.
    pub fn from_samples(samples: &[f64], dt: f64) -> Self {
        with_thread_workspace(|ws| Self::from_samples_in(ws, samples, dt))
    }

    /// Like [`Periodogram::from_samples`] with an explicit workspace: the
    /// FFT plan comes from the workspace's cache and the transform runs in
    /// its recycled buffer.
    pub fn from_samples_in(ws: &SpectralWorkspace, samples: &[f64], dt: f64) -> Self {
        let n = samples.len();
        if n < 4 {
            return Self {
                lines: Vec::new(),
                n,
                dt,
            };
        }
        let half = n / 2;
        let lines = ws.with_spectrum(samples, |spectrum| {
            let mut lines = Vec::with_capacity(half);
            for (k, value) in spectrum.iter().enumerate().take(half + 1).skip(1) {
                let power = value.norm_sqr() / n as f64;
                let frequency = k as f64 / (n as f64 * dt);
                lines.push(SpectralLine {
                    bin: k,
                    frequency,
                    period: 1.0 / frequency,
                    power,
                });
            }
            lines
        });
        Self { lines, n, dt }
    }

    /// All spectral lines, ordered by increasing frequency.
    pub fn lines(&self) -> &[SpectralLine] {
        &self.lines
    }

    /// Number of samples the spectrum was computed from.
    pub fn sample_count(&self) -> usize {
        self.n
    }

    /// Sample spacing in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The maximum power across all lines, or `0.0` for a degenerate
    /// spectrum. This is the `p_max` statistic of the permutation filter.
    pub fn max_power(&self) -> f64 {
        self.lines.iter().map(|l| l.power).fold(0.0, f64::max)
    }

    /// The spectral line with maximum power, if the spectrum is non-empty.
    pub fn max_line(&self) -> Option<SpectralLine> {
        self.lines
            .iter()
            .copied()
            .max_by(|a, b| a.power.total_cmp(&b.power))
    }

    /// Lines whose power strictly exceeds `threshold`, sorted by descending
    /// power — the candidate set handed to the pruning step.
    pub fn lines_above(&self, threshold: f64) -> Vec<SpectralLine> {
        let mut out: Vec<SpectralLine> = self
            .lines
            .iter()
            .copied()
            .filter(|l| l.power > threshold)
            .collect();
        out.sort_by(|a, b| b.power.total_cmp(&a.power));
        out
    }

    /// Total spectral energy (sum of line powers); by Parseval's relation
    /// this tracks the variance of the centered series.
    pub fn total_energy(&self) -> f64 {
        self.lines.iter().map(|l| l.power).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    fn sine_series(n: usize, period_bins: f64, dt: u64) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period_bins).sin() + 1.0)
            .collect();
        TimeSeries::from_values(0, dt, values).unwrap()
    }

    #[test]
    fn pure_sine_peak_at_true_period() {
        let ts = sine_series(1024, 16.0, 1);
        let pg = Periodogram::compute(&ts);
        let peak = pg.max_line().unwrap();
        assert!((peak.period - 16.0).abs() < 0.3, "period = {}", peak.period);
    }

    #[test]
    fn period_respects_time_scale() {
        // Same shape, 60 s bins: period should be 16 * 60 = 960 s.
        let ts = sine_series(1024, 16.0, 60);
        let pg = Periodogram::compute(&ts);
        let peak = pg.max_line().unwrap();
        assert!(
            (peak.period - 960.0).abs() < 15.0,
            "period = {}",
            peak.period
        );
    }

    #[test]
    fn impulse_train_peak() {
        // Events every 10 s observed at 1 s bins for ~1000 s.
        let timestamps: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let ts = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
        let pg = Periodogram::compute(&ts);
        let peak = pg.max_line().unwrap();
        // Impulse trains put energy at the fundamental and harmonics; the
        // fundamental (10 s) or a harmonic (5, 3.33, 2.5, 2) may carry the
        // max. All are divisors of 10.
        let ratio = 10.0 / peak.period;
        assert!(
            (ratio - ratio.round()).abs() < 0.05,
            "peak period {} is not a divisor of 10",
            peak.period
        );
    }

    #[test]
    fn short_series_yields_empty_spectrum() {
        let ts = TimeSeries::from_values(0, 1, vec![1.0, 0.0, 1.0]).unwrap();
        let pg = Periodogram::compute(&ts);
        assert!(pg.lines().is_empty());
        assert_eq!(pg.max_power(), 0.0);
        assert!(pg.max_line().is_none());
    }

    #[test]
    fn constant_series_has_no_power() {
        let ts = TimeSeries::from_values(0, 1, vec![3.0; 256]).unwrap();
        let pg = Periodogram::compute(&ts);
        assert!(pg.max_power() < 1e-18);
    }

    #[test]
    fn lines_above_sorted_descending() {
        let ts = sine_series(512, 8.0, 1);
        let pg = Periodogram::compute(&ts);
        let lines = pg.lines_above(0.0);
        for w in lines.windows(2) {
            assert!(w[0].power >= w[1].power);
        }
        assert_eq!(lines.len(), pg.lines().len());
    }

    #[test]
    fn lines_above_high_threshold_empty() {
        let ts = sine_series(512, 8.0, 1);
        let pg = Periodogram::compute(&ts);
        assert!(pg.lines_above(pg.max_power()).is_empty());
    }

    #[test]
    fn parseval_energy_matches_variance() {
        let ts = sine_series(1024, 32.0, 1);
        let pg = Periodogram::compute(&ts);
        let centered = ts.centered();
        let var: f64 = centered.iter().map(|v| v * v).sum::<f64>();
        // One-sided spectrum over bins 1..=N/2 captures (almost exactly, for
        // a real signal with no DC) half the energy... except bins and their
        // mirrors both appear for k < N/2, so lines hold ~half the total.
        // Accept a broad sanity window.
        let e = pg.total_energy();
        assert!(e > 0.3 * var && e <= var + 1e-9, "e={e} var={var}");
    }

    #[test]
    fn frequency_period_inverse() {
        let ts = sine_series(256, 8.0, 1);
        let pg = Periodogram::compute(&ts);
        for l in pg.lines() {
            assert!((l.frequency * l.period - 1.0).abs() < 1e-12);
        }
    }
}
