//! L7 — accounting ledgers must use exact arithmetic.
//!
//! The funnel invariants (`offered == admitted + rejected`, breaker
//! `admitted + rejected == allow() calls`, fault-report conservation) are
//! tested equalities over `u64` counters. Narrowing `as` casts,
//! `wrapping_*`, and silent `saturating_*` each break exactness without a
//! compile error: a wrap or a clamp makes the ledger balance again at the
//! wrong value, and the conservation test turns green on a lie.
//!
//! `[[ledger]]` tables in `lint.toml` declare which types in which files
//! carry these invariants; this rule flags the three lossy operations in
//! the `impl` blocks of declared types (resolved via the item index, so a
//! helper type's `saturating_add` in the same file stays out of scope).
//! Deliberate saturation — e.g. a diagnostic duration sum that must not
//! wrap — goes through an `[[allow]]` entry with a written reason.

use super::{snippet_at, Finding};
use crate::config::LedgerDecl;
use crate::items::ItemIndex;
use crate::lexer::TokenKind;
use crate::syntax::File;
use crate::walk::SourceFile;

/// Casting a ledger to one of these loses either range or integer
/// exactness (`f32` has a 24-bit mantissa).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

pub fn check(
    sf: &SourceFile,
    file: &File,
    items: &ItemIndex,
    lines: &[&str],
    decl: &LedgerDecl,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.in_test_code(i) {
            continue;
        }
        let in_ledger_impl = items
            .enclosing_impl(i)
            .is_some_and(|ty| decl.types.iter().any(|d| d == ty));
        if !in_ledger_impl {
            continue;
        }
        // `.wrapping_add(` / `.saturating_mul(` / …
        let lossy_call = (t.text.starts_with("wrapping_") || t.text.starts_with("saturating_"))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        if lossy_call {
            let family = if t.text.starts_with("wrapping_") {
                "wraps on overflow"
            } else {
                "clamps silently at the numeric bound"
            };
            findings.push(Finding {
                rule: "L7-ledger-arith",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!(
                    ".{}(..) in ledger type `{}` {family}, breaking exact conservation; \
                     use checked arithmetic or allowlist with the reason saturation is \
                     correct here (ledger reason: {})",
                    t.text,
                    items.enclosing_impl(i).unwrap_or("?"),
                    decl.reason
                ),
                fix: None,
            });
            continue;
        }
        // `… as u32`
        if t.is_ident("as") {
            if let Some(target) = tokens
                .get(i + 1)
                .filter(|n| NARROW_TARGETS.contains(&n.text.as_str()))
            {
                findings.push(Finding {
                    rule: "L7-ledger-arith",
                    path: sf.rel_path.clone(),
                    line: t.line,
                    snippet: snippet_at(lines, t.line),
                    message: format!(
                        "narrowing `as {}` in ledger type `{}` silently truncates; convert \
                         with try_into() or keep the full width",
                        target.text,
                        items.enclosing_impl(i).unwrap_or("?"),
                    ),
                    fix: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::lexer::lex;
    use crate::walk::Section;
    use std::path::PathBuf;

    fn src_file() -> SourceFile {
        SourceFile {
            abs_path: PathBuf::from("crates/resilience/src/breaker.rs"),
            rel_path: "crates/resilience/src/breaker.rs".to_string(),
            crate_name: Some("resilience".to_string()),
            section: Section::Lib,
        }
    }

    fn decl() -> LedgerDecl {
        let toml = "[[ledger]]\npath = \"crates/resilience/src/breaker.rs\"\n\
                    types = [\"BreakerStats\"]\n\
                    reason = \"admitted + rejected == allow() calls is a tested invariant\"\n";
        Config::parse(toml, "lint.toml")
            .expect("fixture config")
            .ledgers[0]
            .clone()
    }

    fn run(src: &str) -> Vec<Finding> {
        let file = File::parse(lex(src));
        let items = ItemIndex::build_for(&file);
        let lines: Vec<&str> = src.lines().collect();
        let mut findings = Vec::new();
        check(&src_file(), &file, &items, &lines, &decl(), &mut findings);
        findings
    }

    #[test]
    fn lossy_ops_inside_the_declared_impl_are_flagged() {
        let src = "impl BreakerStats {\n\
                   fn merge(&mut self, o: &Self) { self.admitted = self.admitted.saturating_add(o.admitted); }\n\
                   fn wrap(&mut self) { self.rejected = self.rejected.wrapping_add(1); }\n\
                   fn narrow(&self) -> u32 { self.admitted as u32 }\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].message.contains("clamps silently"));
        assert!(f[1].message.contains("wraps on overflow"));
        assert!(f[2].message.contains("narrowing `as u32`"));
    }

    #[test]
    fn other_types_in_the_same_file_are_out_of_scope() {
        let src = "impl ScratchBuf {\n\
                   fn grow(&mut self) { self.len = self.len.saturating_add(1); }\n\
                   fn small(&self) -> u8 { self.len as u8 }\n\
                   }\n\
                   fn free(x: u64) -> u32 { x.wrapping_mul(3) as u32 }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn exact_and_widening_arithmetic_passes() {
        let src = "impl BreakerStats {\n\
                   fn ok(&mut self, o: &Self) { self.admitted += o.admitted; }\n\
                   fn widen(&self) -> u128 { self.admitted as u128 }\n\
                   fn ratio(&self) -> f64 { self.admitted as f64 }\n\
                   }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "impl BreakerStats {\n\
                   #[cfg(test)]\n\
                   fn t(&self) -> u8 { self.admitted as u8 }\n\
                   }";
        assert!(run(src).is_empty());
    }
}
