//! Checkpoint payload codecs and run configuration for durable hunts.
//!
//! An enterprise hunt over a month of logs (§V: ~30 B events) can run for
//! hours; losing the whole window to a reboot mid-run is unacceptable. The
//! durable-run machinery splits detection into shards and persists each
//! completed shard through [`baywatch_mapreduce::CheckpointStore`]; this
//! module owns the **payload codecs** — how detection rows and activity
//! summaries are rendered to the repo's zero-dependency stable-key-order
//! JSON and parsed back — plus the caller-facing [`CheckpointSpec`] and the
//! run fingerprint that guards a resume against configuration drift.
//!
//! Floating-point fields are persisted as raw `f64::to_bits` integers, not
//! decimal renderings, so a resumed run is *bit-identical* to the
//! uninterrupted one: every power, period, and interval survives the round
//! trip exactly, including negative zero and non-finite values.
//!
//! Two diagnostic `DetectionReport` fields are deliberately **not**
//! persisted: `prune_decisions` and `interval_gmm` decode as empty/`None`.
//! Downstream consumers (scoring, ranking, reporting) read only
//! `candidates` and the scalar diagnostics; re-deriving the prune trail
//! would mean re-running detection, which defeats the checkpoint.

use std::path::{Path, PathBuf};

use baywatch_mapreduce::{fnv1a64, FaultPolicy};
use baywatch_obs::json::{parse, JsonValue};
use baywatch_obs::JsonWriter;
use baywatch_timeseries::detector::{CandidatePeriod, DetectionReport};
use baywatch_timeseries::BudgetSpec;

use crate::activity::ActivitySummary;
use crate::jobs::DetectRow;
use crate::pair::CommunicationPair;

/// Default number of communication pairs per checkpoint shard.
///
/// Small enough that an interrupt loses at most a few seconds of detector
/// work, large enough that manifest writes stay a rounding error next to
/// the FFT/permutation cost of a shard.
pub const DEFAULT_SHARD_SIZE: usize = 32;

/// Caller-facing configuration for a checkpointed analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory holding the run manifest and per-shard payloads.
    pub dir: PathBuf,
    /// Resume from an existing manifest in `dir` when one is present and
    /// compatible; a missing/corrupt/mismatched manifest degrades to a
    /// fresh run with a warning counter, never an error.
    pub resume: bool,
    /// When set, replay dead-letter-queue entries after the shard sweep
    /// under this (typically larger) budget, re-admitting pairs that now
    /// complete. `None` leaves the DLQ untouched for a later pass.
    pub replay_budget: Option<BudgetSpec>,
    /// Pairs per shard (clamped to at least 1).
    pub shard_size: usize,
    /// Test hook: simulate a kill after this many freshly executed shards.
    /// Production callers leave this `None`.
    pub abort_after_shards: Option<usize>,
}

impl CheckpointSpec {
    /// A fresh (non-resuming, no-replay) spec rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            resume: false,
            replay_budget: None,
            shard_size: DEFAULT_SHARD_SIZE,
            abort_after_shards: None,
        }
    }

    /// Builder-style toggle for [`resume`](Self::resume).
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Builder-style setter for [`replay_budget`](Self::replay_budget).
    pub fn with_replay_budget(mut self, budget: BudgetSpec) -> Self {
        self.replay_budget = Some(budget);
        self
    }
}

/// Operational summary of the checkpoint machinery for one analysis run.
///
/// These are process facts (how much work this invocation skipped or
/// redid), not data facts — a resumed run and an uninterrupted run of the
/// same window produce identical reports but different outcomes here, so
/// none of these fields participate in the deterministic JSON export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointOutcome {
    /// Shards restored from persisted checkpoints instead of re-executed.
    pub resumed_shards: usize,
    /// Shards executed (and checkpointed) by this invocation.
    pub executed_shards: usize,
    /// Total shards in the run plan.
    pub total_shards: usize,
    /// Unusable persisted state encountered (corrupt manifest or shard
    /// payload); each warning degraded to re-execution, not failure.
    pub load_warnings: usize,
    /// Checkpoint writes that failed or were skipped by an open store
    /// breaker; the run degraded those shards to in-memory execution.
    pub write_warnings: usize,
    /// Whether the run stopped early (test-only abort hook); the manifest
    /// on disk is consistent and a `resume` run will finish the plan.
    pub interrupted: bool,
    /// Dead-letter-queue entries present after the shard sweep.
    pub dlq_entries: usize,
    /// DLQ entries re-executed under the replay budget.
    pub dlq_replayed: usize,
    /// Replayed entries that completed and rejoined the funnel.
    pub dlq_recovered: usize,
}

fn write_f64_bits(w: &mut JsonWriter, value: f64) {
    w.uint(value.to_bits());
}

fn read_f64_bits(value: &JsonValue) -> Option<f64> {
    value.as_u64().map(f64::from_bits)
}

fn write_summary(w: &mut JsonWriter, summary: &ActivitySummary) {
    w.raw("{");
    w.key("first_timestamp");
    w.uint(summary.first_timestamp);
    w.key("intervals");
    w.raw("[");
    for &iv in &summary.intervals {
        w.uint(iv);
    }
    w.raw("]");
    w.end_value();
    w.key("pair");
    w.raw("{");
    w.key("destination");
    w.string(&summary.pair.destination);
    w.key("source");
    w.string(&summary.pair.source);
    w.raw("}");
    w.end_value();
    w.key("scale");
    w.uint(summary.scale);
    w.key("url_tokens");
    w.raw("[");
    for token in &summary.url_tokens {
        w.string(token);
    }
    w.raw("]");
    w.end_value();
    w.raw("}");
    w.end_value();
}

fn read_pair(value: &JsonValue) -> Option<CommunicationPair> {
    Some(CommunicationPair::new(
        value.get("source")?.as_str()?,
        value.get("destination")?.as_str()?,
    ))
}

fn read_summary(value: &JsonValue) -> Option<ActivitySummary> {
    let intervals = value
        .get("intervals")?
        .as_array()?
        .iter()
        .map(JsonValue::as_u64)
        .collect::<Option<Vec<u64>>>()?;
    let url_tokens = value
        .get("url_tokens")?
        .as_array()?
        .iter()
        .map(|t| t.as_str().map(str::to_owned))
        .collect::<Option<std::collections::BTreeSet<String>>>()?;
    Some(ActivitySummary {
        pair: read_pair(value.get("pair")?)?,
        scale: value.get("scale")?.as_u64()?,
        first_timestamp: value.get("first_timestamp")?.as_u64()?,
        intervals,
        url_tokens,
    })
}

fn write_report(w: &mut JsonWriter, report: &DetectionReport) {
    w.raw("{");
    w.key("candidates");
    w.raw("[");
    for (i, c) in report.candidates.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.raw("{");
        w.key("acf_score");
        write_f64_bits(w, c.acf_score);
        w.key("frequency");
        write_f64_bits(w, c.frequency);
        w.key("p_value");
        match c.p_value {
            Some(p) => write_f64_bits(w, p),
            None => {
                w.raw("null");
                w.end_value();
            }
        }
        w.key("period");
        write_f64_bits(w, c.period);
        w.key("power");
        write_f64_bits(w, c.power);
        w.raw("}");
    }
    w.raw("]");
    w.end_value();
    w.key("gmm_bics");
    w.raw("[");
    for &b in &report.gmm_bics {
        w.uint(b.to_bits());
    }
    w.raw("]");
    w.end_value();
    w.key("gmm_converged");
    match report.gmm_converged {
        Some(true) => w.raw("true"),
        Some(false) => w.raw("false"),
        None => w.raw("null"),
    }
    w.end_value();
    w.key("gmm_iterations");
    w.uint(report.gmm_iterations as u64);
    w.key("intervals");
    w.raw("[");
    for &iv in &report.intervals {
        w.uint(iv.to_bits());
    }
    w.raw("]");
    w.end_value();
    w.key("power_threshold");
    write_f64_bits(w, report.power_threshold);
    w.key("raw_candidates");
    w.uint(report.raw_candidates as u64);
    w.raw("}");
    w.end_value();
}

fn read_report(value: &JsonValue) -> Option<DetectionReport> {
    let mut candidates = Vec::new();
    for c in value.get("candidates")?.as_array()? {
        let p_value = match c.get("p_value")? {
            JsonValue::Null => None,
            other => Some(read_f64_bits(other)?),
        };
        candidates.push(CandidatePeriod {
            frequency: read_f64_bits(c.get("frequency")?)?,
            period: read_f64_bits(c.get("period")?)?,
            power: read_f64_bits(c.get("power")?)?,
            acf_score: read_f64_bits(c.get("acf_score")?)?,
            p_value,
        });
    }
    let gmm_bics = value
        .get("gmm_bics")?
        .as_array()?
        .iter()
        .map(read_f64_bits)
        .collect::<Option<Vec<f64>>>()?;
    let intervals = value
        .get("intervals")?
        .as_array()?
        .iter()
        .map(read_f64_bits)
        .collect::<Option<Vec<f64>>>()?;
    let gmm_converged = match value.get("gmm_converged")? {
        JsonValue::Null => None,
        other => Some(other.as_bool()?),
    };
    Some(DetectionReport {
        candidates,
        power_threshold: read_f64_bits(value.get("power_threshold")?)?,
        raw_candidates: usize::try_from(value.get("raw_candidates")?.as_u64()?).ok()?,
        prune_decisions: Vec::new(),
        interval_gmm: None,
        gmm_bics,
        gmm_iterations: usize::try_from(value.get("gmm_iterations")?.as_u64()?).ok()?,
        gmm_converged,
        intervals,
    })
}

/// Renders a shard's detection rows as a JSON array (checkpoint payload).
pub fn encode_rows(rows: &[DetectRow]) -> String {
    let mut w = JsonWriter::new();
    w.raw("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.raw("{");
        w.key("kind");
        match row {
            DetectRow::Hit(hit) => {
                w.string("hit");
                w.key("report");
                write_report(&mut w, &hit.1);
                w.key("summary");
                write_summary(&mut w, &hit.0);
            }
            DetectRow::Quiet(pair) => {
                w.string("quiet");
                w.key("pair");
                w.raw("{");
                w.key("destination");
                w.string(&pair.destination);
                w.key("source");
                w.string(&pair.source);
                w.raw("}");
                w.end_value();
            }
            DetectRow::TimedOut(pair) => {
                w.string("timed_out");
                w.key("pair");
                w.raw("{");
                w.key("destination");
                w.string(&pair.destination);
                w.key("source");
                w.string(&pair.source);
                w.raw("}");
                w.end_value();
            }
        }
        w.raw("}");
    }
    w.raw("]");
    w.finish()
}

/// Parses a payload produced by [`encode_rows`]; `None` on any mismatch.
pub fn decode_rows(text: &str) -> Option<Vec<DetectRow>> {
    let doc = parse(text).ok()?;
    let mut rows = Vec::new();
    for item in doc.as_array()? {
        let row = match item.get("kind")?.as_str()? {
            "hit" => DetectRow::Hit(Box::new((
                read_summary(item.get("summary")?)?,
                read_report(item.get("report")?)?,
            ))),
            "quiet" => DetectRow::Quiet(read_pair(item.get("pair")?)?),
            "timed_out" => DetectRow::TimedOut(read_pair(item.get("pair")?)?),
            _ => return None,
        };
        rows.push(row);
    }
    Some(rows)
}

/// Renders a DLQ payload: the quarantined pair's activity summaries.
pub fn encode_summaries(summaries: &[ActivitySummary]) -> String {
    let mut w = JsonWriter::new();
    w.raw("[");
    for (i, summary) in summaries.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        write_summary(&mut w, summary);
    }
    w.raw("]");
    w.finish()
}

/// Parses a payload produced by [`encode_summaries`].
pub fn decode_summaries(text: &str) -> Option<Vec<ActivitySummary>> {
    let doc = parse(text).ok()?;
    doc.as_array()?.iter().map(read_summary).collect()
}

/// Fingerprint binding a manifest to the run configuration that wrote it.
///
/// Covers everything that changes shard outputs: the fault policy, the
/// per-pair detection budget, the permutation RNG seed, and the shard plan
/// itself (ids, sizes, and every summary's rendered content). A resume
/// against a manifest with a different fingerprint degrades to a fresh run.
pub fn run_fingerprint(
    policy: &FaultPolicy,
    budget: &BudgetSpec,
    rng_seed: u64,
    shards: &[Vec<ActivitySummary>],
) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = write!(
        text,
        "policy:{}:{}:{:?};budget:{:?}:{:?};seed:{rng_seed};",
        policy.max_task_retries,
        policy.sample_limit,
        policy.task_deadline,
        budget.max_millis,
        budget.max_ops,
    );
    let _ = write!(
        text,
        "plan:{};",
        baywatch_mapreduce::shard_plan_digest(shards)
    );
    fnv1a64(text.as_bytes())
}

/// Clamped shard plan: summaries in deterministic order, `shard_size` per
/// shard. The order (descending request count, pair as tie-break) matches
/// the budgeted pipeline path so heavy pairs land in early shards.
pub fn plan_shards(
    mut summaries: Vec<ActivitySummary>,
    shard_size: usize,
) -> Vec<Vec<ActivitySummary>> {
    summaries.sort_by(|a, b| {
        b.request_count()
            .cmp(&a.request_count())
            .then_with(|| a.pair.cmp(&b.pair))
    });
    summaries
        .chunks(shard_size.max(1))
        .map(<[ActivitySummary]>::to_vec)
        .collect()
}

/// `true` when `dir` holds a manifest from a previous (possibly
/// interrupted) run — used by CLI front-ends to decide whether `--resume`
/// has anything to resume.
pub fn has_manifest(dir: &Path) -> bool {
    dir.join("run_manifest.json").is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(src: &str, dst: &str, n: usize) -> ActivitySummary {
        ActivitySummary {
            pair: CommunicationPair::new(src, dst),
            scale: 1,
            first_timestamp: 1_000,
            intervals: (0..n).map(|i| 60 + (i as u64 % 3)).collect(),
            url_tokens: ["beacon", "gate.php"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    fn report() -> DetectionReport {
        DetectionReport {
            candidates: vec![
                CandidatePeriod {
                    frequency: 1.0 / 60.0,
                    period: 60.0,
                    power: 12.5,
                    acf_score: 0.91,
                    p_value: Some(0.003),
                },
                CandidatePeriod {
                    frequency: f64::from_bits(0x3FF0_0000_0000_0001),
                    period: -0.0,
                    power: 1e-300,
                    acf_score: f64::NAN,
                    p_value: None,
                },
            ],
            power_threshold: 7.25,
            raw_candidates: 4,
            prune_decisions: Vec::new(),
            interval_gmm: None,
            gmm_bics: vec![-310.5, f64::INFINITY],
            gmm_iterations: 17,
            gmm_converged: Some(false),
            intervals: vec![60.0, 61.0, 62.0],
        }
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        let rows = vec![
            DetectRow::Hit(Box::new((summary("h1", "evil.test", 5), report()))),
            DetectRow::Quiet(CommunicationPair::new("h2", "quiet.test")),
            DetectRow::TimedOut(CommunicationPair::new("h3", "slow.test")),
        ];
        let encoded = encode_rows(&rows);
        let decoded = decode_rows(&encoded).expect("payload parses");
        assert_eq!(decoded.len(), 3);
        match (&rows[0], &decoded[0]) {
            (DetectRow::Hit(a), DetectRow::Hit(b)) => {
                assert_eq!(a.0, b.0);
                assert_eq!(b.1.candidates.len(), 2);
                // Bit-exact floats, including NaN / -0.0 / subnormal range.
                for (ca, cb) in a.1.candidates.iter().zip(&b.1.candidates) {
                    assert_eq!(ca.frequency.to_bits(), cb.frequency.to_bits());
                    assert_eq!(ca.period.to_bits(), cb.period.to_bits());
                    assert_eq!(ca.power.to_bits(), cb.power.to_bits());
                    assert_eq!(ca.acf_score.to_bits(), cb.acf_score.to_bits());
                    assert_eq!(ca.p_value.map(f64::to_bits), cb.p_value.map(f64::to_bits));
                }
                assert_eq!(a.1.power_threshold.to_bits(), b.1.power_threshold.to_bits());
                assert_eq!(a.1.gmm_converged, b.1.gmm_converged);
                assert_eq!(
                    a.1.gmm_bics.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.1.gmm_bics.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
            }
            other => panic!("row 0 mismatch: {other:?}"),
        }
        assert_eq!(&rows[1], &decoded[1]);
        assert_eq!(&rows[2], &decoded[2]);
        // Re-encoding the decoded rows is byte-identical.
        assert_eq!(encode_rows(&decoded), encoded);
    }

    #[test]
    fn summaries_round_trip() {
        let batch = vec![summary("h1", "a.test", 3), summary("h2", "b.test", 7)];
        let encoded = encode_summaries(&batch);
        assert_eq!(decode_summaries(&encoded).expect("parses"), batch);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(decode_rows("not json").is_none());
        assert!(decode_rows("{}").is_none());
        assert!(decode_rows("[{\"kind\":\"mystery\"}]").is_none());
        assert!(decode_summaries("[{\"pair\":{}}]").is_none());
    }

    #[test]
    fn fingerprint_tracks_every_input() {
        let policy = FaultPolicy::default();
        let budget = BudgetSpec::UNLIMITED;
        let shards = vec![vec![summary("h1", "a.test", 3)]];
        let base = run_fingerprint(&policy, &budget, 7, &shards);
        assert_eq!(base, run_fingerprint(&policy, &budget, 7, &shards));
        assert_ne!(base, run_fingerprint(&policy, &budget, 8, &shards));
        let tighter = BudgetSpec {
            max_ops: Some(10),
            ..budget
        };
        assert_ne!(base, run_fingerprint(&policy, &tighter, 7, &shards));
        let other_plan = vec![vec![summary("h1", "a.test", 4)]];
        assert_ne!(base, run_fingerprint(&policy, &budget, 7, &other_plan));
    }

    #[test]
    fn plan_shards_orders_heavy_pairs_first() {
        let shards = plan_shards(
            vec![
                summary("h1", "light.test", 2),
                summary("h2", "heavy.test", 50),
                summary("h3", "mid.test", 10),
            ],
            2,
        );
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0][0].pair.destination, "heavy.test");
        assert_eq!(shards[0][1].pair.destination, "mid.test");
        assert_eq!(shards[1][0].pair.destination, "light.test");
    }
}
