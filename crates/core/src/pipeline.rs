//! The end-to-end BAYWATCH engine: all eight filters wired together
//! (Fig. 3 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use baywatch_langmodel::{corpus, DomainScorer};
use baywatch_mapreduce::{
    BudgetSnapshot, CheckpointStore, CheckpointedRun, DlqReason, FaultPlan, FaultPolicy,
    FaultReport, JobConfig, MapReduce, RunManifest,
};
use baywatch_obs::{Buckets, Clock, MetricsRegistry, MetricsSnapshot, MonotonicClock, StageTracer};
use baywatch_resilience::{AdmissionConfig, AdmissionController, AdmissionDecision, RetryPolicy};
use baywatch_timeseries::detector::{
    DetectionReport, DetectorConfig, DetectorObs, PeriodicityDetector,
};
use baywatch_timeseries::BudgetSpec;

use crate::activity::ActivitySummary;
use crate::checkpoint::{self, CheckpointOutcome, CheckpointSpec};
use crate::io::ReadOutcome;
use crate::jobs;
use crate::novelty::NoveltyStore;
use crate::popularity::PopularityStats;
use crate::rank::{rank_cases, BeaconCase, RankConfig, RankedCase};
use crate::record::LogRecord;
use crate::tokens::TokenFilter;
use crate::whitelist::{GlobalWhitelist, LocalWhitelist};

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct BaywatchConfig {
    /// Finest time scale for activity summaries (seconds; paper: 1).
    pub time_scale: u64,
    /// Periodicity-detector settings.
    pub detector: DetectorConfig,
    /// Local-whitelist population threshold τ_P (paper: 0.01).
    pub local_tau: f64,
    /// URL-token filter.
    pub token_filter: TokenFilter,
    /// Ranking weights and report percentile.
    pub rank: RankConfig,
    /// MapReduce engine settings.
    pub mapreduce: JobConfig,
    /// Backoff schedule applied between MapReduce task retry attempts
    /// (disarmed by default: retries stay immediate and the pipeline's
    /// behaviour is byte-identical to a policy-free build).
    pub retry: RetryPolicy,
    /// n-gram order of the domain language model (paper: 3).
    pub lm_order: usize,
    /// Whether to load the built-in global whitelist (can be disabled for
    /// synthetic experiments with no real domains).
    pub use_builtin_whitelist: bool,
    /// Wall-clock budgets for degraded-mode operation (all disarmed by
    /// default; see [`PipelineBudget`]).
    pub budget: PipelineBudget,
}

impl Default for BaywatchConfig {
    fn default() -> Self {
        Self {
            time_scale: 1,
            detector: DetectorConfig::default(),
            local_tau: 0.01,
            token_filter: TokenFilter::default(),
            rank: RankConfig::default(),
            mapreduce: JobConfig::default(),
            retry: RetryPolicy::default(),
            lm_order: 3,
            use_builtin_whitelist: true,
            budget: PipelineBudget::default(),
        }
    }
}

/// Wall-clock budgets bounding one analysis window (§VIII-B2: 26M pairs
/// must clear the daily window in ~1.5 h, so no single pair — and no
/// backlog of pairs — may stall it).
///
/// Three knobs compose, each independently optional:
///
/// * the **per-pair** kernel budget lives in
///   [`DetectorConfig::budget`](baywatch_timeseries::detector::DetectorConfig)
///   and cuts off one runaway detection at a safe checkpoint
///   (`timed_out_pairs`),
/// * [`task_deadline_millis`](Self::task_deadline_millis) arms MapReduce
///   straggler handling for every job in the window (`timed_out` fault
///   categories),
/// * [`window_millis`](Self::window_millis) bounds the whole detection
///   phase: when it runs out, the not-yet-analyzed pairs are shed in
///   reverse priority order — fewest-events pairs first — and counted in
///   [`FilterStats::shed_pairs`].
///
/// With every knob disarmed (the default) the pipeline runs its original
/// code paths and its output is byte-identical to an unbudgeted build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineBudget {
    /// Wall-clock budget (milliseconds) for the detection phase of one
    /// [`Baywatch::analyze`] window; `None` = unlimited.
    pub window_millis: Option<u64>,
    /// Per-task straggler deadline (milliseconds) applied to every
    /// MapReduce job in the window; `None` = disabled.
    pub task_deadline_millis: Option<u64>,
}

impl PipelineBudget {
    /// True when any limit is armed.
    pub fn is_armed(&self) -> bool {
        self.window_millis.is_some() || self.task_deadline_millis.is_some()
    }

    /// The fault policy carrying the per-task deadline.
    fn policy(&self) -> FaultPolicy {
        FaultPolicy {
            task_deadline: self.task_deadline_millis.map(Duration::from_millis),
            ..FaultPolicy::default()
        }
    }
}

/// Per-filter survivor counts — the data-flow numbers of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Raw input events.
    pub events: usize,
    /// Distinct communication pairs extracted.
    pub pairs: usize,
    /// Pairs surviving the global whitelist (filter 1).
    pub after_global_whitelist: usize,
    /// Pairs surviving the local whitelist (filter 2).
    pub after_local_whitelist: usize,
    /// Pairs with verified periodic behaviour (filter 3).
    pub periodic: usize,
    /// Cases surviving the URL-token filter (filter 4).
    pub after_token_filter: usize,
    /// Cases surviving novelty analysis (filter 5).
    pub after_novelty: usize,
    /// Cases above the ranking percentile (filters 6–7).
    pub reported: usize,
    /// Input lines that failed to parse during ingest (lenient mode); zero
    /// when the window was handed over as already-parsed records.
    pub malformed_lines: usize,
    /// Events dropped by fault-tolerant execution (poison records plus
    /// values lost with quarantined pairs during extraction).
    pub skipped_events: usize,
    /// Communication pairs quarantined after their map/reduce tasks kept
    /// panicking (degraded mode: each costs one pair, not the run).
    pub quarantined_pairs: usize,
    /// Pairs whose analysis exceeded an execution budget or straggler
    /// deadline and was cut off (degraded mode: each costs one pair, not
    /// the window). Distinct from `quarantined_pairs`: nothing panicked.
    pub timed_out_pairs: usize,
    /// Pairs shed without analysis because the window's wall-clock budget
    /// ran out; the lowest-priority (fewest-events) pairs are shed first.
    pub shed_pairs: usize,
    /// Pairs analyzed under a tightened per-pair budget because the
    /// admission controller saw sustained window pressure — degraded
    /// before shed, so overload costs fidelity prior to coverage.
    pub degraded_pairs: usize,
    /// Dead-letter-queue entries replayed under a larger budget in a
    /// checkpointed run (zero outside checkpointed runs).
    pub dlq_replayed: usize,
    /// Replayed DLQ entries that completed and rejoined the funnel: each
    /// recovery decrements `quarantined_pairs` or `timed_out_pairs` and any
    /// verified hits flow through filters 4–7 like first-pass detections.
    pub dlq_recovered: usize,
}

/// The outcome of analyzing one window.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Survivor counts per filter.
    pub stats: FilterStats,
    /// Every scored case (after filters 1–6), ranked best-first.
    pub ranked: Vec<RankedCase>,
    /// Index cutoff into `ranked`: entries below it are above the report
    /// percentile (filter 7).
    pub report_cutoff: usize,
    /// Popularity statistics of the window (useful to callers).
    pub popularity_total_sources: usize,
    /// Aggregate fault-tolerance report across every MapReduce job in the
    /// window (retries, quarantines, per-phase timings). Clean when no
    /// task misbehaved.
    pub faults: FaultReport,
    /// Sampled ingest errors when the window came from
    /// [`Baywatch::analyze_outcome`] (bounded; `stats.malformed_lines` is
    /// the exact count).
    pub malformed_samples: Vec<String>,
    /// Checkpoint machinery outcome for runs started through
    /// [`Baywatch::analyze_checkpointed`]; `None` otherwise. These are
    /// process facts (resumed/re-executed work), not data facts, and never
    /// appear in the deterministic JSON export.
    pub checkpoint: Option<CheckpointOutcome>,
}

impl AnalysisReport {
    /// The cases above the reporting threshold.
    pub fn reported(&self) -> &[RankedCase] {
        &self.ranked[..self.report_cutoff]
    }
}

/// The BAYWATCH engine. Holds state that persists across windows (the
/// novelty store and the trained language model).
#[derive(Debug)]
pub struct Baywatch {
    config: BaywatchConfig,
    engine: MapReduce,
    detector: PeriodicityDetector,
    scorer: DomainScorer,
    global_whitelist: GlobalWhitelist,
    local_whitelist: LocalWhitelist,
    novelty: NoveltyStore,
    fault_plan: Option<Arc<FaultPlan>>,
    metrics: Arc<MetricsRegistry>,
    tracer: StageTracer,
}

impl Baywatch {
    /// Creates an engine: trains the domain language model on the embedded
    /// corpus and loads the global whitelist. Stage spans are timed with a
    /// [`MonotonicClock`]; use [`Baywatch::with_clock`] to inject a manual
    /// clock for reproducible traces.
    ///
    /// # Panics
    ///
    /// Panics if `config.lm_order == 0` or `config.local_tau` is out of
    /// `(0, 1]`.
    pub fn new(config: BaywatchConfig) -> Self {
        Self::with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// Like [`Baywatch::new`] with an injected [`Clock`] driving the stage
    /// tracer and detector timings. With a
    /// [`ManualClock`](baywatch_obs::ManualClock) every recorded duration
    /// is reproducible, which the golden-run suite relies on.
    pub fn with_clock(config: BaywatchConfig, clock: Arc<dyn Clock>) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let tracer = StageTracer::new(clock.clone());
        let scorer = DomainScorer::train(corpus::training_corpus(), config.lm_order);
        let global_whitelist = if config.use_builtin_whitelist {
            GlobalWhitelist::from_seed_corpus()
        } else {
            GlobalWhitelist::default()
        };
        let local_whitelist = LocalWhitelist::new(config.local_tau);
        let engine = MapReduce::new(config.mapreduce)
            .with_retry_policy(config.retry)
            .with_metrics(metrics.clone());
        let detector = PeriodicityDetector::new(config.detector.clone())
            .with_obs(DetectorObs::new(&metrics, clock));
        Self {
            config,
            engine,
            detector,
            scorer,
            global_whitelist,
            local_whitelist,
            novelty: NoveltyStore::new(),
            fault_plan: None,
            metrics,
            tracer,
        }
    }

    /// The engine's metrics registry (counters, value histograms, stage
    /// timings). Shared with the MapReduce engine and the detector.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The stage tracer; completed spans accumulate until
    /// [`StageTracer::drain`] (called at the end of every
    /// [`Baywatch::analyze`], which folds them into `span.*` timing
    /// histograms).
    pub fn tracer(&self) -> &StageTracer {
        &self.tracer
    }

    /// Arms a deterministic fault-injection plan: every MapReduce job run
    /// by subsequent [`Baywatch::analyze`] calls routes its map/reduce
    /// checkpoints through `plan`. Test-harness machinery; analysis still
    /// completes (degraded) when the plan fires.
    pub fn arm_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault_plan = Some(plan);
    }

    /// Disarms any armed fault-injection plan.
    pub fn disarm_fault_plan(&mut self) {
        self.fault_plan = None;
    }

    /// The active configuration.
    pub fn config(&self) -> &BaywatchConfig {
        &self.config
    }

    /// Mutable access to the global whitelist (e.g. to add
    /// organization-specific entries).
    pub fn global_whitelist_mut(&mut self) -> &mut GlobalWhitelist {
        &mut self.global_whitelist
    }

    /// The novelty store (persists across [`Baywatch::analyze`] calls —
    /// daily operation reports each pair once).
    pub fn novelty(&self) -> &NoveltyStore {
        &self.novelty
    }

    /// The trained domain scorer.
    pub fn scorer(&self) -> &DomainScorer {
        &self.scorer
    }

    /// Analyzes one window of pre-parsed log lines: like
    /// [`Baywatch::analyze`], but carries the lenient-ingest tallies
    /// (malformed-line count and error samples) from the [`ReadOutcome`]
    /// into the report so degraded input stays visible downstream.
    pub fn analyze_outcome(&mut self, outcome: ReadOutcome) -> AnalysisReport {
        let malformed_lines = outcome.malformed_lines;
        let malformed_samples: Vec<String> = outcome.errors.iter().map(|e| e.to_string()).collect();
        let mut report = self.analyze(outcome.records);
        report.stats.malformed_lines = malformed_lines;
        report.malformed_samples = malformed_samples;
        report
    }

    /// Analyzes one window of records through filters 1–7.
    ///
    /// Every MapReduce job runs on the fault-tolerant engine: a poison
    /// record or pair is quarantined (recorded in `stats.skipped_events` /
    /// `stats.quarantined_pairs` and the aggregate `faults` report) and
    /// the analysis completes on the surviving pairs instead of panicking.
    ///
    /// Filter 8 (bootstrap classification) is separate — see
    /// [`crate::investigate`] — because it needs manual labels.
    pub fn analyze(&mut self, records: Vec<LogRecord>) -> AnalysisReport {
        match self.analyze_with(records, None) {
            Ok(report) => report,
            // Unreachable in practice: without a checkpoint spec the
            // analysis performs no filesystem I/O. Degrade to an empty
            // report rather than panic if it ever is reached.
            Err(_) => AnalysisReport {
                stats: FilterStats::default(),
                ranked: Vec::new(),
                report_cutoff: 0,
                popularity_total_sources: 0,
                faults: FaultReport::default(),
                malformed_samples: Vec::new(),
                checkpoint: None,
            },
        }
    }

    /// Analyzes one window like [`Baywatch::analyze`], but runs the
    /// detection phase (filter 3 — by far the dominant cost at enterprise
    /// scale) through a durable checkpoint under `spec.dir`:
    ///
    /// * detection is sharded ([`CheckpointSpec::shard_size`] pairs per
    ///   shard, heaviest pairs first) and every completed shard is
    ///   persisted atomically (rows, fault report, metric deltas) together
    ///   with a versioned run manifest,
    /// * with [`CheckpointSpec::resume`], shards recorded in a compatible
    ///   manifest are restored instead of re-executed — the resumed run's
    ///   report is **byte-identical** to an uninterrupted one (corrupt or
    ///   mismatched state degrades to re-execution, never failure),
    /// * pairs the engine lost (quarantined poison, straggler timeouts,
    ///   exhausted per-pair budgets) land in a replayable dead-letter queue
    ///   inside the manifest; with [`CheckpointSpec::replay_budget`] they
    ///   are re-run under that (typically larger) budget after the shard
    ///   sweep, and recoveries rejoin the funnel with exact accounting.
    ///
    /// Errors only on checkpoint-directory I/O failures (unwritable dir,
    /// disk full); analysis faults are still *degradation*, not errors.
    pub fn analyze_checkpointed(
        &mut self,
        records: Vec<LogRecord>,
        spec: &CheckpointSpec,
    ) -> std::io::Result<AnalysisReport> {
        self.analyze_with(records, Some(spec))
    }

    fn analyze_with(
        &mut self,
        records: Vec<LogRecord>,
        checkpoint: Option<&CheckpointSpec>,
    ) -> std::io::Result<AnalysisReport> {
        let mut stats = FilterStats {
            events: records.len(),
            ..Default::default()
        };
        let mut faults = FaultReport::default();
        let plan = self.fault_plan.clone();
        let plan = plan.as_deref();
        let policy = self.config.budget.policy();
        let tracer = self.tracer.clone();
        let window_span = tracer.span("analyze");
        self.metrics
            .counter("pipeline.events")
            .add(stats.events as u64);

        // ---- Popularity statistics (input to filter 2 & ranking). ----
        let popularity = {
            let _span = tracer.span("popularity");
            PopularityStats::compute(&self.engine, &records)
        };

        // ---- Data extraction (§VII-A). ----
        let (summaries, extract_faults) = {
            let _span = tracer.span("extract");
            jobs::extract_summaries_ft_with_policy(
                &self.engine,
                records,
                self.config.time_scale,
                plan,
                &policy,
            )
        };
        stats.pairs = summaries.len();
        stats.skipped_events = extract_faults.skipped_records();
        stats.quarantined_pairs += extract_faults.quarantined_keys;
        stats.timed_out_pairs += extract_faults.timed_out_keys;
        faults.absorb(&extract_faults);
        self.metrics
            .counter("pipeline.pairs")
            .add(stats.pairs as u64);
        self.stage_counters(
            "01_extract",
            stats.pairs,
            &[
                ("skipped_events", stats.skipped_events),
                ("quarantined", extract_faults.quarantined_keys),
                ("timed_out", extract_faults.timed_out_keys),
            ],
        );

        // ---- Filter 1: global whitelist. ----
        let input = summaries.len();
        let summaries: Vec<_> = {
            let _span = tracer.span("whitelist.global");
            summaries
                .into_iter()
                .filter(|s| !self.global_whitelist.contains(&s.pair.destination))
                .collect()
        };
        stats.after_global_whitelist = summaries.len();
        self.admit_drop("02_global_whitelist", input, summaries.len());

        // ---- Filter 2: local whitelist (popularity τ_P). ----
        let input = summaries.len();
        let summaries: Vec<_> = {
            let _span = tracer.span("whitelist.local");
            summaries
                .into_iter()
                .filter(|s| {
                    !self
                        .local_whitelist
                        .is_whitelisted(popularity.popularity(&s.pair.destination))
                })
                .collect()
        };
        stats.after_local_whitelist = summaries.len();
        self.admit_drop("03_local_whitelist", input, summaries.len());

        // ---- Filter 3: periodicity detection (§IV, §VII-D). ----
        // The detector is built once per pipeline; inside the job each worker
        // thread routes its FFTs through a thread-local spectral workspace,
        // so plans are built once per thread and reused across the window.
        let input = summaries.len();
        let timed_out_before = stats.timed_out_pairs;
        let quarantined_before = stats.quarantined_pairs;
        let (detections, checkpoint_outcome) = {
            let _span = tracer.span("detect");
            match checkpoint {
                None => (
                    self.detect_with_budget(summaries, plan, &policy, &mut stats, &mut faults),
                    None,
                ),
                Some(spec) => {
                    let (detections, outcome) = self.detect_checkpointed(
                        summaries,
                        plan,
                        &policy,
                        &mut stats,
                        &mut faults,
                        spec,
                    )?;
                    (detections, Some(outcome))
                }
            }
        };
        stats.periodic = detections.len();
        let timed_out = stats.timed_out_pairs - timed_out_before;
        let quarantined = stats.quarantined_pairs - quarantined_before;
        self.stage_counters(
            "04_periodicity",
            stats.periodic,
            &[
                (
                    "dropped",
                    input.saturating_sub(
                        stats.periodic + timed_out + quarantined + stats.shed_pairs,
                    ),
                ),
                ("timed_out", timed_out),
                ("quarantined", quarantined),
                ("shed", stats.shed_pairs),
            ],
        );

        // Similar-source counts among the candidate destinations. A
        // BTreeMap keeps any future iteration over the counts ordered by
        // destination; lookups below are point queries either way.
        let mut similar: BTreeMap<&str, usize> = BTreeMap::new();
        for (summary, _) in &detections {
            *similar
                .entry(summary.pair.destination.as_str())
                .or_insert(0) += 1;
        }
        let similar: BTreeMap<String, usize> = similar
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();

        // ---- Filter 4: URL-token filter (§V-A). ----
        let input = detections.len();
        let detections: Vec<_> = {
            let _span = tracer.span("token_filter");
            detections
                .into_iter()
                .filter(|(summary, _)| !self.config.token_filter.is_benign(&summary.url_tokens))
                .collect()
        };
        stats.after_token_filter = detections.len();
        self.admit_drop("05_token_filter", input, detections.len());

        // ---- Filter 5: novelty analysis (§V-B). ----
        let input = detections.len();
        let detections: Vec<_> = {
            let _span = tracer.span("novelty");
            detections
                .into_iter()
                .filter(|(summary, _)| self.novelty.observe(&summary.pair).is_novel())
                .collect()
        };
        stats.after_novelty = detections.len();
        self.admit_drop("06_novelty", input, detections.len());

        // ---- Filter 6: language-model scoring + case assembly (§V-C). ----
        // ---- Filter 7: weighted ranking + percentile threshold (§V-D). ----
        let (ranked, report_cutoff) = {
            let _span = tracer.span("lm_rank");
            let cases: Vec<BeaconCase> = detections
                .into_iter()
                .map(|(summary, report)| {
                    let lm_score = self.scorer.score_per_char(&summary.pair.destination);
                    BeaconCase {
                        popularity: popularity.popularity(&summary.pair.destination),
                        lm_score,
                        similar_sources: similar
                            .get(summary.pair.destination.as_str())
                            .copied()
                            .unwrap_or(1),
                        intervals: summary.intervals_f64(),
                        url_tokens: summary.url_tokens.clone(),
                        pair: summary.pair,
                        candidates: report.candidates,
                    }
                })
                .collect();
            rank_cases(&cases, &self.config.rank)
        };
        stats.reported = report_cutoff;
        self.stage_counters(
            "07_lm_rank",
            stats.reported,
            &[("below_cutoff", ranked.len().saturating_sub(report_cutoff))],
        );

        // Fold completed stage spans into `span.*` timing histograms
        // (quarantined out of the deterministic export).
        drop(window_span);
        let span_buckets =
            Buckets::exponential(1_000, 4, 14).expect("static bucket layout is valid");
        for record in tracer.drain() {
            self.metrics
                .timing(&format!("span.{}", record.path), &span_buckets)
                .observe(record.duration_nanos);
        }

        Ok(AnalysisReport {
            stats,
            ranked,
            report_cutoff,
            popularity_total_sources: popularity.total_sources(),
            faults,
            malformed_samples: Vec::new(),
            checkpoint: checkpoint_outcome,
        })
    }

    /// The coarser per-pair budget a degraded wave runs under: half the
    /// armed limits (never below one unit). An unlimited budget has
    /// nothing to tighten and is left unlimited — degradation then only
    /// marks the affected pairs.
    fn degraded_budget(budget: BudgetSpec) -> BudgetSpec {
        BudgetSpec {
            max_millis: budget.max_millis.map(|m| (m / 2).max(1)),
            max_ops: budget.max_ops.map(|o| (o / 2).max(1)),
        }
    }

    /// Records `stage.<stage>.admitted` plus the given extra counters.
    fn stage_counters(&self, stage: &str, admitted: usize, extras: &[(&str, usize)]) {
        self.metrics
            .counter(&format!("stage.{stage}.admitted"))
            .add(admitted as u64);
        for (name, value) in extras {
            self.metrics
                .counter(&format!("stage.{stage}.{name}"))
                .add(*value as u64);
        }
    }

    /// Records admitted/dropped counters for a simple filter stage.
    fn admit_drop(&self, stage: &str, input: usize, admitted: usize) {
        self.stage_counters(
            stage,
            admitted,
            &[("dropped", input.saturating_sub(admitted))],
        );
    }

    /// Runs the detection job under the window's budgets.
    ///
    /// Unlimited window (`budget.window_millis == None`): one job over all
    /// summaries — the original code path, byte-identical output.
    ///
    /// Armed window: summaries are sorted by priority (most events first,
    /// pair as tie-break) and detected in bounded waves; when the window's
    /// wall clock runs out between waves, the remaining — lowest-priority —
    /// pairs are shed and counted exactly in `stats.shed_pairs`. Ranking
    /// downstream imposes a total order on cases, so wave reordering never
    /// changes the ranked output of the pairs that do run.
    fn detect_with_budget(
        &self,
        summaries: Vec<ActivitySummary>,
        plan: Option<&FaultPlan>,
        policy: &FaultPolicy,
        stats: &mut FilterStats,
        faults: &mut FaultReport,
    ) -> Vec<(ActivitySummary, DetectionReport)> {
        let pair_budget = self.config.detector.budget;
        let mut detections = Vec::new();
        // Pairs already counted in `timed_out_pairs` via a TimedOut row.
        // A pair may reach detection through several summaries (one per
        // reduce group upstream, or duplicated input); the funnel must
        // count it once — and never again as shed.
        let mut timed_out_rows: BTreeSet<crate::pair::CommunicationPair> = BTreeSet::new();
        let run_wave =
            |batch: Vec<ActivitySummary>,
             wave_budget: BudgetSpec,
             detections: &mut Vec<(ActivitySummary, DetectionReport)>,
             stats: &mut FilterStats,
             faults: &mut FaultReport,
             timed_out_rows: &mut BTreeSet<crate::pair::CommunicationPair>| {
                let (rows, detect_faults) = jobs::detect_beaconing_budgeted_ft(
                    &self.engine,
                    batch,
                    &self.detector,
                    wave_budget,
                    plan,
                    policy,
                );
                stats.quarantined_pairs +=
                    detect_faults.quarantined_keys + detect_faults.quarantined_inputs;
                stats.timed_out_pairs +=
                    detect_faults.timed_out_inputs + detect_faults.timed_out_keys;
                faults.absorb(&detect_faults);
                for row in rows {
                    match row {
                        jobs::DetectRow::Hit(hit) => detections.push(*hit),
                        jobs::DetectRow::TimedOut(pair) => {
                            if timed_out_rows.insert(pair) {
                                stats.timed_out_pairs += 1;
                            }
                        }
                        jobs::DetectRow::Quiet(_) => {}
                    }
                }
            };

        let Some(window_millis) = self.config.budget.window_millis else {
            run_wave(
                summaries,
                pair_budget,
                &mut detections,
                stats,
                faults,
                &mut timed_out_rows,
            );
            return detections;
        };

        let window_budget = BudgetSpec {
            max_millis: Some(window_millis),
            max_ops: None,
        }
        .start();
        let mut pending = summaries;
        pending.sort_by(|a, b| {
            b.request_count()
                .cmp(&a.request_count())
                .then_with(|| a.pair.cmp(&b.pair))
        });
        let wave = self.config.mapreduce.threads.max(1) * 4;
        let mut idx = 0;
        // Overload degrades before it sheds: between `degrade_enter` and
        // `reject_enter` pressure, waves still run — under a tightened
        // per-pair budget — and only a genuinely exhausted (or saturated)
        // window rejects the remainder outright.
        let mut admission = AdmissionController::new(AdmissionConfig::default());
        while idx < pending.len() {
            let decision = admission.decide(
                window_budget.utilization(),
                window_budget.is_exhausted(),
            );
            for change in admission.take_changes() {
                // Zero-length span marking the transition instant; folded
                // into the operational `span.*` timings with the stage
                // spans, never into the deterministic export.
                drop(
                    self.tracer
                        .span(&format!("admission.enter_{}", change.entered.label())),
                );
            }
            if decision == AdmissionDecision::Reject {
                // A pair already counted as timed out in an earlier wave
                // (possible when the same pair arrives through several
                // summaries) must not be double-counted as shed.
                stats.shed_pairs = pending[idx..]
                    .iter()
                    .filter(|s| !timed_out_rows.contains(&s.pair))
                    .count();
                break;
            }
            let end = (idx + wave).min(pending.len());
            let wave_budget = if decision == AdmissionDecision::Degrade {
                stats.degraded_pairs += end - idx;
                Self::degraded_budget(pair_budget)
            } else {
                pair_budget
            };
            run_wave(
                pending[idx..end].to_vec(),
                wave_budget,
                &mut detections,
                stats,
                faults,
                &mut timed_out_rows,
            );
            idx = end;
        }
        // Gated like `dlq.*`: a window that only ever accepted leaves the
        // registry (and the deterministic export) untouched.
        let admitted = admission.stats();
        if admitted.degraded > 0 || admitted.rejected > 0 {
            self.metrics
                .counter("resilience.admission.accepted")
                .add(admitted.accepted);
            self.metrics
                .counter("resilience.admission.degraded")
                .add(admitted.degraded);
            self.metrics
                .counter("resilience.admission.rejected")
                .add(admitted.rejected);
            self.metrics
                .counter("resilience.admission.transitions")
                .add(admitted.transitions);
        }
        detections
    }

    /// Runs the detection job through the durable checkpoint machinery
    /// (see [`Baywatch::analyze_checkpointed`] for the contract).
    fn detect_checkpointed(
        &self,
        summaries: Vec<ActivitySummary>,
        plan: Option<&FaultPlan>,
        policy: &FaultPolicy,
        stats: &mut FilterStats,
        faults: &mut FaultReport,
        spec: &CheckpointSpec,
    ) -> std::io::Result<(Vec<(ActivitySummary, DetectionReport)>, CheckpointOutcome)> {
        let pair_budget = self.config.detector.budget;
        let shards = checkpoint::plan_shards(summaries, spec.shard_size);
        let store = CheckpointStore::create(&spec.dir)?;
        let fingerprint = checkpoint::run_fingerprint(
            policy,
            &pair_budget,
            self.config.detector.permutation.seed,
            &shards,
        );
        let run = CheckpointedRun {
            store: &store,
            fingerprint,
            rng_seed: self.config.detector.permutation.seed,
            budget: BudgetSnapshot {
                max_millis: pair_budget.max_millis,
                max_ops: pair_budget.max_ops,
            },
            resume: spec.resume,
            io_faults: plan,
            abort_after_shards: spec.abort_after_shards,
        };
        let outcome = jobs::detect_beaconing_checkpointed_ft(
            &self.engine,
            shards,
            &self.detector,
            pair_budget,
            plan,
            policy,
            &run,
        )?;
        stats.quarantined_pairs +=
            outcome.faults.quarantined_keys + outcome.faults.quarantined_inputs;
        stats.timed_out_pairs += outcome.faults.timed_out_inputs + outcome.faults.timed_out_keys;
        faults.absorb(&outcome.faults);
        let mut detections = Vec::new();
        let mut timed_out_rows: BTreeSet<crate::pair::CommunicationPair> = BTreeSet::new();
        for row in outcome.outputs {
            match row {
                jobs::DetectRow::Hit(hit) => detections.push(*hit),
                jobs::DetectRow::TimedOut(pair) => {
                    if timed_out_rows.insert(pair) {
                        stats.timed_out_pairs += 1;
                    }
                }
                jobs::DetectRow::Quiet(_) => {}
            }
        }

        let mut manifest = outcome.manifest;
        let dlq_entries = manifest.dlq.len();
        let (dlq_replayed, dlq_recovered) = match spec.replay_budget {
            Some(replay_budget) if !outcome.interrupted && dlq_entries > 0 => self.replay_dlq(
                &store,
                &mut manifest,
                replay_budget,
                plan,
                policy,
                stats,
                &mut detections,
            )?,
            _ => (0, 0),
        };
        stats.dlq_replayed = dlq_replayed;
        stats.dlq_recovered = dlq_recovered;
        // Final-disposition DLQ counters: recorded once here — after the
        // shard sweep, outside any per-shard delta capture window — so a
        // resumed run and an uninterrupted run export identical values.
        // Registered only when the queue saw entries, so a clean
        // checkpointed run exports byte-identically to a plain one.
        if dlq_entries > 0 {
            self.metrics.counter("dlq.entries").add(dlq_entries as u64);
            self.metrics
                .counter("dlq.replayed")
                .add(dlq_replayed as u64);
            self.metrics
                .counter("dlq.recovered")
                .add(dlq_recovered as u64);
        }

        Ok((
            detections,
            CheckpointOutcome {
                resumed_shards: outcome.resumed_shards,
                executed_shards: outcome.executed_shards,
                total_shards: manifest.total_shards,
                load_warnings: outcome.load_warnings,
                write_warnings: outcome.write_warnings,
                interrupted: outcome.interrupted,
                dlq_entries,
                dlq_replayed,
                dlq_recovered,
            },
        ))
    }

    /// Replays the manifest's dead-letter queue under `replay_budget`.
    ///
    /// Each entry's payload (the pair's activity summaries) is re-run
    /// through the budgeted detection job; an entry whose pair now
    /// *completes* — any row at all, hit or quiet — is recovered: the
    /// funnel count its failure originally landed in is decremented,
    /// verified hits join `detections`, and the entry leaves the persisted
    /// queue. Entries that still fail (or whose payload no longer decodes)
    /// stay queued for a later pass. Replay faults are deliberately not
    /// absorbed into the window's report: the original failure is already
    /// accounted there, and a failed replay changes nothing.
    #[allow(clippy::too_many_arguments)]
    fn replay_dlq(
        &self,
        store: &CheckpointStore,
        manifest: &mut RunManifest,
        replay_budget: BudgetSpec,
        plan: Option<&FaultPlan>,
        policy: &FaultPolicy,
        stats: &mut FilterStats,
        detections: &mut Vec<(ActivitySummary, DetectionReport)>,
    ) -> std::io::Result<(usize, usize)> {
        let mut replayed = 0usize;
        let mut recovered = 0usize;
        let mut still_failed = Vec::new();
        for entry in std::mem::take(&mut manifest.dlq) {
            let Some(summaries) = checkpoint::decode_summaries(&entry.payload) else {
                still_failed.push(entry);
                continue;
            };
            replayed += 1;
            let (rows, _replay_faults) = jobs::detect_beaconing_budgeted_ft(
                &self.engine,
                summaries,
                &self.detector,
                replay_budget,
                plan,
                policy,
            );
            let mut completed = false;
            for row in rows {
                match row {
                    jobs::DetectRow::Hit(hit) => {
                        completed = true;
                        detections.push(*hit);
                    }
                    jobs::DetectRow::Quiet(_) => completed = true,
                    jobs::DetectRow::TimedOut(_) => {}
                }
            }
            if completed {
                recovered += 1;
                match entry.reason {
                    DlqReason::Poison => {
                        stats.quarantined_pairs = stats.quarantined_pairs.saturating_sub(1);
                    }
                    DlqReason::TimedOut | DlqReason::BudgetExhausted => {
                        stats.timed_out_pairs = stats.timed_out_pairs.saturating_sub(1);
                    }
                }
            } else {
                still_failed.push(entry);
            }
        }
        manifest.dlq = still_failed;
        store.save_manifest(manifest)?;
        Ok((replayed, recovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(records: &mut Vec<LogRecord>, source: &str, domain: &str, period: u64, n: u64) {
        for i in 0..n {
            records.push(LogRecord::new(
                10_000 + i * period,
                source,
                domain,
                format!("{:x}", i * 2654435761 % 0xFFFFFF),
            ));
        }
    }

    fn human(records: &mut Vec<LogRecord>, source: &str, domain: &str, n: u64, seed: u64) {
        let mut t = 10_000u64;
        for i in 0..n {
            t += 1 + (seed * 7919 + i * i * 104_729) % 900;
            records.push(LogRecord::new(t, source, domain, "index"));
        }
    }

    /// Test config with the local whitelist effectively disabled: the test
    /// populations are tiny (a dozen hosts), so the paper's τ_P = 1% would
    /// whitelist every destination.
    fn quiet_config() -> BaywatchConfig {
        BaywatchConfig {
            local_tau: 0.9,
            ..Default::default()
        }
    }

    #[test]
    fn detects_injected_beacon_and_ranks_it_first() {
        let mut records = Vec::new();
        beacon(&mut records, "victim", "qzkxwvbnmtr.com", 60, 120);
        for h in 0..12 {
            human(
                &mut records,
                &format!("host{h}"),
                &format!("site{h}.example.org"),
                40,
                h,
            );
        }
        let mut engine = Baywatch::new(quiet_config());
        let report = engine.analyze(records);
        assert!(report.stats.periodic >= 1);
        assert!(!report.ranked.is_empty());
        assert_eq!(report.ranked[0].case.pair.destination, "qzkxwvbnmtr.com");
        assert!(report.report_cutoff >= 1);
    }

    #[test]
    fn global_whitelist_removes_popular_destinations() {
        let mut records = Vec::new();
        beacon(&mut records, "host", "google.com", 60, 100); // whitelisted
        beacon(&mut records, "host", "qzkxwv.com", 60, 100);
        let mut engine = Baywatch::new(quiet_config());
        let report = engine.analyze(records);
        assert_eq!(report.stats.pairs, 2);
        assert_eq!(report.stats.after_global_whitelist, 1);
        assert!(report
            .ranked
            .iter()
            .all(|c| c.case.pair.destination != "google.com"));
    }

    #[test]
    fn local_whitelist_removes_org_wide_destinations() {
        let mut records = Vec::new();
        // 50 hosts all beacon to the same intranet updater: popularity 1.0.
        for h in 0..50 {
            beacon(
                &mut records,
                &format!("host{h}"),
                "intranet-update.corp",
                300,
                30,
            );
        }
        // One host beacons somewhere rare.
        beacon(&mut records, "victim", "rare-dest.biz", 60, 100);
        // 51 sources total: the updater has popularity 50/51, the rare
        // destination 1/51 ≈ 0.02, so τ_P = 5% separates them.
        let mut engine = Baywatch::new(BaywatchConfig {
            local_tau: 0.05,
            ..Default::default()
        });
        let report = engine.analyze(records);
        assert_eq!(report.stats.after_local_whitelist, 1);
        assert!(report
            .ranked
            .iter()
            .all(|c| c.case.pair.destination == "rare-dest.biz"));
    }

    #[test]
    fn token_filter_drops_update_checkers() {
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(LogRecord::new(
                10_000 + i * 600,
                "host",
                "updates.some-vendor.io",
                "update",
            ));
        }
        beacon(&mut records, "victim", "qzkxwv.net", 60, 100);
        let mut engine = Baywatch::new(quiet_config());
        let report = engine.analyze(records);
        assert!(report.stats.periodic >= 2);
        assert_eq!(report.stats.after_token_filter, 1);
        assert_eq!(report.ranked[0].case.pair.destination, "qzkxwv.net");
    }

    #[test]
    fn novelty_suppresses_repeat_reports_across_windows() {
        let mk = || {
            let mut records = Vec::new();
            beacon(&mut records, "victim", "qzkxwv.org", 60, 100);
            // A second source keeps the destination's popularity at 0.5 so
            // the (test-relaxed) local whitelist does not swallow it.
            human(&mut records, "bystander", "other-site.net", 30, 7);
            records
        };
        let mut engine = Baywatch::new(quiet_config());
        let first = engine.analyze(mk());
        assert_eq!(first.stats.after_novelty, 1);
        let second = engine.analyze(mk());
        assert_eq!(second.stats.after_novelty, 0);
        assert!(second.ranked.is_empty());
    }

    #[test]
    fn irregular_traffic_produces_no_cases() {
        let mut records = Vec::new();
        for h in 0..10 {
            human(
                &mut records,
                &format!("h{h}"),
                &format!("d{h}.example.net"),
                60,
                h + 100,
            );
        }
        let mut engine = Baywatch::new(quiet_config());
        let report = engine.analyze(records);
        assert_eq!(
            report.stats.periodic, 0,
            "irregular traffic must not verify"
        );
        assert!(report.ranked.is_empty());
    }

    #[test]
    fn stats_are_monotone_decreasing() {
        let mut records = Vec::new();
        beacon(&mut records, "v1", "qzkxwv.com", 60, 100);
        beacon(&mut records, "v2", "update-svc.example.com", 1800, 40);
        for h in 0..8 {
            human(&mut records, &format!("h{h}"), "rare-site.org", 50, h);
        }
        let mut engine = Baywatch::new(quiet_config());
        let r = engine.analyze(records);
        let s = r.stats;
        assert!(s.pairs <= s.events);
        assert!(s.after_global_whitelist <= s.pairs);
        assert!(s.after_local_whitelist <= s.after_global_whitelist);
        assert!(s.periodic <= s.after_local_whitelist);
        assert!(s.after_token_filter <= s.periodic);
        assert!(s.after_novelty <= s.after_token_filter);
        assert!(s.reported <= s.after_novelty);
    }

    #[test]
    fn clean_run_reports_no_faults() {
        let mut records = Vec::new();
        beacon(&mut records, "victim", "qzkxwv.com", 60, 100);
        let mut engine = Baywatch::new(quiet_config());
        let report = engine.analyze(records);
        assert!(report.faults.is_clean());
        assert_eq!(report.stats.quarantined_pairs, 0);
        assert_eq!(report.stats.skipped_events, 0);
        assert_eq!(report.stats.malformed_lines, 0);
    }

    #[test]
    fn armed_fault_plan_degrades_instead_of_panicking() {
        use crate::pair::CommunicationPair;
        let mk = || {
            let mut records = Vec::new();
            beacon(&mut records, "victim", "qzkxwv.com", 60, 100);
            beacon(&mut records, "other", "poison.example.net", 45, 50);
            records
        };
        let poison = format!(
            "{:?}",
            CommunicationPair::new("other", "poison.example.net")
        );
        let plan = Arc::new(FaultPlan::new().poison_key(&poison));
        let mut engine = Baywatch::new(quiet_config());
        engine.arm_fault_plan(Arc::clone(&plan));
        let report = engine.analyze(mk());
        assert!(plan.injected_faults() > 0);
        assert!(report.stats.quarantined_pairs >= 1);
        assert!(!report.faults.is_clean());
        assert!(report
            .ranked
            .iter()
            .any(|c| c.case.pair.destination == "qzkxwv.com"));
        assert!(report
            .ranked
            .iter()
            .all(|c| c.case.pair.destination != "poison.example.net"));

        // Disarmed, the same window runs clean again.
        engine.disarm_fault_plan();
        let clean = Baywatch::new(quiet_config()).analyze(mk());
        assert!(clean.faults.is_clean());
    }

    #[test]
    fn analyze_outcome_carries_malformed_tallies() {
        let mut records = Vec::new();
        beacon(&mut records, "victim", "qzkxwv.com", 60, 100);
        // A second source keeps qzkxwv.com's popularity below the local
        // whitelist threshold.
        human(&mut records, "bystander", "other-site.net", 30, 7);
        let mut data = Vec::new();
        crate::io::write_records(&mut data, &records).unwrap();
        data.extend_from_slice(b"garbled nonsense line\n");
        data.extend_from_slice(b"another bad one\n");
        let outcome = crate::io::read_records(data.as_slice()).unwrap();
        let mut engine = Baywatch::new(quiet_config());
        let report = engine.analyze_outcome(outcome);
        assert_eq!(report.stats.malformed_lines, 2);
        assert_eq!(report.malformed_samples.len(), 2);
        assert_eq!(report.stats.events, 130);
        assert!(report
            .ranked
            .iter()
            .any(|c| c.case.pair.destination == "qzkxwv.com"));
    }

    #[test]
    fn zero_window_budget_sheds_every_pair() {
        let mut records = Vec::new();
        beacon(&mut records, "victim", "qzkxwv.com", 60, 100);
        beacon(&mut records, "other", "beacon-two.net", 45, 80);
        let mut engine = Baywatch::new(BaywatchConfig {
            budget: PipelineBudget {
                window_millis: Some(0),
                task_deadline_millis: None,
            },
            ..quiet_config()
        });
        let report = engine.analyze(records);
        assert_eq!(report.stats.shed_pairs, report.stats.after_local_whitelist);
        assert!(report.stats.shed_pairs >= 2);
        assert_eq!(report.stats.periodic, 0);
        assert!(report.ranked.is_empty());
    }

    #[test]
    fn generous_window_budget_matches_unbudgeted_output() {
        let mk = || {
            let mut records = Vec::new();
            beacon(&mut records, "victim", "qzkxwv.com", 60, 100);
            beacon(&mut records, "other", "beacon-two.net", 45, 80);
            for h in 0..6 {
                human(
                    &mut records,
                    &format!("host{h}"),
                    &format!("site{h}.example.org"),
                    40,
                    h,
                );
            }
            records
        };
        let plain = Baywatch::new(quiet_config()).analyze(mk());
        let budgeted = Baywatch::new(BaywatchConfig {
            budget: PipelineBudget {
                window_millis: Some(600_000),
                task_deadline_millis: Some(600_000),
            },
            ..quiet_config()
        })
        .analyze(mk());
        // Nothing shed or timed out, and the wave-ordered detection must
        // produce the identical ranked list (ranking is a total order).
        assert_eq!(budgeted.stats.shed_pairs, 0);
        assert_eq!(budgeted.stats.timed_out_pairs, 0);
        assert_eq!(budgeted.stats, plain.stats);
        assert_eq!(budgeted.ranked.len(), plain.ranked.len());
        for (a, b) in budgeted.ranked.iter().zip(plain.ranked.iter()) {
            assert_eq!(a.case.pair, b.case.pair);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn degraded_budget_halves_armed_limits_only() {
        let tightened = Baywatch::degraded_budget(BudgetSpec {
            max_millis: Some(10),
            max_ops: Some(1),
        });
        assert_eq!(tightened.max_millis, Some(5));
        assert_eq!(tightened.max_ops, Some(1), "never tightened below one");
        // Nothing to tighten on an unlimited budget.
        assert_eq!(
            Baywatch::degraded_budget(BudgetSpec::UNLIMITED),
            BudgetSpec::UNLIMITED
        );
    }

    #[test]
    fn per_pair_budget_times_out_pathological_pair_only() {
        let mut records = Vec::new();
        beacon(&mut records, "victim", "qzkxwv.com", 60, 120);
        human(&mut records, "bystander", "other-site.net", 30, 7);
        // A sparse strided series: ~700k bins at scale 1, so the ops
        // budget trips at the first kernel checkpoint while the normal
        // beacon (≈7k bins) finishes far under the same ceiling.
        for i in 0..300u64 {
            records.push(LogRecord::new(
                50_000 + i * 2_333,
                "victim",
                "pathological-dest.biz",
                "x",
            ));
        }
        let mut config = quiet_config();
        config.detector.budget.max_ops = Some(500_000);
        let mut engine = Baywatch::new(config);
        let report = engine.analyze(records);
        assert_eq!(report.stats.timed_out_pairs, 1);
        assert_eq!(report.stats.shed_pairs, 0);
        assert!(report
            .ranked
            .iter()
            .any(|c| c.case.pair.destination == "qzkxwv.com"));
        assert!(report
            .ranked
            .iter()
            .all(|c| c.case.pair.destination != "pathological-dest.biz"));
    }

    #[test]
    fn reported_slice_matches_cutoff() {
        let mut records = Vec::new();
        for i in 0..6 {
            beacon(
                &mut records,
                &format!("v{i}"),
                &format!("qz{i}kxwv.com"),
                60 + i * 30,
                80,
            );
        }
        let mut engine = Baywatch::new(quiet_config());
        let report = engine.analyze(records);
        assert_eq!(report.reported().len(), report.report_cutoff);
        assert!(report.report_cutoff <= report.ranked.len());
    }

    #[test]
    fn duplicate_pair_summaries_time_out_once_in_funnel() {
        // Regression: a pair reaching detection through several summaries
        // used to be counted once per summary in `timed_out_pairs`,
        // inflating the funnel banner.
        let mut config = quiet_config();
        config.detector.budget.max_ops = Some(500_000);
        let engine = Baywatch::new(config);
        let window = |offset: u64| -> Vec<LogRecord> {
            (0..300u64)
                .map(|i| LogRecord::new(offset + i * 2_333, "slowpoke", "weird.biz", "x"))
                .collect()
        };
        let summaries = vec![
            ActivitySummary::from_records(&window(50_000), 1).unwrap(),
            ActivitySummary::from_records(&window(5_000_000), 1).unwrap(),
        ];
        let mut stats = FilterStats::default();
        let mut faults = FaultReport::default();
        let detections = engine.detect_with_budget(
            summaries,
            None,
            &FaultPolicy::default(),
            &mut stats,
            &mut faults,
        );
        assert!(detections.is_empty());
        assert_eq!(
            stats.timed_out_pairs, 1,
            "one pair must be counted once, not per summary"
        );
        assert_eq!(stats.shed_pairs, 0);
    }

    #[test]
    fn analyze_populates_stage_metrics() {
        use baywatch_obs::ManualClock;

        let mut records = Vec::new();
        beacon(&mut records, "victim", "qzkxwvbnmtr.com", 60, 120);
        for h in 0..6 {
            human(
                &mut records,
                &format!("host{h}"),
                &format!("site{h}.example.org"),
                40,
                h,
            );
        }
        let mut engine = Baywatch::with_clock(quiet_config(), Arc::new(ManualClock::new()));
        let report = engine.analyze(records);

        let snap = engine.metrics_snapshot();
        assert_eq!(
            snap.counters["pipeline.events"] as usize,
            report.stats.events
        );
        assert_eq!(snap.counters["pipeline.pairs"] as usize, report.stats.pairs);
        assert_eq!(
            snap.counters["stage.04_periodicity.admitted"] as usize,
            report.stats.periodic
        );
        assert_eq!(
            snap.counters["stage.07_lm_rank.admitted"] as usize,
            report.stats.reported
        );
        assert!(snap.counters["detector.pairs_analyzed"] >= 1);
        assert!(snap.counters["mapreduce.jobs"] >= 2);

        // Spans were drained into `span.*` timing histograms, which the
        // deterministic export must not contain.
        assert!(snap.timings.keys().any(|k| k == "span.analyze"));
        assert!(snap.timings.keys().any(|k| k == "span.analyze.detect"));
        let golden = snap.to_json();
        assert!(!golden.contains("span."));
        assert!(!golden.contains("timings"));
        assert!(golden.contains("stage.02_global_whitelist.admitted"));
    }
}
