//! Benign traffic models: human browsing and legitimate periodic services.
//!
//! Challenge 4 of the paper: "many legitimate applications exhibit network
//! behaviors that resemble beaconing, such as regular update checks,
//! license checks, and e-mail or news polling". The simulator reproduces
//! both the irregular human bulk (removed by whitelists and periodicity
//! tests) and the periodic lookalikes (which must be separated by the
//! suspicion filters rather than the detector).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::rngutil::{gaussian, pareto, poisson};

/// A human browsing model: sessions arrive as a Poisson process across the
/// active hours of a day; requests within a session have heavy-tailed
/// (Pareto) think times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrowsingModel {
    /// Expected number of sessions per active day.
    pub sessions_per_day: f64,
    /// Expected requests per session.
    pub requests_per_session: f64,
    /// Minimum think time between in-session requests (seconds).
    pub min_gap: f64,
    /// Pareto shape of think times (lower = heavier tail).
    pub pareto_alpha: f64,
}

impl Default for BrowsingModel {
    fn default() -> Self {
        Self {
            sessions_per_day: 8.0,
            requests_per_session: 12.0,
            min_gap: 1.0,
            pareto_alpha: 1.3,
        }
    }
}

impl BrowsingModel {
    /// Generates the request timestamps of one host for a day starting at
    /// `day_start`, restricted to `[active_start, active_end)` seconds
    /// within the day (working hours).
    pub fn day_schedule(
        &self,
        day_start: u64,
        active_start: u64,
        active_end: u64,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        assert!(active_end > active_start && active_end <= 86_400);
        let n_sessions = poisson(rng, self.sessions_per_day);
        let mut out = Vec::new();
        for _ in 0..n_sessions {
            let session_start = day_start + rng.random_range(active_start..active_end);
            let n_req = poisson(rng, self.requests_per_session).max(1);
            let mut t = session_start as f64;
            for _ in 0..n_req {
                out.push(t.round() as u64);
                t += pareto(rng, self.min_gap, self.pareto_alpha).min(600.0);
            }
        }
        out.sort_unstable();
        out
    }
}

/// A legitimate periodic service a host may run: update checkers, AV
/// signature polls, mail/news polling, streaming-playlist refreshes.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicService {
    /// Destination contacted by the service.
    pub domain: String,
    /// Poll period in seconds.
    pub period: f64,
    /// Jitter standard deviation (seconds).
    pub jitter: f64,
    /// URL path token the service requests (token-filter material, e.g.
    /// "update" or "feed").
    pub url_token: String,
    /// Whether the service runs around the clock (true) or only during
    /// active hours (false).
    pub always_on: bool,
}

impl PeriodicService {
    /// The built-in catalog of common enterprise periodic services. Every
    /// host subscribes to a subset; the high-popularity entries end up on
    /// the local whitelist, exactly as the paper intends.
    pub fn catalog() -> Vec<PeriodicService> {
        vec![
            PeriodicService {
                domain: "update.os-vendor.com".into(),
                period: 3600.0,
                jitter: 60.0,
                url_token: "update".into(),
                always_on: true,
            },
            PeriodicService {
                domain: "sig.av-vendor.com".into(),
                period: 1800.0,
                jitter: 30.0,
                url_token: "signature".into(),
                always_on: true,
            },
            PeriodicService {
                domain: "mail.corp-webmail.com".into(),
                period: 300.0,
                jitter: 10.0,
                url_token: "poll".into(),
                always_on: false,
            },
            PeriodicService {
                domain: "feeds.news-portal.com".into(),
                period: 600.0,
                jitter: 20.0,
                url_token: "feed".into(),
                always_on: false,
            },
            PeriodicService {
                domain: "lic.license-server.net".into(),
                period: 7200.0,
                jitter: 120.0,
                url_token: "license".into(),
                always_on: true,
            },
            // Niche periodic destinations with few subscribers — these are
            // the paper's confirmed false positives (sports/music streaming
            // sites refreshing content, e.g. 2015.ausopen.com,
            // kdfc.web-playlist.org).
            PeriodicService {
                domain: "live.sports-scores.org".into(),
                period: 120.0,
                jitter: 5.0,
                url_token: "scores".into(),
                always_on: false,
            },
            PeriodicService {
                domain: "kdfc.web-playlist.org".into(),
                period: 180.0,
                jitter: 8.0,
                url_token: "playlist".into(),
                always_on: false,
            },
        ]
    }

    /// Generates the service's request timestamps for a day.
    pub fn day_schedule(
        &self,
        day_start: u64,
        active_start: u64,
        active_end: u64,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        let (lo, hi) = if self.always_on {
            (0u64, 86_400u64)
        } else {
            (active_start, active_end)
        };
        let mut t = (day_start + lo) as f64 + rng.random_range(0.0..self.period);
        let end = (day_start + hi) as f64;
        let mut out = Vec::new();
        while t < end {
            out.push(t.round() as u64);
            let j = if self.jitter > 0.0 {
                gaussian(rng, 0.0, self.jitter)
            } else {
                0.0
            };
            t += (self.period + j).max(1.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn browsing_respects_active_hours() {
        let model = BrowsingModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let day = 86_400 * 10;
        let ts = model.day_schedule(day, 8 * 3600, 18 * 3600, &mut rng);
        for &t in &ts {
            // Sessions start inside the window; think-time tails may spill
            // slightly past the end.
            assert!(t >= day + 8 * 3600, "t = {t}");
            assert!(t < day + 19 * 3600, "t = {t}");
        }
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn browsing_volume_plausible() {
        let model = BrowsingModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut total = 0usize;
        for d in 0..50 {
            total += model
                .day_schedule(d * 86_400, 8 * 3600, 18 * 3600, &mut rng)
                .len();
        }
        let per_day = total as f64 / 50.0;
        // ~8 sessions × ~12 requests ≈ 96.
        assert!(per_day > 50.0 && per_day < 160.0, "per_day = {per_day}");
    }

    #[test]
    fn browsing_is_not_strongly_periodic() {
        // CV of the inter-arrival list should be large.
        let model = BrowsingModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let ts = model.day_schedule(0, 8 * 3600, 18 * 3600, &mut rng);
        let iv: Vec<f64> = ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        if iv.len() > 10 {
            let mean = iv.iter().sum::<f64>() / iv.len() as f64;
            let sd = (iv.iter().map(|i| (i - mean).powi(2)).sum::<f64>() / iv.len() as f64).sqrt();
            assert!(sd / mean > 0.8, "cv = {}", sd / mean);
        }
    }

    #[test]
    fn service_period_respected() {
        let svc = PeriodicService {
            domain: "x.com".into(),
            period: 600.0,
            jitter: 0.0,
            url_token: "t".into(),
            always_on: true,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let ts = svc.day_schedule(0, 0, 86_400, &mut rng);
        assert!(ts.len() >= 143 && ts.len() <= 145, "{} polls", ts.len());
        for w in ts.windows(2) {
            assert_eq!(w[1] - w[0], 600);
        }
    }

    #[test]
    fn office_hours_service_stays_in_window() {
        let svc = PeriodicService {
            domain: "y.com".into(),
            period: 300.0,
            jitter: 5.0,
            url_token: "poll".into(),
            always_on: false,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let ts = svc.day_schedule(0, 9 * 3600, 17 * 3600, &mut rng);
        assert!(!ts.is_empty());
        assert!(ts.iter().all(|&t| (9 * 3600..17 * 3600 + 400).contains(&t)));
    }

    #[test]
    fn catalog_has_high_and_low_popularity_entries() {
        let cat = PeriodicService::catalog();
        assert!(cat.len() >= 6);
        assert!(cat.iter().any(|s| s.always_on));
        assert!(cat.iter().any(|s| !s.always_on));
        assert!(cat.iter().any(|s| s.domain.contains("web-playlist")));
    }
}
