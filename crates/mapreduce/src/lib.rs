//! An in-process, multi-threaded MapReduce engine.
//!
//! BAYWATCH's implementation (§VII of the paper) is structured as five
//! modular MapReduce jobs — data extraction, rescaling/merging, destination
//! popularity, beaconing detection, ranking — each keyed by a hash of the
//! source/destination pair `H(s, d)` so partition counts (and thus reducer
//! fan-out) stay controllable. This crate reproduces that programming model
//! at laptop scale: mappers run in parallel over input chunks, emit keyed
//! records into hash partitions, and reducers run in parallel over
//! partitions with keys grouped and sorted.
//!
//! The engine is deliberately synchronous and in-memory — the paper's
//! contribution is the *decomposition into modular jobs*, not HDFS — but it
//! preserves the semantics that matter: deterministic partitioning by key
//! hash, grouped-and-sorted reduce input, and optional map-side combining.
//!
//! ```
//! use baywatch_mapreduce::{JobConfig, MapReduce};
//!
//! // Classic word count.
//! let docs = vec!["to be or not to be", "be fast"];
//! let engine = MapReduce::new(JobConfig::default());
//! let counts = engine.run(
//!     docs,
//!     |doc, emit| {
//!         for w in doc.split_whitespace() {
//!             emit(w.to_owned(), 1usize);
//!         }
//!     },
//!     |word, ones| vec![(word.clone(), ones.len())],
//! );
//! let be = counts.iter().find(|(w, _)| w == "be").unwrap();
//! assert_eq!(be.1, 3);
//! ```
//!
//! For inputs where a pathological record or key may panic a task, the
//! fault-tolerant entry point [`MapReduce::run_fault_tolerant`] completes
//! the run in degraded mode (retry → bisect → quarantine) and reports what
//! it had to drop — see the [`fault`] module.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod fault;
pub mod manifest;

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use baywatch_obs::{Clock, MetricsRegistry, MonotonicClock};
use baywatch_resilience::{BreakerConfig, CircuitBreaker, RetryPolicy};
use fault::PhaseFaults;

pub use fault::{FaultPlan, FaultPolicy, FaultReport};
pub use manifest::{
    fnv1a64, shard_plan_digest, BudgetSnapshot, CheckpointStore, CheckpointedRun, DlqEntry,
    DlqReason, ManifestLoad, RunManifest, ShardCheckpoint, ShardRecord, ShardedOutcome,
};

/// Configuration of a MapReduce run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Number of hash partitions (= reduce tasks). The paper uses a k-bit
    /// hash, e.g. 5 bits → 32 reduce tasks; [`JobConfig::with_hash_bits`]
    /// mirrors that.
    pub partitions: usize,
    /// Number of worker threads for both the map and reduce phases.
    /// Defaults to the available parallelism.
    pub threads: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            partitions: 32,
            threads,
        }
    }
}

impl JobConfig {
    /// Sets the partition count from a hash bit-width, like the paper's
    /// "a 5-bit hash results in 32 reduce tasks".
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn with_hash_bits(mut self, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "hash bits must be in 1..=16");
        self.partitions = 1usize << bits;
        self
    }
}

/// Counters accumulated during a run (observability, in the spirit of
/// Hadoop's job counters).
#[derive(Debug, Default)]
pub struct JobStats {
    map_output_records: AtomicUsize,
    reduce_groups: AtomicUsize,
    output_records: AtomicUsize,
}

impl JobStats {
    /// Records emitted by all mappers.
    pub fn map_output_records(&self) -> usize {
        self.map_output_records.load(Ordering::Relaxed)
    }
    /// Distinct keys seen by reducers.
    pub fn reduce_groups(&self) -> usize {
        self.reduce_groups.load(Ordering::Relaxed)
    }
    /// Records produced by all reducers.
    pub fn output_records(&self) -> usize {
        self.output_records.load(Ordering::Relaxed)
    }
}

/// The MapReduce engine.
#[derive(Debug, Clone)]
pub struct MapReduce {
    config: JobConfig,
    metrics: Option<Arc<MetricsRegistry>>,
    retry: RetryPolicy,
    checkpoint_breaker: Option<(BreakerConfig, Arc<dyn Clock>)>,
}

impl MapReduce {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` or `threads` is zero.
    pub fn new(config: JobConfig) -> Self {
        assert!(config.partitions > 0, "partitions must be positive");
        assert!(config.threads > 0, "threads must be positive");
        Self {
            config,
            metrics: None,
            retry: RetryPolicy::default(),
            checkpoint_breaker: None,
        }
    }

    /// Attaches a metrics registry; fault-tolerant runs record job and
    /// fault counters (`mapreduce.*`) into it. All recorded values are
    /// order-independent sums, so they stay deterministic under threading.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Arms exponential backoff between the retry attempts of a failing
    /// task. Attempt *counts* still come from
    /// [`FaultPolicy::max_task_retries`]; the policy only governs how long
    /// a worker waits before re-running a failed slice or key. The default
    /// [`RetryPolicy`] is disarmed (zero base delay), which preserves the
    /// historical retry-immediately behaviour.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Wraps checkpoint-store writes in a circuit breaker during
    /// [`MapReduce::run_sharded_checkpointed`]: once the breaker opens, a
    /// run with a failing checkpoint directory degrades to in-memory
    /// execution (writes skipped, warnings counted) instead of paying the
    /// failure latency on every shard. Without this builder a default
    /// breaker on the audited monotonic clock is used.
    #[must_use]
    pub fn with_checkpoint_breaker(mut self, config: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        self.checkpoint_breaker = Some((config, clock));
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> JobConfig {
        self.config
    }

    /// Runs a job: `mapper(input, emit)` produces keyed records,
    /// `reducer(key, values)` consumes each group. Output is ordered by
    /// partition index, then by key within the partition — fully
    /// deterministic for a fixed configuration.
    pub fn run<I, K, V, O, M, R>(&self, inputs: Vec<I>, mapper: M, reducer: R) -> Vec<O>
    where
        I: Send,
        K: Hash + Eq + Ord + Send,
        V: Send,
        O: Send,
        M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
    {
        self.run_with_stats(inputs, mapper, reducer).0
    }

    /// Like [`MapReduce::run`], also returning job counters.
    pub fn run_with_stats<I, K, V, O, M, R>(
        &self,
        inputs: Vec<I>,
        mapper: M,
        reducer: R,
    ) -> (Vec<O>, JobStats)
    where
        I: Send,
        K: Hash + Eq + Ord + Send,
        V: Send,
        O: Send,
        M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
    {
        let stats = JobStats::default();
        let n_partitions = self.config.partitions;
        let n_threads = self.config.threads.max(1);

        // ---- Map phase ----
        // Each worker owns a vector of per-partition buckets; no locking on
        // the hot path.
        let chunks = split_into(inputs, n_threads);
        let mut all_buckets: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(chunks.len());

        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in chunks {
                let mapper = &mapper;
                let stats = &stats;
                handles.push(scope.spawn(move |_| {
                    let mut buckets: Vec<Vec<(K, V)>> =
                        (0..n_partitions).map(|_| Vec::new()).collect();
                    let mut emitted = 0usize;
                    for input in chunk {
                        let mut emit = |k: K, v: V| {
                            emitted += 1;
                            let p = partition_of(&k, n_partitions);
                            buckets[p].push((k, v));
                        };
                        mapper(input, &mut emit);
                    }
                    stats
                        .map_output_records
                        .fetch_add(emitted, Ordering::Relaxed);
                    buckets
                }));
            }
            for h in handles {
                all_buckets.push(h.join().expect("map worker panicked"));
            }
        })
        .expect("map scope panicked");

        // ---- Shuffle: merge per-worker buckets per partition. ----
        let mut partitions: Vec<Vec<(K, V)>> = (0..n_partitions).map(|_| Vec::new()).collect();
        for worker_buckets in all_buckets {
            for (p, bucket) in worker_buckets.into_iter().enumerate() {
                partitions[p].extend(bucket);
            }
        }

        // ---- Reduce phase: partitions processed in parallel. ----
        let mut results: Vec<(usize, Vec<O>)> = Vec::with_capacity(n_partitions);
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (p, records) in partitions.into_iter().enumerate() {
                let reducer = &reducer;
                let stats = &stats;
                handles.push(scope.spawn(move |_| {
                    // Group by key, then sort keys for deterministic output.
                    let mut groups: HashMap<K, Vec<V>> = HashMap::new();
                    for (k, v) in records {
                        groups.entry(k).or_default().push(v);
                    }
                    let mut keyed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
                    keyed.sort_by(|a, b| a.0.cmp(&b.0));
                    stats
                        .reduce_groups
                        .fetch_add(keyed.len(), Ordering::Relaxed);
                    let mut out = Vec::new();
                    for (k, vs) in keyed {
                        out.extend(reducer(&k, vs));
                    }
                    stats.output_records.fetch_add(out.len(), Ordering::Relaxed);
                    (p, out)
                }));
            }
            for h in handles {
                results.push(h.join().expect("reduce worker panicked"));
            }
        })
        .expect("reduce scope panicked");

        results.sort_by_key(|(p, _)| *p);
        let output = results.into_iter().flat_map(|(_, o)| o).collect();
        (output, stats)
    }

    /// Runs a job with a map-side *combiner*: values for the same key are
    /// pre-aggregated inside each map worker before the shuffle, cutting
    /// shuffle volume for associative reductions — the same overhead
    /// concern the paper addresses by bounding REDUCE task counts.
    pub fn run_with_combiner<I, K, V, O, M, C, R>(
        &self,
        inputs: Vec<I>,
        mapper: M,
        combiner: C,
        reducer: R,
    ) -> Vec<O>
    where
        I: Send,
        K: Hash + Eq + Ord + Clone + Send,
        V: Send,
        O: Send,
        M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
        C: Fn(V, V) -> V + Sync,
        R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
    {
        // Phase A: map + local combine inside each worker.
        let n_threads = self.config.threads.max(1);
        let chunks = split_into(inputs, n_threads);
        let mut pre_combined: Vec<(K, V)> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in chunks {
                let mapper = &mapper;
                let combiner = &combiner;
                handles.push(scope.spawn(move |_| {
                    let mut local: HashMap<K, V> = HashMap::new();
                    for input in chunk {
                        let mut emit = |k: K, v: V| {
                            if let Some(existing) = local.remove(&k) {
                                local.insert(k, combiner(existing, v));
                            } else {
                                local.insert(k, v);
                            }
                        };
                        mapper(input, &mut emit);
                    }
                    local.into_iter().collect::<Vec<(K, V)>>()
                }));
            }
            for h in handles {
                pre_combined.extend(h.join().expect("combine worker panicked"));
            }
        })
        .expect("combine scope panicked");

        // Phase B: shuffle + reduce over the pre-combined records, folding
        // the per-worker partials with the combiner first.
        self.run(
            pre_combined,
            |(k, v), emit| emit(k, v),
            |k, vs| {
                let mut it = vs.into_iter();
                // The shuffle never emits an empty group; if one ever
                // appears, hand the reducer the empty group rather than
                // panicking mid-job.
                let Some(first) = it.next() else {
                    return reducer(k, Vec::new());
                };
                let folded = it.fold(first, &combiner);
                reducer(k, vec![folded])
            },
        )
    }

    /// Runs a job that survives panicking mappers and reducers, with the
    /// default [`FaultPolicy`].
    ///
    /// Semantics match [`MapReduce::run`] — same partitioning, same
    /// grouped-and-sorted reduce input, same deterministic output order —
    /// except that every map slice and reduce key executes under
    /// `catch_unwind` with a bounded retry budget. A map slice that keeps
    /// failing is bisected down to the single poison record; a reduce key
    /// that keeps failing is quarantined together with its values. The run
    /// always completes; the returned [`FaultReport`] says what was
    /// retried, what was dropped, and how long each phase took. A run with
    /// no faults produces output identical to [`MapReduce::run`].
    ///
    /// Signature differences from [`MapReduce::run`], forced by retries:
    /// the mapper borrows its input (`&I`) and the reducer borrows the
    /// value group (`&[V]`), because a failed attempt must leave the data
    /// available for the next one; `I` and `K` must be `Debug` so
    /// quarantined units can be sampled into the report. Mappers and
    /// reducers may therefore run more than once for the same unit — they
    /// must be idempotent with respect to external side effects.
    pub fn run_fault_tolerant<I, K, V, O, M, R>(
        &self,
        inputs: Vec<I>,
        mapper: M,
        reducer: R,
    ) -> (Vec<O>, FaultReport)
    where
        I: Send + Debug,
        K: Hash + Eq + Ord + Send + Debug,
        V: Send,
        O: Send,
        M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, &[V]) -> Vec<O> + Sync,
    {
        self.run_fault_tolerant_with_policy(inputs, mapper, reducer, &FaultPolicy::default())
    }

    /// Like [`MapReduce::run_fault_tolerant`] with an explicit retry /
    /// quarantine policy.
    pub fn run_fault_tolerant_with_policy<I, K, V, O, M, R>(
        &self,
        inputs: Vec<I>,
        mapper: M,
        reducer: R,
        policy: &FaultPolicy,
    ) -> (Vec<O>, FaultReport)
    where
        I: Send + Debug,
        K: Hash + Eq + Ord + Send + Debug,
        V: Send,
        O: Send,
        M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, &[V]) -> Vec<O> + Sync,
    {
        let mut report = FaultReport::default();
        let n_partitions = self.config.partitions;
        let n_threads = self.config.threads.max(1);
        let retry = self.retry;

        // ---- Map phase: per-worker chunks, each slice resilient. ----
        let map_started = Instant::now();
        let chunks = split_into(inputs, n_threads);
        let mut all_buckets: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(chunks.len());
        let mut map_faults = PhaseFaults::default();

        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (chunk_idx, chunk) in chunks.into_iter().enumerate() {
                let mapper = &mapper;
                let retry = &retry;
                handles.push(scope.spawn(move |_| {
                    let mut buckets: Vec<Vec<(K, V)>> =
                        (0..n_partitions).map(|_| Vec::new()).collect();
                    let mut faults = PhaseFaults::default();
                    map_slice(
                        &chunk,
                        mapper,
                        policy,
                        retry,
                        chunk_idx as u64,
                        n_partitions,
                        &mut buckets,
                        &mut faults,
                    );
                    (buckets, faults)
                }));
            }
            for h in handles {
                let (buckets, faults) = h.join().expect("map worker panicked");
                all_buckets.push(buckets);
                map_faults.merge(faults);
            }
        })
        .expect("map scope panicked");
        let map_backoff = (map_faults.backoff_waits, map_faults.backoff_nanos);
        report.map_retries = map_faults.retries;
        report.map_bisections = map_faults.bisections;
        report.quarantined_inputs = map_faults.quarantined;
        report.timed_out_inputs = map_faults.timed_out;
        report.input_samples = map_faults.unit_samples;
        report.timeout_samples = map_faults.timeout_samples;
        report.panic_samples = map_faults.panic_samples;
        report.map_elapsed = map_started.elapsed();

        // ---- Shuffle: merge per-worker buckets per partition. ----
        let shuffle_started = Instant::now();
        let mut partitions: Vec<Vec<(K, V)>> = (0..n_partitions).map(|_| Vec::new()).collect();
        for worker_buckets in all_buckets {
            for (p, bucket) in worker_buckets.into_iter().enumerate() {
                partitions[p].extend(bucket);
            }
        }
        report.shuffle_elapsed = shuffle_started.elapsed();

        // ---- Reduce phase: partitions in parallel, keys resilient. ----
        let reduce_started = Instant::now();
        let mut results: Vec<(usize, Vec<O>)> = Vec::with_capacity(n_partitions);
        let mut reduce_faults = PhaseFaults::default();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (p, records) in partitions.into_iter().enumerate() {
                let reducer = &reducer;
                let retry = &retry;
                handles.push(scope.spawn(move |_| {
                    // Reduce streams sit above every possible map-chunk
                    // stream so the two phases draw independent jitter.
                    let stream = (1u64 << 32) | p as u64;
                    let (out, faults) = reduce_partition(records, reducer, policy, retry, stream);
                    (p, out, faults)
                }));
            }
            for h in handles {
                let (p, out, faults) = h.join().expect("reduce worker panicked");
                results.push((p, out));
                reduce_faults.merge(faults);
            }
        })
        .expect("reduce scope panicked");
        let backoff_waits = map_backoff.0 + reduce_faults.backoff_waits;
        let backoff_nanos = map_backoff.1.saturating_add(reduce_faults.backoff_nanos);
        report.reduce_retries = reduce_faults.retries;
        report.quarantined_keys = reduce_faults.quarantined;
        report.timed_out_keys = reduce_faults.timed_out;
        report.lost_values = reduce_faults.lost_values;
        report.key_samples = reduce_faults.unit_samples;
        for unit in reduce_faults.timeout_samples {
            if report.timeout_samples.len() >= policy.sample_limit * 2 {
                break;
            }
            report.timeout_samples.push(unit);
        }
        for msg in reduce_faults.panic_samples {
            if report.panic_samples.len() >= policy.sample_limit * 2 {
                break;
            }
            if !report.panic_samples.contains(&msg) {
                report.panic_samples.push(msg);
            }
        }
        report.reduce_elapsed = reduce_started.elapsed();

        if let Some(metrics) = &self.metrics {
            record_fault_metrics(metrics, &report);
            // Gated like the checkpoint counters: a run that never waited
            // leaves the registry byte-identical to the pre-backoff era.
            if backoff_waits > 0 {
                metrics
                    .counter("resilience.retry.waits")
                    .add(backoff_waits as u64);
                metrics
                    .counter("resilience.retry.backoff_nanos")
                    .add(backoff_nanos);
            }
        }

        results.sort_by_key(|(p, _)| *p);
        let output = results.into_iter().flat_map(|(_, o)| o).collect();
        (output, report)
    }

    /// Runs a shard plan under durable checkpoint/resume.
    ///
    /// Each shard executes through
    /// [`MapReduce::run_fault_tolerant_with_policy`]; after every shard
    /// the outputs (via `encode`), the shard's [`FaultReport`], and the
    /// deterministic metrics delta it contributed are persisted
    /// atomically, and the [`RunManifest`] — completed shard digests plus
    /// the dead-letter queue assembled by `dlq_hook` — is rewritten. On
    /// `run.resume`, shards already recorded in a trusted manifest are
    /// restored (payload digest-checked, metrics delta replayed into the
    /// attached registry, faults absorbed in shard order) instead of
    /// re-executed, which makes a resumed run's aggregate output
    /// byte-identical to an uninterrupted one.
    ///
    /// Shards execute *sequentially* (parallelism lives inside each
    /// shard's map/reduce phases) — that is what makes the per-shard
    /// metrics delta exact and the checkpoint boundary well-defined.
    ///
    /// `dlq_hook(shard_id, inputs, outputs, faults)` inspects a freshly
    /// completed shard and returns the replayable dead-letter entries it
    /// produced; `decode` must invert `encode` (`None` signals a corrupt
    /// payload, re-executing the shard).
    ///
    /// Checkpoint persistence degrades instead of aborting: every write
    /// goes through a circuit breaker (see
    /// [`MapReduce::with_checkpoint_breaker`]), a failed or skipped write
    /// counts into [`ShardedOutcome::write_warnings`], and the run carries
    /// on in-memory with full output fidelity — only resumability for the
    /// affected shards is lost.
    ///
    /// # Errors
    ///
    /// Reserved for I/O failures outside the degradable write path; the
    /// current implementation completes with warnings instead of
    /// returning `Err`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_checkpointed<I, K, V, O, M, R, Enc, Dec, DlqF>(
        &self,
        shards: Vec<Vec<I>>,
        run: &CheckpointedRun<'_>,
        policy: &FaultPolicy,
        mapper: M,
        reducer: R,
        encode: Enc,
        decode: Dec,
        dlq_hook: DlqF,
    ) -> std::io::Result<ShardedOutcome<O>>
    where
        I: Send + Debug + Clone,
        K: Hash + Eq + Ord + Send + Debug,
        V: Send,
        O: Send,
        M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, &[V]) -> Vec<O> + Sync,
        Enc: Fn(&[O]) -> String,
        Dec: Fn(&str) -> Option<Vec<O>>,
        DlqF: Fn(usize, &[I], &[O], &FaultReport) -> Vec<DlqEntry>,
    {
        let total_shards = shards.len();
        let mut load_warnings = 0usize;
        let mut write_warnings = 0usize;
        let mut breaker = match &self.checkpoint_breaker {
            Some((config, clock)) => CircuitBreaker::new(*config, Arc::clone(clock)),
            None => CircuitBreaker::new(
                BreakerConfig::default(),
                Arc::new(MonotonicClock::new()) as Arc<dyn Clock>,
            ),
        };
        let mut faults = FaultReport::default();
        let mut manifest = if run.resume {
            match run.store.load_manifest(run.fingerprint, total_shards) {
                ManifestLoad::Resumed(m) => m,
                ManifestLoad::Fresh { warning } => {
                    if let Some(warning) = warning {
                        load_warnings += 1;
                        faults.note_checkpoint_corruption(warning, policy.sample_limit);
                    }
                    RunManifest::new(
                        run.fingerprint,
                        total_shards,
                        run.rng_seed,
                        *policy,
                        run.budget,
                    )
                }
            }
        } else {
            RunManifest::new(
                run.fingerprint,
                total_shards,
                run.rng_seed,
                *policy,
                run.budget,
            )
        };

        let mut outcome_outputs: Vec<O> = Vec::new();
        let mut resumed_shards = 0usize;
        let mut executed_shards = 0usize;
        let mut interrupted = false;

        for (shard_id, inputs) in shards.into_iter().enumerate() {
            // ---- Resume path: restore the shard from its checkpoint. ----
            if let Some(record) = manifest.shards.get(&shard_id).copied() {
                match self.restore_shard(run, shard_id, record, &decode) {
                    Some((outputs, shard_faults)) => {
                        faults.absorb(&shard_faults);
                        outcome_outputs.extend(outputs);
                        resumed_shards += 1;
                        continue;
                    }
                    None => {
                        // Missing/corrupt/digest-mismatched checkpoint:
                        // drop the stale record (and its DLQ entries) and
                        // fall through to fresh execution.
                        load_warnings += 1;
                        faults.note_checkpoint_corruption(
                            format!("shard {shard_id}: checkpoint untrusted, re-executing"),
                            policy.sample_limit,
                        );
                        manifest.shards.remove(&shard_id);
                        manifest.dlq.retain(|e| e.shard != shard_id);
                    }
                }
            }

            // ---- Fresh path: execute, then persist atomically. ----
            if run.abort_after_shards == Some(executed_shards) {
                interrupted = true;
                break;
            }
            let before = self.metrics.as_ref().map(|m| m.snapshot());
            let (outputs, shard_faults) =
                self.run_fault_tolerant_with_policy(inputs.clone(), &mapper, &reducer, policy);
            let metrics_delta = match (&self.metrics, before) {
                (Some(m), Some(before)) => m.snapshot().delta_since(&before),
                _ => baywatch_obs::MetricsSnapshot::default(),
            };
            let payload = encode(&outputs);
            manifest
                .dlq
                .extend(dlq_hook(shard_id, &inputs, &outputs, &shard_faults));
            let shard_saved = guarded_checkpoint_write(&mut breaker, run.io_faults, || {
                run.store.save_shard(
                    shard_id,
                    &ShardCheckpoint {
                        payload: payload.clone(),
                        faults: shard_faults.clone(),
                        metrics_delta,
                    },
                )
            });
            if shard_saved {
                // Only a persisted payload earns a manifest record: a
                // shard whose write failed must re-execute on resume.
                manifest.shards.insert(
                    shard_id,
                    ShardRecord {
                        digest: fnv1a64(payload.as_bytes()),
                        outputs: outputs.len(),
                    },
                );
                if let Some(metrics) = &self.metrics {
                    metrics.operational("checkpoint.shards_written").inc();
                }
                if guarded_checkpoint_write(&mut breaker, run.io_faults, || {
                    run.store.save_manifest(&manifest)
                }) {
                    if let Some(metrics) = &self.metrics {
                        metrics.operational("checkpoint.manifest_writes").inc();
                    }
                } else {
                    write_warnings += 1;
                }
            } else {
                write_warnings += 1;
            }
            executed_shards += 1;
            faults.absorb(&shard_faults);
            outcome_outputs.extend(outputs);
        }

        if let Some(metrics) = &self.metrics {
            metrics
                .operational("checkpoint.shards_resumed")
                .add(resumed_shards as u64);
            metrics
                .operational("checkpoint.load_warnings")
                .add(load_warnings as u64);
            metrics
                .operational("checkpoint.write_warnings")
                .add(write_warnings as u64);
            // The checkpoint breaker runs on a wall clock, so its stats go
            // to the operational (non-golden) side, gated on activity.
            let s = breaker.stats();
            for (name, value) in [
                ("checkpoint.breaker_failures", s.failures),
                ("checkpoint.breaker_rejected", s.rejected),
                ("checkpoint.breaker_opened", s.opened),
                ("checkpoint.breaker_half_opened", s.half_opened),
                ("checkpoint.breaker_closed", s.closed),
            ] {
                if value > 0 {
                    metrics.operational(name).add(value);
                }
            }
        }

        Ok(ShardedOutcome {
            outputs: outcome_outputs,
            faults,
            manifest,
            resumed_shards,
            executed_shards,
            load_warnings,
            write_warnings,
            interrupted,
        })
    }

    /// Restores one shard from its checkpoint file; `None` means the
    /// checkpoint cannot be trusted and the shard must re-execute.
    fn restore_shard<O, Dec>(
        &self,
        run: &CheckpointedRun<'_>,
        shard_id: usize,
        record: ShardRecord,
        decode: &Dec,
    ) -> Option<(Vec<O>, FaultReport)>
    where
        Dec: Fn(&str) -> Option<Vec<O>>,
    {
        let checkpoint = run.store.load_shard(shard_id)?;
        if fnv1a64(checkpoint.payload.as_bytes()) != record.digest {
            return None;
        }
        let outputs = decode(&checkpoint.payload)?;
        if outputs.len() != record.outputs {
            return None;
        }
        if let Some(metrics) = &self.metrics {
            // Replay the shard's deterministic metrics contribution so
            // counters after a resume match an uninterrupted run. A
            // bucket-layout conflict would mean the code changed under
            // the checkpoint; refuse the restore and re-execute.
            if metrics.absorb(&checkpoint.metrics_delta).is_err() {
                return None;
            }
        }
        Some((outputs, checkpoint.faults))
    }
}

/// Runs one checkpoint write under the store breaker: `true` means the
/// write was attempted and succeeded, `false` that the breaker was open
/// (write skipped without paying failure latency) or the write failed
/// (breaker notified). Injected faults from the run's [`FaultPlan`], if
/// any, fire before the real write.
fn guarded_checkpoint_write<F>(
    breaker: &mut CircuitBreaker,
    io_faults: Option<&FaultPlan>,
    write: F,
) -> bool
where
    F: FnOnce() -> std::io::Result<()>,
{
    if !breaker.allow() {
        return false;
    }
    let injected = io_faults.map_or(Ok(()), FaultPlan::save_checkpoint);
    match injected.and_then(|()| write()) {
        Ok(()) => {
            breaker.record_success();
            true
        }
        Err(_) => {
            breaker.record_failure();
            false
        }
    }
}

/// Folds a fault report into the attached registry. Counters only — the
/// elapsed-time fields stay out so an attached registry remains safe to
/// export in golden (byte-compared) snapshots.
fn record_fault_metrics(metrics: &MetricsRegistry, report: &FaultReport) {
    metrics.counter("mapreduce.jobs").inc();
    metrics
        .counter("mapreduce.map.retries")
        .add(report.map_retries as u64);
    metrics
        .counter("mapreduce.map.bisections")
        .add(report.map_bisections as u64);
    metrics
        .counter("mapreduce.map.quarantined")
        .add(report.quarantined_inputs as u64);
    metrics
        .counter("mapreduce.map.timed_out")
        .add(report.timed_out_inputs as u64);
    metrics
        .counter("mapreduce.reduce.retries")
        .add(report.reduce_retries as u64);
    metrics
        .counter("mapreduce.reduce.quarantined")
        .add(report.quarantined_keys as u64);
    metrics
        .counter("mapreduce.reduce.timed_out")
        .add(report.timed_out_keys as u64);
    metrics
        .counter("mapreduce.lost_values")
        .add(report.lost_values as u64);
}

/// Maps `slice` into `out`, retrying whole-slice failures up to the policy
/// budget and bisecting persistent failures down to the poison record.
///
/// Each attempt emits into fresh buckets so a mid-slice panic cannot leave
/// duplicate partial output behind; only a fully successful attempt is
/// merged into `out`, which keeps a fault-free run byte-identical to
/// [`MapReduce::run`].
///
/// When [`FaultPolicy::task_deadline`] is armed, a *successful* attempt
/// that overran the deadline is treated as a straggler: its output is
/// discarded and the slice is bisected exactly like a poison slice, so the
/// slow record is isolated (and quarantined as `timed_out` once singled
/// out) while its fast neighbours are re-mapped within budget. Timeouts do
/// not consume panic retries — a deterministic overrun would overrun again.
#[allow(clippy::too_many_arguments)]
fn map_slice<I, K, V, M>(
    slice: &[I],
    mapper: &M,
    policy: &FaultPolicy,
    retry: &RetryPolicy,
    stream: u64,
    n_partitions: usize,
    out: &mut [Vec<(K, V)>],
    faults: &mut PhaseFaults,
) where
    I: Debug,
    K: Hash,
    M: Fn(&I, &mut dyn FnMut(K, V)),
{
    if slice.is_empty() {
        return;
    }
    for attempt in 0..=policy.max_task_retries {
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut local: Vec<Vec<(K, V)>> = (0..n_partitions).map(|_| Vec::new()).collect();
            for input in slice {
                let mut emit = |k: K, v: V| {
                    let p = partition_of(&k, n_partitions);
                    local[p].push((k, v));
                };
                mapper(input, &mut emit);
            }
            local
        }));
        match result {
            Ok(local) => {
                let overran = policy
                    .task_deadline
                    .is_some_and(|deadline| started.elapsed() > deadline);
                if !overran {
                    for (p, bucket) in local.into_iter().enumerate() {
                        out[p].extend(bucket);
                    }
                    return;
                }
                if slice.len() == 1 {
                    faults.quarantine_timeout(format!("{:?}", slice[0]), 0, policy);
                    return;
                }
                // Over-deadline slice: discard the late output, count the
                // re-execution as a retry (speculative re-run in Dean &
                // Ghemawat's terms), and bisect to isolate the straggler.
                faults.retries += 1;
                faults.bisections += 1;
                let mid = slice.len() / 2;
                #[rustfmt::skip]
                map_slice(&slice[..mid], mapper, policy, retry, stream, n_partitions, out, faults);
                #[rustfmt::skip]
                map_slice(&slice[mid..], mapper, policy, retry, stream, n_partitions, out, faults);
                return;
            }
            Err(payload) => {
                faults.note_panic(payload, policy);
                if attempt < policy.max_task_retries {
                    faults.retries += 1;
                    backoff_between_attempts(retry, attempt + 1, stream, faults);
                }
            }
        }
    }
    // Retries exhausted: isolate the poison record by bisection.
    if slice.len() == 1 {
        faults.quarantine(format!("{:?}", slice[0]), 0, policy);
        return;
    }
    faults.bisections += 1;
    let mid = slice.len() / 2;
    #[rustfmt::skip]
    map_slice(&slice[..mid], mapper, policy, retry, stream, n_partitions, out, faults);
    #[rustfmt::skip]
    map_slice(&slice[mid..], mapper, policy, retry, stream, n_partitions, out, faults);
}

/// Sleeps out the seeded backoff delay before retry attempt `attempt`
/// (1-based) of a failed task, accounting the wait. A disarmed policy —
/// the default — makes this a no-op, preserving retry-immediately
/// semantics.
fn backoff_between_attempts(
    retry: &RetryPolicy,
    attempt: usize,
    stream: u64,
    faults: &mut PhaseFaults,
) {
    let attempt = u32::try_from(attempt).unwrap_or(u32::MAX);
    let nanos = retry.backoff_nanos(attempt, stream);
    if nanos == 0 {
        return;
    }
    faults.backoff_waits += 1;
    faults.backoff_nanos = faults.backoff_nanos.saturating_add(nanos);
    std::thread::sleep(Duration::from_nanos(nanos));
}

/// Reduces one partition: a single `catch_unwind` over the whole partition
/// on the fast path, falling back to per-key attempts (with retries, then
/// quarantine) only when something in the partition panicked.
///
/// When [`FaultPolicy::task_deadline`] is armed, the whole-partition fast
/// path is skipped: every key runs (and is timed) individually so one
/// straggler key can be quarantined as `timed_out` without discarding its
/// partition neighbours. Output order — sorted by key, minus dropped keys
/// — is identical either way.
fn reduce_partition<K, V, O, R>(
    records: Vec<(K, V)>,
    reducer: &R,
    policy: &FaultPolicy,
    retry: &RetryPolicy,
    stream: u64,
) -> (Vec<O>, PhaseFaults)
where
    K: Hash + Eq + Ord + Debug,
    R: Fn(&K, &[V]) -> Vec<O>,
{
    let mut groups: HashMap<K, Vec<V>> = HashMap::new();
    for (k, v) in records {
        groups.entry(k).or_default().push(v);
    }
    let mut keyed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));

    let mut faults = PhaseFaults::default();
    if let Some(deadline) = policy.task_deadline {
        let mut out = Vec::new();
        for (k, vs) in &keyed {
            let mut done = false;
            for attempt in 0..=policy.max_task_retries {
                let started = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| reducer(k, vs))) {
                    Ok(mut o) => {
                        if started.elapsed() > deadline {
                            // The key finished, but too late: drop its
                            // output and account for the straggler. No
                            // retry — a deterministic overrun would only
                            // overrun again.
                            faults.quarantine_timeout(format!("{k:?}"), vs.len(), policy);
                        } else {
                            out.append(&mut o);
                        }
                        done = true;
                        break;
                    }
                    Err(payload) => {
                        faults.note_panic(payload, policy);
                        if attempt < policy.max_task_retries {
                            faults.retries += 1;
                            backoff_between_attempts(retry, attempt + 1, stream, &mut faults);
                        }
                    }
                }
            }
            if !done {
                faults.quarantine(format!("{k:?}"), vs.len(), policy);
            }
        }
        return (out, faults);
    }
    let whole = catch_unwind(AssertUnwindSafe(|| {
        let mut out = Vec::new();
        for (k, vs) in &keyed {
            out.extend(reducer(k, vs));
        }
        out
    }));
    match whole {
        Ok(out) => (out, faults),
        Err(payload) => {
            faults.note_panic(payload, policy);
            // The per-key fallback re-executes the partition, so it counts
            // as a retry even when every key then succeeds first try (a
            // transient fault consumed by the fast-path attempt).
            faults.retries += 1;
            backoff_between_attempts(retry, 1, stream, &mut faults);
            // Degraded path: every key gets its own retry budget; output
            // order stays sorted-by-key, minus quarantined keys.
            let mut out = Vec::new();
            for (k, vs) in &keyed {
                let mut done = false;
                for attempt in 0..=policy.max_task_retries {
                    match catch_unwind(AssertUnwindSafe(|| reducer(k, vs))) {
                        Ok(mut o) => {
                            out.append(&mut o);
                            done = true;
                            break;
                        }
                        Err(payload) => {
                            faults.note_panic(payload, policy);
                            if attempt < policy.max_task_retries {
                                faults.retries += 1;
                                backoff_between_attempts(retry, attempt + 1, stream, &mut faults);
                            }
                        }
                    }
                }
                if !done {
                    faults.quarantine(format!("{k:?}"), vs.len(), policy);
                }
            }
            (out, faults)
        }
    }
}

impl Default for MapReduce {
    fn default() -> Self {
        Self::new(JobConfig::default())
    }
}

/// Stable partition assignment for a key.
pub fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Splits a vector into at most `n` contiguous chunks of near-equal size.
fn split_into<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let n = n.min(len);
    let base = len / n;
    let extra = len % n;
    let mut chunks = Vec::with_capacity(n);
    // Draining from the back keeps this O(len); reverse sizes so the final
    // chunk order matches the input order.
    let mut sizes: Vec<usize> = (0..n).map(|i| base + usize::from(i < extra)).collect();
    sizes.reverse();
    for size in sizes {
        let tail = items.split_off(items.len() - size);
        chunks.push(tail);
    }
    chunks.reverse();
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_count(engine: &MapReduce, docs: Vec<&str>) -> Vec<(String, usize)> {
        engine.run(
            docs,
            |doc, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |word, ones| vec![(word.clone(), ones.len())],
        )
    }

    #[test]
    fn word_count_basic() {
        let engine = MapReduce::default();
        let out = word_count(&engine, vec!["a b a", "b a"]);
        let get = |w: &str| out.iter().find(|(x, _)| x == w).map(|(_, c)| *c);
        assert_eq!(get("a"), Some(3));
        assert_eq!(get("b"), Some(2));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_input_empty_output() {
        let engine = MapReduce::default();
        let out = word_count(&engine, vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let docs: Vec<String> = (0..500)
            .map(|i| format!("w{} w{} w{}", i % 17, i % 5, i % 31))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let a = word_count(
            &MapReduce::new(JobConfig {
                partitions: 8,
                threads: 1,
            }),
            refs.clone(),
        );
        let b = word_count(
            &MapReduce::new(JobConfig {
                partitions: 8,
                threads: 8,
            }),
            refs.clone(),
        );
        let c = word_count(
            &MapReduce::new(JobConfig {
                partitions: 8,
                threads: 3,
            }),
            refs,
        );
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn single_partition_sorts_all_keys() {
        let engine = MapReduce::new(JobConfig {
            partitions: 1,
            threads: 4,
        });
        let out = word_count(&engine, vec!["delta alpha charlie bravo"]);
        let words: Vec<&str> = out.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, vec!["alpha", "bravo", "charlie", "delta"]);
    }

    #[test]
    fn stats_counters() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let (out, stats) = engine.run_with_stats(
            vec!["x y", "x z"],
            |doc: &str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |w: &String, ones| vec![(w.clone(), ones.len())],
        );
        assert_eq!(stats.map_output_records(), 4);
        assert_eq!(stats.reduce_groups(), 3);
        assert_eq!(stats.output_records(), out.len());
    }

    #[test]
    fn combiner_matches_plain_run() {
        let docs: Vec<String> = (0..200).map(|i| format!("k{} k{}", i % 7, i % 3)).collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 4,
        });
        let mut plain = engine.run(
            refs.clone(),
            |doc, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |w, ones| vec![(w.clone(), ones.iter().sum::<usize>())],
        );
        let mut combined = engine.run_with_combiner(
            refs,
            |doc: &str, emit: &mut dyn FnMut(String, usize)| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |a, b| a + b,
            |w, vs| vec![(w.clone(), vs.iter().sum::<usize>())],
        );
        plain.sort();
        combined.sort();
        assert_eq!(plain, combined);
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for k in 0..1000u64 {
            let p = partition_of(&k, 32);
            assert!(p < 32);
            assert_eq!(p, partition_of(&k, 32));
        }
    }

    #[test]
    fn hash_bits_config() {
        let cfg = JobConfig::default().with_hash_bits(5);
        assert_eq!(cfg.partitions, 32);
    }

    #[test]
    #[should_panic]
    fn hash_bits_zero_panics() {
        JobConfig::default().with_hash_bits(0);
    }

    #[test]
    #[should_panic]
    fn zero_partitions_panics() {
        MapReduce::new(JobConfig {
            partitions: 0,
            threads: 1,
        });
    }

    #[test]
    fn split_into_covers_all_items_in_order() {
        for n in [1usize, 2, 3, 7, 100] {
            let items: Vec<usize> = (0..23).collect();
            let chunks = split_into(items.clone(), n);
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "n = {n}");
        }
        assert!(split_into(Vec::<u8>::new(), 4).is_empty());
    }

    #[test]
    fn values_grouped_per_key() {
        let engine = MapReduce::new(JobConfig {
            partitions: 2,
            threads: 2,
        });
        let out = engine.run(
            vec![1u64, 2, 3, 4, 5, 6],
            |n, emit| emit(n % 2, n),
            |parity, values| {
                let mut v = values.clone();
                v.sort();
                vec![(*parity, v)]
            },
        );
        let evens = out.iter().find(|(p, _)| *p == 0).unwrap();
        assert_eq!(evens.1, vec![2, 4, 6]);
        let odds = out.iter().find(|(p, _)| *p == 1).unwrap();
        assert_eq!(odds.1, vec![1, 3, 5]);
    }

    #[test]
    fn heavy_parallel_load() {
        let engine = MapReduce::new(JobConfig {
            partitions: 32,
            threads: 8,
        });
        let inputs: Vec<u64> = (0..100_000).collect();
        let out = engine.run(
            inputs,
            |n, emit| emit(n % 1000, 1u64),
            |k, vs| vec![(*k, vs.len() as u64)],
        );
        assert_eq!(out.len(), 1000);
        assert!(out.iter().all(|(_, c)| *c == 100));
    }

    #[test]
    fn chained_jobs_compose() {
        // Job 1: count words; job 2: bucket counts by magnitude — mirrors
        // BAYWATCH's extraction → detection chaining where one job's output
        // feeds the next without reprocessing raw input.
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 4,
        });
        let docs = vec!["a a a a b b c", "a b", "c"];
        let counts = word_count(&engine, docs); // a=5, b=3, c=2
        let buckets = engine.run(
            counts,
            |(_, c), emit| emit(if c >= 3 { "hot" } else { "cold" }, 1usize),
            |k, vs| vec![(*k, vs.len())],
        );
        let hot = buckets.iter().find(|(k, _)| *k == "hot").unwrap().1;
        let cold = buckets.iter().find(|(k, _)| *k == "cold").unwrap().1;
        assert_eq!(hot, 2); // a and b
        assert_eq!(cold, 1); // c
    }

    // ---- fault-tolerant execution ----

    fn ft_word_count(
        engine: &MapReduce,
        docs: Vec<&'static str>,
    ) -> (Vec<(String, usize)>, FaultReport) {
        engine.run_fault_tolerant(
            docs,
            |doc, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |k, vs| vec![(k.clone(), vs.len())],
        )
    }

    #[test]
    fn fault_free_run_matches_plain_run() {
        let engine = MapReduce::new(JobConfig {
            partitions: 8,
            threads: 4,
        });
        let docs = vec!["the quick brown fox", "jumps over the lazy dog", "the end"];
        let plain = engine.run(
            docs.clone(),
            |doc: &'static str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |k, vs| vec![(k.clone(), vs.len())],
        );
        let (ft, report) = ft_word_count(&engine, docs);
        assert_eq!(ft, plain);
        assert!(report.is_clean());
        assert_eq!(report.quarantined_units(), 0);
    }

    #[test]
    fn poison_record_is_bisected_to_single_quarantine() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let inputs: Vec<i64> = (0..64).collect();
        let (out, report) = engine.run_fault_tolerant(
            inputs,
            |n, emit| {
                assert!(*n != 37, "poison record");
                emit(n % 2, 1usize);
            },
            |k, vs| vec![(*k, vs.len())],
        );
        // Exactly one record lost; everything else mapped.
        assert_eq!(report.quarantined_inputs, 1);
        assert!(report.input_samples.iter().any(|s| s == "37"));
        let total: usize = out.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 63);
        assert!(report.map_retries > 0);
        assert!(!report.panic_samples.is_empty());
    }

    #[test]
    fn transient_map_panic_retries_without_loss() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 1,
        });
        let plan = FaultPlan::new().panic_on_map_call(2);
        let inputs: Vec<i64> = (0..16).collect();
        let (out, report) = engine.run_fault_tolerant(
            inputs,
            |n, emit| {
                plan.map_checkpoint(n);
                emit((), *n)
            },
            |_, vs| vec![vs.iter().sum::<i64>()],
        );
        assert_eq!(plan.injected_faults(), 1);
        assert_eq!(out, vec![(0..16).sum::<i64>()]);
        assert_eq!(report.quarantined_inputs, 0);
        assert!(report.map_retries >= 1);
    }

    #[test]
    fn poison_reduce_key_is_quarantined_with_lost_values() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let docs = vec!["a bad a", "bad b bad"];
        let (out, report) = engine.run_fault_tolerant(
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |k: &String, vs: &[usize]| {
                assert!(k != "bad", "poison key");
                vec![(k.clone(), vs.len())]
            },
        );
        let mut out = out;
        out.sort();
        assert_eq!(out, vec![("a".to_owned(), 2), ("b".to_owned(), 1)]);
        assert_eq!(report.quarantined_keys, 1);
        assert_eq!(report.lost_values, 3);
        assert!(report.key_samples.iter().any(|s| s.contains("bad")));
        assert!(report.reduce_retries > 0);
    }

    #[test]
    fn ft_deterministic_across_thread_counts() {
        let docs = vec![
            "lorem ipsum dolor sit amet",
            "consectetur adipiscing elit sed",
            "do eiusmod tempor incididunt",
            "ut labore et dolore magna",
        ];
        let mut outputs = Vec::new();
        for threads in [1, 2, 4, 8] {
            let engine = MapReduce::new(JobConfig {
                partitions: 16,
                threads,
            });
            let (out, report) = ft_word_count(&engine, docs.clone());
            assert!(report.is_clean());
            outputs.push(out);
        }
        for w in outputs.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn fault_plan_transient_reduce_key_recovers() {
        let engine = MapReduce::new(JobConfig {
            partitions: 2,
            threads: 1,
        });
        let plan = FaultPlan::new().fail_key("\"flaky\"", 1);
        let docs = vec!["flaky steady flaky"];
        let (out, report) = engine.run_fault_tolerant(
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |k: &String, vs: &[usize]| {
                plan.reduce_checkpoint(k);
                vec![(k.clone(), vs.len())]
            },
        );
        let mut out = out;
        out.sort();
        assert_eq!(out, vec![("flaky".to_owned(), 2), ("steady".to_owned(), 1)]);
        assert_eq!(report.quarantined_keys, 0);
        assert!(report.reduce_retries >= 1);
    }

    // ---- deadline / straggler handling ----

    use std::time::Duration;

    fn deadline_policy(millis: u64) -> FaultPolicy {
        FaultPolicy {
            task_deadline: Some(Duration::from_millis(millis)),
            ..FaultPolicy::default()
        }
    }

    #[test]
    fn deadline_armed_fault_free_run_matches_plain_run() {
        let engine = MapReduce::new(JobConfig {
            partitions: 8,
            threads: 4,
        });
        let docs = vec!["the quick brown fox", "jumps over the lazy dog", "the end"];
        let plain = engine.run(
            docs.clone(),
            |doc: &str, emit: &mut dyn FnMut(String, usize)| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |k: &String, vs: Vec<usize>| vec![(k.clone(), vs.len())],
        );
        // A generous deadline no task comes close to: the per-key reduce
        // path must produce byte-identical output to the fast path.
        let (ft, report) = engine.run_fault_tolerant_with_policy(
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |k: &String, vs: &[usize]| vec![(k.clone(), vs.len())],
            &deadline_policy(60_000),
        );
        assert_eq!(ft, plain);
        assert!(report.is_clean());
        assert_eq!(report.timed_out_units(), 0);
    }

    #[test]
    fn persistent_map_straggler_is_bisected_to_timed_out_quarantine() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let plan = FaultPlan::new().delay_input("37", 40);
        let inputs: Vec<i64> = (0..64).collect();
        let (out, report) = engine.run_fault_tolerant_with_policy(
            inputs,
            |n, emit| {
                plan.map_checkpoint(n);
                emit(n % 2, 1usize);
            },
            |k, vs| vec![(*k, vs.len())],
            &deadline_policy(10),
        );
        // The straggler record is isolated by bisection and quarantined as
        // timed out — not as a panic — and exactly one record is lost.
        assert_eq!(report.timed_out_inputs, 1);
        assert_eq!(report.quarantined_inputs, 0);
        assert!(report.timeout_samples.iter().any(|s| s == "37"));
        assert!(report.panic_samples.is_empty());
        let total: usize = out.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 63);
    }

    #[test]
    fn transient_map_straggler_retries_without_loss() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 1,
        });
        // The delay fires on one specific map call; bisection re-runs are
        // fast because the call counter has advanced past it.
        let plan = FaultPlan::new().delay_map_call(2, 40);
        let inputs: Vec<i64> = (0..16).collect();
        let (out, report) = engine.run_fault_tolerant_with_policy(
            inputs,
            |n, emit| {
                plan.map_checkpoint(n);
                emit((), *n)
            },
            |_, vs| vec![vs.iter().sum::<i64>()],
            &deadline_policy(10),
        );
        assert_eq!(plan.injected_faults(), 1);
        assert_eq!(out, vec![(0..16).sum::<i64>()]);
        assert_eq!(report.timed_out_inputs, 0);
        assert_eq!(report.quarantined_inputs, 0);
        assert!(report.map_retries >= 1);
    }

    #[test]
    fn straggler_reduce_key_is_quarantined_as_timed_out() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let plan = FaultPlan::new().delay_key("\"slow\"", 40);
        let docs = vec!["a slow a", "slow b slow"];
        let (out, report) = engine.run_fault_tolerant_with_policy(
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |k: &String, vs: &[usize]| {
                plan.reduce_checkpoint(k);
                vec![(k.clone(), vs.len())]
            },
            &deadline_policy(10),
        );
        let mut out = out;
        out.sort();
        assert_eq!(out, vec![("a".to_owned(), 2), ("b".to_owned(), 1)]);
        assert_eq!(report.timed_out_keys, 1);
        assert_eq!(report.quarantined_keys, 0);
        assert_eq!(report.lost_values, 3);
        assert!(report.timeout_samples.iter().any(|s| s.contains("slow")));
        // A deterministic overrun is never retried — it would only overrun
        // again, so no reduce retries are burned on it.
        assert_eq!(report.reduce_retries, 0);
    }

    // ---- checkpoint/resume ----

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "baywatch-ckpt-test-{}-{:x}",
            std::process::id(),
            fnv1a64(tag.as_bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Word-count shards with a stable numeric encoding, so payloads
    /// round-trip exactly through the checkpoint store.
    fn ckpt_run(
        engine: &MapReduce,
        shards: Vec<Vec<&'static str>>,
        run: &CheckpointedRun<'_>,
    ) -> ShardedOutcome<(String, usize)> {
        engine
            .run_sharded_checkpointed(
                shards,
                run,
                &FaultPolicy::default(),
                |doc: &&str, emit| {
                    for w in doc.split_whitespace() {
                        emit(w.to_owned(), 1usize);
                    }
                },
                |k: &String, vs: &[usize]| vec![(k.clone(), vs.len())],
                |rows: &[(String, usize)]| {
                    let mut out = String::new();
                    for (w, c) in rows {
                        out.push_str(&format!("{w}={c}\n"));
                    }
                    out
                },
                |payload: &str| {
                    let mut rows = Vec::new();
                    for line in payload.lines() {
                        let (w, c) = line.rsplit_once('=')?;
                        rows.push((w.to_string(), c.parse().ok()?));
                    }
                    Some(rows)
                },
                |_, _, _, _| Vec::new(),
            )
            .expect("checkpoint I/O")
    }

    fn word_shards() -> Vec<Vec<&'static str>> {
        vec![
            vec!["alpha beta alpha", "gamma"],
            vec!["beta beta delta"],
            vec!["alpha epsilon", "zeta zeta zeta"],
        ]
    }

    #[test]
    fn interrupted_then_resumed_matches_uninterrupted() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let dir_a = scratch_dir("uninterrupted");
        let store_a = CheckpointStore::create(&dir_a).unwrap();
        let base = CheckpointedRun {
            store: &store_a,
            fingerprint: 77,
            rng_seed: 1,
            budget: BudgetSnapshot::default(),
            resume: false,
            io_faults: None,
            abort_after_shards: None,
        };
        let full = ckpt_run(&engine, word_shards(), &base);
        assert!(!full.interrupted);
        assert_eq!(full.executed_shards, 3);
        assert_eq!(full.manifest.shards.len(), 3);

        // Same plan, killed after one shard, then resumed in a "new
        // process": outputs and manifest must match the uninterrupted run
        // exactly.
        let dir_b = scratch_dir("interrupted");
        let store_b = CheckpointStore::create(&dir_b).unwrap();
        let killed = ckpt_run(
            &engine,
            word_shards(),
            &CheckpointedRun {
                store: &store_b,
                abort_after_shards: Some(1),
                ..base.clone()
            },
        );
        assert!(killed.interrupted);
        assert_eq!(killed.executed_shards, 1);

        let resumed = ckpt_run(
            &engine,
            word_shards(),
            &CheckpointedRun {
                store: &store_b,
                resume: true,
                abort_after_shards: None,
                ..base.clone()
            },
        );
        assert!(!resumed.interrupted);
        assert_eq!(resumed.resumed_shards, 1);
        assert_eq!(resumed.executed_shards, 2);
        assert_eq!(resumed.load_warnings, 0);
        assert_eq!(resumed.outputs, full.outputs);
        // Durations are process facts, not data — compare the persisted
        // (deterministic) rendering of the aggregate fault report.
        assert_eq!(
            manifest::fault_report_to_json(&resumed.faults),
            manifest::fault_report_to_json(&full.faults)
        );
        assert_eq!(resumed.manifest, full.manifest);
        // The persisted manifests are byte-identical too.
        assert_eq!(
            std::fs::read_to_string(store_b.manifest_path()).unwrap(),
            std::fs::read_to_string(store_a.manifest_path()).unwrap()
        );

        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn resume_replays_metrics_deltas_exactly() {
        let shards = word_shards();
        let run_with = |dir: &std::path::Path, resume: bool, abort: Option<usize>| {
            let metrics = Arc::new(MetricsRegistry::new());
            let engine = MapReduce::new(JobConfig {
                partitions: 4,
                threads: 2,
            })
            .with_metrics(Arc::clone(&metrics));
            let store = CheckpointStore::create(dir).unwrap();
            let outcome = ckpt_run(
                &engine,
                shards.clone(),
                &CheckpointedRun {
                    store: &store,
                    fingerprint: 5,
                    rng_seed: 0,
                    budget: BudgetSnapshot::default(),
                    resume,
                    io_faults: None,
                    abort_after_shards: abort,
                },
            );
            (outcome, metrics.snapshot())
        };

        let dir_a = scratch_dir("metrics-uninterrupted");
        let (_, uninterrupted) = run_with(&dir_a, false, None);

        let dir_b = scratch_dir("metrics-resumed");
        let (killed, _) = run_with(&dir_b, false, Some(2));
        assert!(killed.interrupted);
        let (resumed, resumed_snap) = run_with(&dir_b, true, None);
        assert_eq!(resumed.resumed_shards, 2);

        // Deterministic sections match; only operational counters (and
        // the full export) may differ between the two histories.
        assert_eq!(resumed_snap.counters, uninterrupted.counters);
        assert_eq!(resumed_snap.histograms, uninterrupted.histograms);
        assert_eq!(resumed_snap.to_json(), uninterrupted.to_json());
        assert_eq!(resumed_snap.operational["checkpoint.shards_resumed"], 2);

        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn corrupt_shard_checkpoint_is_reexecuted_not_trusted() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let dir = scratch_dir("corrupt-shard");
        let store = CheckpointStore::create(&dir).unwrap();
        let base = CheckpointedRun {
            store: &store,
            fingerprint: 9,
            rng_seed: 0,
            budget: BudgetSnapshot::default(),
            resume: false,
            io_faults: None,
            abort_after_shards: None,
        };
        let full = ckpt_run(&engine, word_shards(), &base);

        // Tamper with shard 1's payload on disk; its digest no longer
        // matches the manifest, so resume must re-execute it.
        let tampered = store.load_shard(1).unwrap();
        std::fs::write(
            store.shard_path(1),
            ShardCheckpoint {
                payload: format!("{}tampered=1\n", tampered.payload),
                ..tampered
            }
            .to_json(),
        )
        .unwrap();

        let resumed = ckpt_run(
            &engine,
            word_shards(),
            &CheckpointedRun {
                resume: true,
                ..base.clone()
            },
        );
        assert_eq!(resumed.load_warnings, 1);
        assert_eq!(resumed.resumed_shards, 2);
        assert_eq!(resumed.executed_shards, 1);
        assert_eq!(resumed.outputs, full.outputs);
        // Regression: the downgrade must be *surfaced*, not just counted —
        // the fault report carries the corruption and a bounded sample,
        // and both survive the persisted-report round trip.
        assert_eq!(resumed.faults.checkpoint_corruptions, 1);
        assert_eq!(resumed.faults.corruption_samples.len(), 1);
        assert!(resumed.faults.corruption_samples[0].contains("shard 1"));
        let round_tripped =
            manifest::fault_report_from_json(&manifest::fault_report_to_json(&resumed.faults))
                .unwrap();
        assert_eq!(round_tripped.checkpoint_corruptions, 1);
        assert_eq!(
            round_tripped.corruption_samples,
            resumed.faults.corruption_samples
        );
        assert!(
            resumed.faults.is_clean(),
            "a re-executed shard is a process fact, not a data fault"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_save_failure_trips_breaker_and_degrades_to_in_memory() {
        let clock = Arc::new(baywatch_obs::ManualClock::new());
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        })
        .with_checkpoint_breaker(
            BreakerConfig {
                failure_threshold: 2,
                ..BreakerConfig::default()
            },
            clock,
        );
        let dir = scratch_dir("persistent-save-failure");
        let store = CheckpointStore::create(&dir).unwrap();
        let plan = FaultPlan::new().fail_all_saves();
        let outcome = ckpt_run(
            &engine,
            word_shards(),
            &CheckpointedRun {
                store: &store,
                fingerprint: 13,
                rng_seed: 0,
                budget: BudgetSnapshot::default(),
                resume: false,
                io_faults: Some(&plan),
                abort_after_shards: None,
            },
        );

        // Every shard still executed and produced output — only
        // durability was lost.
        let baseline_dir = scratch_dir("persistent-save-baseline");
        let baseline_store = CheckpointStore::create(&baseline_dir).unwrap();
        let baseline = ckpt_run(
            &engine,
            word_shards(),
            &CheckpointedRun {
                store: &baseline_store,
                fingerprint: 13,
                rng_seed: 0,
                budget: BudgetSnapshot::default(),
                resume: false,
                io_faults: None,
                abort_after_shards: None,
            },
        );
        assert_eq!(outcome.outputs, baseline.outputs);
        assert_eq!(outcome.executed_shards, 3);
        assert_eq!(outcome.write_warnings, 3, "one warning per shard");
        assert!(outcome.manifest.shards.is_empty(), "nothing was persisted");
        // Shards 0 and 1 paid the failure; shard 2 was skipped by the
        // open breaker without touching the (injected) store at all.
        assert_eq!(plan.injected_faults(), 2);

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&baseline_dir);
    }

    #[test]
    fn transient_save_failure_skips_one_shard_record() {
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        });
        let dir = scratch_dir("transient-save-failure");
        let store = CheckpointStore::create(&dir).unwrap();
        let plan = FaultPlan::new().fail_next_saves(1);
        let base = CheckpointedRun {
            store: &store,
            fingerprint: 21,
            rng_seed: 0,
            budget: BudgetSnapshot::default(),
            resume: false,
            io_faults: Some(&plan),
            abort_after_shards: None,
        };
        let outcome = ckpt_run(&engine, word_shards(), &base);
        assert_eq!(outcome.write_warnings, 1);
        assert_eq!(outcome.executed_shards, 3);
        // Shard 0's write failed, so only shards 1 and 2 earned manifest
        // records; a resume re-executes exactly the unpersisted shard.
        assert_eq!(outcome.manifest.shards.len(), 2);
        let resumed = ckpt_run(
            &engine,
            word_shards(),
            &CheckpointedRun {
                resume: true,
                io_faults: None,
                ..base.clone()
            },
        );
        assert_eq!(resumed.resumed_shards, 2);
        assert_eq!(resumed.executed_shards, 1);
        assert_eq!(resumed.write_warnings, 0);
        assert_eq!(resumed.outputs, outcome.outputs);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_retry_policy_records_backoff_waits() {
        let metrics = Arc::new(MetricsRegistry::new());
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        })
        .with_metrics(Arc::clone(&metrics))
        .with_retry_policy(RetryPolicy {
            max_retries: 2,
            base_nanos: 1_000, // 1 µs: observable in counters, invisible in wall time
            ..RetryPolicy::default()
        });
        let plan = FaultPlan::new().panic_on_map_call(0);
        let (out, report) = engine.run_fault_tolerant(
            vec!["a b", "c"],
            |doc: &&str, emit| {
                plan.map_checkpoint(doc);
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |w: &String, ones: &[usize]| vec![(w.clone(), ones.len())],
        );
        assert_eq!(out.len(), 3);
        assert_eq!(report.quarantined_inputs, 0, "fault absorbed by retry");
        assert!(report.map_retries >= 1);
        let snap = metrics.snapshot();
        assert!(snap.counters["resilience.retry.waits"] >= 1);
        assert!(snap.counters["resilience.retry.backoff_nanos"] >= 500);
    }

    #[test]
    fn disarmed_retry_policy_leaves_the_registry_untouched() {
        let metrics = Arc::new(MetricsRegistry::new());
        let engine = MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        })
        .with_metrics(Arc::clone(&metrics));
        let plan = FaultPlan::new().panic_on_map_call(0);
        let (_, report) = engine.run_fault_tolerant(
            vec!["a b", "c"],
            |doc: &&str, emit| {
                plan.map_checkpoint(doc);
                for w in doc.split_whitespace() {
                    emit(w.to_owned(), 1usize);
                }
            },
            |w: &String, ones: &[usize]| vec![(w.clone(), ones.len())],
        );
        assert!(report.map_retries >= 1);
        let snap = metrics.snapshot();
        assert!(
            !snap.counters.contains_key("resilience.retry.waits"),
            "immediate retries must not register backoff counters"
        );
    }
}
