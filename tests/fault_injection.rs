//! End-to-end fault-injection suite: deterministic task faults
//! ([`FaultPlan`]) and log corruption ([`netsim::corrupt`]) driven through
//! the full pipeline. The contract under test is *graceful degradation*:
//! analysis always completes, the damage is accounted for in the report
//! (quarantined pairs, skipped events, malformed lines), and pairs the
//! faults did not touch rank byte-identically to a fault-free run.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use baywatch::core::elff::read_elff;
use baywatch::core::pair::CommunicationPair;
use baywatch::core::pipeline::{AnalysisReport, Baywatch, BaywatchConfig, PipelineBudget};
use baywatch::core::record::LogRecord;
use baywatch::core::report::{render_case, render_funnel, ReportOptions};
use baywatch::mapreduce::FaultPlan;
use baywatch::netsim::adversarial::pathological_sparse_beacon;
use baywatch::netsim::corrupt::{
    corrupt_elff_lines, skew_and_duplicate, to_elff, CorruptionConfig,
};
use baywatch::netsim::types::{HostId, ProxyEvent};
use baywatch::record_from_event;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOSTS: u64 = 12;
const EVENTS_PER_PAIR: u64 = 80;

fn dga_domain(h: u64) -> String {
    format!("zxq{h}wvkt{h}n.biz")
}

fn beacon_period(h: u64) -> u64 {
    60 + (h % 6) * 30
}

/// One beaconing pair per host: host `h` polls its own DGA destination
/// every `beacon_period(h)` seconds with pseudo-random URL tokens.
fn beacon_events() -> Vec<ProxyEvent> {
    let mut events = Vec::new();
    for h in 0..HOSTS {
        for i in 0..EVENTS_PER_PAIR {
            events.push(ProxyEvent {
                timestamp: 50_000 + i * beacon_period(h),
                host: HostId(h as u32),
                source_ip: 0x0a00_0000 + h as u32,
                domain: dga_domain(h),
                url_path: format!("{:x}", (h * 77 + i) * 2_654_435_761 % 0xFF_FFFF),
            });
        }
    }
    events
}

/// Local whitelist effectively disabled: the test population is a dozen
/// hosts, so the paper's τ_P = 1% would whitelist every destination.
fn quiet_engine() -> Baywatch {
    Baywatch::new(BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    })
}

/// Renders a case rank-independently for byte-identity comparison.
fn evidence(report: &AnalysisReport, destination: &str) -> Option<String> {
    report
        .ranked
        .iter()
        .find(|rc| rc.case.pair.destination == destination)
        .map(|rc| render_case(1, rc, &ReportOptions::default()))
}

fn pair_counts(records: &[LogRecord]) -> BTreeMap<(String, String), usize> {
    let mut counts = BTreeMap::new();
    for r in records {
        *counts
            .entry((r.source.clone(), r.domain.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// A seeded [`FaultPlan`] — one poison pair plus a transient map panic —
/// degrades the run (pair quarantined, retry logged, funnel flags it) while
/// every unaffected pair ranks byte-identically to a fault-free run.
#[test]
fn fault_plan_quarantines_poison_pair_and_preserves_the_rest() {
    let mk_records = || {
        let mut records: Vec<LogRecord> = beacon_events().iter().map(record_from_event).collect();
        for i in 0..60u64 {
            records.push(LogRecord::new(
                50_000 + i * 45,
                "patient-zero",
                "poison-c2.example.net",
                format!("{:x}", i * 7919 % 0xFFFF),
            ));
        }
        records
    };

    let clean = quiet_engine().analyze(mk_records());
    assert!(clean.faults.is_clean());
    assert!(
        clean.ranked.len() >= HOSTS as usize / 2,
        "expected most beacons ranked, got {}",
        clean.ranked.len()
    );

    let poison = format!(
        "{:?}",
        CommunicationPair::new("patient-zero", "poison-c2.example.net")
    );
    let plan = Arc::new(FaultPlan::new().poison_key(&poison).panic_on_map_call(3));
    let mut engine = quiet_engine();
    engine.arm_fault_plan(Arc::clone(&plan));
    let faulted = engine.analyze(mk_records());

    // The run completed and the damage is accounted for.
    assert!(plan.injected_faults() > 0, "the plan never fired");
    assert!(!faulted.faults.is_clean());
    assert!(
        faulted.faults.map_retries >= 1,
        "transient panic not retried"
    );
    assert_eq!(faulted.stats.quarantined_pairs, 1);
    assert_eq!(faulted.stats.skipped_events, 60, "poison pair's records");
    let funnel = render_funnel(&faulted);
    assert!(funnel.contains("quarantined pairs"));
    assert!(funnel.contains("degraded mode"));

    // Exactly the poison pair is missing...
    let dests = |r: &AnalysisReport| -> BTreeSet<String> {
        r.ranked
            .iter()
            .map(|rc| rc.case.pair.destination.clone())
            .collect()
    };
    let mut expected = dests(&clean);
    expected.remove("poison-c2.example.net");
    assert_eq!(dests(&faulted), expected);

    // ...and every surviving pair's evidence block is byte-identical.
    for dest in &expected {
        assert_eq!(
            evidence(&faulted, dest),
            evidence(&clean, dest),
            "evidence for {dest} changed under fault injection"
        );
    }
}

/// 5% seeded ELFF line corruption (plus a transient task panic) flows
/// through lenient ingest and [`Baywatch::analyze_outcome`]: malformed
/// lines are counted exactly, analysis completes, and pairs that lost no
/// events rank byte-identically to the clean run.
#[test]
fn corrupted_elff_ingest_degrades_without_losing_untouched_pairs() {
    let events = beacon_events();
    let clean_elff = to_elff(&events);

    let clean_outcome = read_elff(clean_elff.as_bytes()).unwrap();
    assert_eq!(clean_outcome.malformed_lines, 0);
    assert_eq!(
        clean_outcome.records.len(),
        (HOSTS * EVENTS_PER_PAIR) as usize
    );
    let clean_counts = pair_counts(&clean_outcome.records);
    let clean_report = quiet_engine().analyze_outcome(clean_outcome);
    assert!(
        clean_report.ranked.len() >= HOSTS as usize / 2,
        "expected most beacons ranked, got {}",
        clean_report.ranked.len()
    );

    // Corrupt the first six hosts' section of the log; appending the
    // second section untouched guarantees hosts 6..12 lose nothing, so the
    // byte-identity assertion below can never be vacuous.
    let (first, second): (Vec<ProxyEvent>, Vec<ProxyEvent>) = events
        .into_iter()
        .partition(|e| u64::from(e.host.0) < HOSTS / 2);
    let mut rng = StdRng::seed_from_u64(0xBA1_D0C);
    let (mut corrupted, damaged) = corrupt_elff_lines(&to_elff(&first), 0.05, &mut rng);
    corrupted.extend_from_slice(to_elff(&second).as_bytes());
    assert!(damaged > 0, "seed produced no damage at 5% over 480 lines");

    let outcome = read_elff(corrupted.as_slice()).unwrap();
    assert_eq!(
        outcome.malformed_lines, damaged,
        "every damaged line must fail parsing"
    );
    assert_eq!(
        outcome.records.len(),
        (HOSTS * EVENTS_PER_PAIR) as usize - damaged
    );
    let corrupt_counts = pair_counts(&outcome.records);

    let mut engine = quiet_engine();
    engine.arm_fault_plan(Arc::new(FaultPlan::new().panic_on_map_call(7)));
    let report = engine.analyze_outcome(outcome);

    // Degradation is visible end to end: exact malformed count, bounded
    // samples, the transient panic retried, nothing quarantined.
    assert_eq!(report.stats.malformed_lines, damaged);
    assert_eq!(report.malformed_samples.len(), damaged.min(64));
    assert!(report.faults.map_retries >= 1);
    assert_eq!(report.stats.quarantined_pairs, 0);
    assert!(render_funnel(&report).contains("malformed lines"));

    // The population itself survives 5% line loss (no source vanishes).
    assert_eq!(
        report.popularity_total_sources,
        clean_report.popularity_total_sources
    );

    // Pairs with zero damaged lines must rank byte-identically.
    let unaffected: Vec<&(String, String)> = clean_counts
        .iter()
        .filter(|(pair, n)| corrupt_counts.get(pair) == Some(n))
        .map(|(pair, _)| pair)
        .collect();
    assert!(
        unaffected.len() >= HOSTS as usize / 2,
        "hosts 6..12 are untouched by construction"
    );
    let mut verified = 0usize;
    for (_, dest) in &unaffected {
        if let Some(clean_evidence) = evidence(&clean_report, dest) {
            assert_eq!(
                evidence(&report, dest).as_ref(),
                Some(&clean_evidence),
                "evidence for untouched pair {dest} changed under corruption"
            );
            verified += 1;
        }
    }
    assert!(verified >= 1, "no untouched pair was ranked in both runs");
}

/// Deterministic *delay* injection: a straggler reduce key (persistent
/// sleep) plus a transient slow map call, run under an armed per-task
/// deadline. The straggler pair is quarantined as `timed_out` — not as a
/// panic — with exact counts, the transient slowdown is absorbed by
/// speculative re-execution without losing a record, and every unaffected
/// pair's evidence is byte-identical to a deadline-free run.
#[test]
fn task_deadline_quarantines_straggler_pair_and_preserves_the_rest() {
    let mk_records = || {
        let mut records: Vec<LogRecord> = beacon_events().iter().map(record_from_event).collect();
        for i in 0..60u64 {
            records.push(LogRecord::new(
                50_000 + i * 60,
                "sleeper",
                "slow-c2.example.org",
                format!("{:x}", i * 104_729 % 0xFFFF),
            ));
        }
        records
    };
    // Analyze at a coarse time scale so every honest task finishes far
    // under the deadline even in debug builds: only the injected sleeps
    // can overrun it.
    let base_config = || {
        let mut config = BaywatchConfig {
            local_tau: 0.9,
            time_scale: 30,
            ..Default::default()
        };
        // The detector bins at its own scale; coarsen it too so per-pair
        // detection is a few hundred bins, not tens of thousands.
        config.detector.time_scale = 30;
        config
    };

    let clean = Baywatch::new(base_config()).analyze(mk_records());
    assert!(clean.faults.is_clean());
    assert!(
        evidence(&clean, "slow-c2.example.org").is_some(),
        "the straggler pair is a perfectly good beacon when nothing sleeps"
    );

    let straggler = format!(
        "{:?}",
        CommunicationPair::new("sleeper", "slow-c2.example.org")
    );
    let plan = Arc::new(
        FaultPlan::new()
            .delay_key(&straggler, 5_000)
            .delay_map_call(5, 5_000),
    );
    let mut engine = Baywatch::new(BaywatchConfig {
        budget: PipelineBudget {
            window_millis: None,
            task_deadline_millis: Some(2_000),
        },
        ..base_config()
    });
    engine.arm_fault_plan(Arc::clone(&plan));
    let faulted = engine.analyze(mk_records());

    // Both injected delays fired: the persistent one once (its key was
    // quarantined at extraction, so detection never re-runs it), the
    // transient one once (bisection re-runs skip the spent call number).
    assert_eq!(plan.injected_faults(), 2);

    // Exact timed-out accounting, distinct from panics and quarantines.
    assert!(!faulted.faults.is_clean());
    assert_eq!(faulted.faults.timed_out_keys, 1);
    assert_eq!(faulted.faults.timed_out_inputs, 0);
    assert_eq!(faulted.stats.timed_out_pairs, 1);
    assert_eq!(faulted.stats.quarantined_pairs, 0);
    assert_eq!(faulted.stats.skipped_events, 60, "straggler pair's records");
    assert!(faulted
        .faults
        .timeout_samples
        .iter()
        .any(|s| s.contains("sleeper")));
    assert!(faulted.faults.panic_samples.is_empty(), "nothing panicked");
    assert!(
        faulted.faults.map_retries >= 1,
        "slow map slice not speculatively re-run"
    );
    let funnel = render_funnel(&faulted);
    assert!(funnel.contains("timed-out pairs (budget)"));
    assert!(funnel.contains("degraded mode"));
    assert!(funnel.contains("1 timed-out pair(s)"));

    // Exactly the straggler pair is missing...
    let dests = |r: &AnalysisReport| -> BTreeSet<String> {
        r.ranked
            .iter()
            .map(|rc| rc.case.pair.destination.clone())
            .collect()
    };
    let mut expected = dests(&clean);
    expected.remove("slow-c2.example.org");
    assert_eq!(dests(&faulted), expected);

    // ...and every surviving pair's evidence block is byte-identical.
    for dest in &expected {
        assert_eq!(
            evidence(&faulted, dest),
            evidence(&clean, dest),
            "evidence for {dest} changed under delay injection"
        );
    }
}

/// The acceptance scenario for deadline-aware execution: a netsim
/// pathological pair (sparse strided series, ~700k bins at scale 1) in the
/// window with a per-pair ops budget armed. The run completes inside a
/// generous window budget without shedding, the pathological pair lands in
/// the `timed_out` accounting, and every other pair's ranked evidence is
/// byte-identical to an unbudgeted run.
#[test]
fn per_pair_budget_cuts_off_pathological_pair_and_preserves_the_rest() {
    // The pathological pair reuses host 0's source, so the source
    // population — and with it every popularity value downstream — is
    // identical whether or not the pair's records are present.
    let slow_source = HostId(0).to_string();
    let slow_records: Vec<LogRecord> = pathological_sparse_beacon(50_000, 300, 2_333)
        .into_iter()
        .map(|t| LogRecord::new(t, slow_source.clone(), "pathological-dest.biz", "x"))
        .collect();

    let base_records: Vec<LogRecord> = beacon_events().iter().map(record_from_event).collect();
    let reference = quiet_engine().analyze(base_records.clone());
    assert!(reference.faults.is_clean());
    assert!(
        reference.ranked.len() >= HOSTS as usize / 2,
        "expected most beacons ranked, got {}",
        reference.ranked.len()
    );

    let mut full = base_records;
    full.extend(slow_records);

    let mut config = BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    };
    // 800k ops: every normal pair finishes far under it; the pathological
    // series charges ~697k for its periodogram alone and trips at the
    // first permutation round's checkpoint.
    config.detector.budget.max_ops = Some(800_000);
    config.budget.window_millis = Some(300_000);
    let started = std::time::Instant::now();
    let report = Baywatch::new(config).analyze(full);
    assert!(
        started.elapsed() < std::time::Duration::from_millis(300_000),
        "budgeted run must complete within the window budget"
    );

    // The pathological pair is accounted for as timed out, nothing was
    // shed, and it never reaches the ranked list.
    assert_eq!(report.stats.timed_out_pairs, 1);
    assert_eq!(report.stats.shed_pairs, 0);
    assert_eq!(report.stats.quarantined_pairs, 0);
    let funnel = render_funnel(&report);
    assert!(funnel.contains("timed-out pairs (budget)"));
    assert!(funnel.contains("degraded mode"));
    assert!(report
        .ranked
        .iter()
        .all(|rc| rc.case.pair.destination != "pathological-dest.biz"));

    // Every other pair ranks with byte-identical evidence.
    assert_eq!(
        report.popularity_total_sources,
        reference.popularity_total_sources
    );
    let dests: BTreeSet<String> = reference
        .ranked
        .iter()
        .map(|rc| rc.case.pair.destination.clone())
        .collect();
    assert_eq!(
        report
            .ranked
            .iter()
            .map(|rc| rc.case.pair.destination.clone())
            .collect::<BTreeSet<String>>(),
        dests
    );
    for dest in &dests {
        assert_eq!(
            evidence(&report, dest),
            evidence(&reference, dest),
            "evidence for {dest} changed under the per-pair budget"
        );
    }
}

/// Timestamp skew, duplicated events, and out-of-order delivery — the
/// event-level fault model — are absorbed semantically: duplicates collapse
/// in the activity summaries and skewed beacons still verify as periodic.
#[test]
fn skewed_duplicated_out_of_order_events_are_absorbed() {
    let events = beacon_events();
    let cfg = CorruptionConfig {
        line_corruption_rate: 0.0,
        duplicate_rate: 0.05,
        max_skew_seconds: 2,
    };
    let perturbed = skew_and_duplicate(&events, &cfg, &mut StdRng::seed_from_u64(11));
    assert!(perturbed.len() > events.len(), "some duplicates expected");

    let mut records: Vec<LogRecord> = perturbed.iter().map(record_from_event).collect();
    // Force out-of-order delivery on top of the skew.
    records.reverse();

    let mut engine = quiet_engine();
    let report = engine.analyze(records);

    assert!(
        report.faults.is_clean(),
        "event-level damage is not a task fault"
    );
    assert_eq!(report.stats.events, perturbed.len());
    assert_eq!(report.stats.pairs, HOSTS as usize);
    let detected = report
        .ranked
        .iter()
        .filter(|rc| rc.case.pair.destination.starts_with("zxq"))
        .count();
    assert!(
        detected >= HOSTS as usize / 2,
        "only {detected}/{HOSTS} skewed beacons still detected"
    );
}

/// The checkpoint/resume contract (durable hunts): a run killed mid-window
/// and resumed by a fresh engine — a new process, as far as the pipeline
/// can tell — produces a report *byte-identical* to an uninterrupted run:
/// same funnel, same fault tallies, same metrics export, same top-K JSON.
#[test]
fn interrupted_hunt_resumes_byte_identically() {
    use baywatch::core::checkpoint::CheckpointSpec;
    use baywatch::core::report::export_json;

    let records: Vec<LogRecord> = beacon_events().iter().map(record_from_event).collect();
    let base = std::env::temp_dir().join(format!("baywatch-resume-{}", std::process::id()));
    let spec = |leaf: &str| CheckpointSpec {
        shard_size: 4,
        ..CheckpointSpec::new(base.join(leaf))
    };

    // Reference: an uninterrupted checkpointed run.
    let mut full_engine = quiet_engine();
    let full = full_engine
        .analyze_checkpointed(records.clone(), &spec("full"))
        .unwrap();
    let outcome = full.checkpoint.unwrap();
    assert_eq!(outcome.executed_shards, outcome.total_shards);
    assert!(outcome.total_shards >= 3, "want a multi-shard plan");
    assert!(!outcome.interrupted);

    // Kill a second run after one shard…
    let killed_spec = CheckpointSpec {
        abort_after_shards: Some(1),
        ..spec("killed")
    };
    let killed = quiet_engine()
        .analyze_checkpointed(records.clone(), &killed_spec)
        .unwrap();
    let killed_outcome = killed.checkpoint.unwrap();
    assert!(killed_outcome.interrupted);
    assert_eq!(killed_outcome.executed_shards, 1);
    assert!(
        killed.stats.periodic < full.stats.periodic,
        "the kill must actually cut the window short"
    );

    // …and resume it with a fresh engine.
    let resume_spec = CheckpointSpec {
        resume: true,
        ..spec("killed")
    };
    let mut resumed_engine = quiet_engine();
    let resumed = resumed_engine
        .analyze_checkpointed(records, &resume_spec)
        .unwrap();
    let resumed_outcome = resumed.checkpoint.unwrap();
    assert!(!resumed_outcome.interrupted);
    assert_eq!(resumed_outcome.resumed_shards, 1);
    assert_eq!(
        resumed_outcome.executed_shards,
        resumed_outcome.total_shards - 1
    );
    assert_eq!(resumed_outcome.load_warnings, 0);

    assert_eq!(render_funnel(&resumed), render_funnel(&full));
    assert_eq!(
        export_json(&resumed, &resumed_engine.metrics_snapshot(), 10),
        export_json(&full, &full_engine.metrics_snapshot(), 10),
        "resumed run must export byte-identically to the uninterrupted run"
    );

    std::fs::remove_dir_all(&base).ok();
}

/// The replayable dead-letter queue: a pair that exhausted its per-pair
/// budget lands in the DLQ with provenance; a later resume pass replays it
/// under a larger budget and re-admits it with exact funnel accounting.
#[test]
fn dlq_replay_under_larger_budget_readmits_quarantined_pair() {
    use baywatch::core::checkpoint::CheckpointSpec;
    use baywatch::timeseries::BudgetSpec;

    let slow_source = HostId(0).to_string();
    let slow_records: Vec<LogRecord> = pathological_sparse_beacon(50_000, 300, 2_333)
        .into_iter()
        .map(|t| LogRecord::new(t, slow_source.clone(), "pathological-dest.biz", "x"))
        .collect();
    let mut records: Vec<LogRecord> = beacon_events().iter().map(record_from_event).collect();
    records.extend(slow_records);

    let dir = std::env::temp_dir().join(format!("baywatch-dlq-{}", std::process::id()));
    let mut config = BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    };
    // Same ceiling as the budget test above: normal pairs clear it easily,
    // the pathological series trips its first permutation checkpoint.
    config.detector.budget.max_ops = Some(800_000);

    // First pass: the pathological pair exhausts its budget → DLQ.
    let first = Baywatch::new(config.clone())
        .analyze_checkpointed(
            records.clone(),
            &CheckpointSpec {
                shard_size: 4,
                ..CheckpointSpec::new(&dir)
            },
        )
        .unwrap();
    assert_eq!(first.stats.timed_out_pairs, 1);
    let outcome = first.checkpoint.unwrap();
    assert_eq!(outcome.dlq_entries, 1);
    assert_eq!(outcome.dlq_replayed, 0);

    // Second pass in a fresh engine: resume the completed shards, replay
    // the DLQ without a ceiling.
    let second = Baywatch::new(config)
        .analyze_checkpointed(
            records,
            &CheckpointSpec {
                resume: true,
                replay_budget: Some(BudgetSpec::UNLIMITED),
                shard_size: 4,
                ..CheckpointSpec::new(&dir)
            },
        )
        .unwrap();
    let outcome = second.checkpoint.unwrap();
    assert_eq!(outcome.resumed_shards, outcome.total_shards);
    assert_eq!(outcome.executed_shards, 0);
    assert_eq!(outcome.dlq_entries, 1);
    assert_eq!(outcome.dlq_replayed, 1);
    assert_eq!(outcome.dlq_recovered, 1);
    // Exact funnel accounting: the recovery cancels the original timeout.
    assert_eq!(second.stats.dlq_replayed, 1);
    assert_eq!(second.stats.dlq_recovered, 1);
    assert_eq!(second.stats.timed_out_pairs, 0);
    let funnel = render_funnel(&second);
    assert!(funnel.contains("dlq pairs replayed"));
    assert!(funnel.contains("dlq pairs recovered"));

    std::fs::remove_dir_all(&dir).ok();
}

/// A flapping ELFF source (clean / 80%-corrupt alternating windows) must
/// walk its ingest breaker through the full recovery cycle with exact
/// accounting, and the run must be byte-reproducible: same seed, same
/// manual clock, same ledger, same transition log.
#[test]
fn flapping_source_recovers_with_exact_accounting() {
    use baywatch::core::io::IngestGuard;
    use baywatch::netsim::resilience::{flapping_source, FlappingConfig};
    use baywatch::obs::{Clock, ManualClock};
    use baywatch::resilience::BreakerConfig;

    let config = FlappingConfig {
        windows: 8,
        ..FlappingConfig::default()
    };

    let run = || {
        let clock = Arc::new(ManualClock::new());
        let mut guard = IngestGuard::new(
            BreakerConfig::default(),
            clock.clone() as Arc<dyn Clock>,
        );
        let mut ledger = Vec::new();
        let mut records = 0usize;
        for window in flapping_source(&config, 42) {
            let out = guard
                .read_elff_source("flapping-proxy", window.bytes.as_slice())
                .unwrap();
            // Per-window exactness: every offered line is either admitted
            // or rejected, and every admitted line either parsed or was
            // counted malformed.
            assert_eq!(out.offered_lines, out.admitted_lines + out.rejected_lines);
            assert_eq!(
                out.admitted_lines,
                out.outcome.records.len() + out.outcome.malformed_lines
            );
            records += out.outcome.records.len();
            ledger.push((
                window.index,
                window.bad,
                out.offered_lines,
                out.admitted_lines,
                out.rejected_lines,
                out.probe_lines,
                out.transitions.len(),
            ));
            clock.advance(config.window_seconds * 1_000_000_000);
        }
        (ledger, records, guard.stats())
    };

    let (ledger, records, stats) = run();

    // Every bad window trips the breaker open; every clean window that
    // follows recovers it through half-open probes. With 8 alternating
    // windows starting clean that is 4 trips and 3 completed recoveries
    // (the run ends on a bad window, so the final cycle never closes).
    assert_eq!(stats.opened, 4);
    assert_eq!(stats.half_opened, 3);
    assert_eq!(stats.closed, 3);
    assert!(stats.probes >= stats.half_opened);

    // Global ledger exactness across the whole run.
    let offered: usize = ledger.iter().map(|w| w.2).sum();
    let admitted: usize = ledger.iter().map(|w| w.3).sum();
    let rejected: usize = ledger.iter().map(|w| w.4).sum();
    assert_eq!(offered as u64, stats.admitted + stats.rejected);
    assert_eq!(offered, admitted + rejected);
    assert!(records > 0 && records <= admitted);

    // Clean windows after recovery admit everything; open-window lines
    // are rejected unparsed, never counted malformed.
    assert!(rejected > 0, "open breaker must have shed load");

    // Byte-for-byte reproducibility of the entire admission history.
    let (ledger2, records2, stats2) = run();
    assert_eq!(ledger, ledger2);
    assert_eq!(records, records2);
    assert_eq!(stats, stats2);
}
