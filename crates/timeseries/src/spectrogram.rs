//! Short-time spectral analysis (spectrogram) for on/off beaconing.
//!
//! Conficker-style malware (Fig. 2 of the paper) beacons in *episodes*:
//! ~2 minutes of 7–8 s callbacks, then hours of silence. A whole-window
//! periodogram dilutes the burst's spectral line with the silence; slicing
//! the series into segments and computing a periodogram per segment
//! localizes both *when* the channel is active and *at what frequency* —
//! complementing the GMM interval analysis of §IV with a time-resolved
//! view.

use crate::periodogram::Periodogram;
use crate::series::TimeSeries;
use crate::TimeSeriesError;

/// One time slice of the spectrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrogramFrame {
    /// Start of the slice (epoch seconds).
    pub start: u64,
    /// Number of events inside the slice.
    pub events: usize,
    /// Dominant period within the slice (seconds), if the slice had
    /// enough signal.
    pub dominant_period: Option<f64>,
    /// Power of the dominant period.
    pub peak_power: f64,
    /// Total spectral energy of the slice.
    pub energy: f64,
}

/// A time-resolved spectral view of a series.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    frames: Vec<SpectrogramFrame>,
    segment_seconds: u64,
}

impl Spectrogram {
    /// Computes a spectrogram by slicing `series` into consecutive
    /// segments of `segment_seconds` and running a periodogram per
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidConfig`] if `segment_seconds`
    /// is smaller than four bins of the series' scale.
    pub fn compute(series: &TimeSeries, segment_seconds: u64) -> Result<Self, TimeSeriesError> {
        let scale = series.scale();
        let seg_bins = (segment_seconds / scale) as usize;
        if seg_bins < 4 {
            return Err(TimeSeriesError::InvalidConfig {
                name: "segment_seconds",
                constraint: "must cover at least 4 series bins",
            });
        }
        let values = series.values();
        let mut frames = Vec::with_capacity(values.len() / seg_bins + 1);
        for (i, chunk) in values.chunks(seg_bins).enumerate() {
            if chunk.len() < 4 {
                break;
            }
            let events = chunk.iter().map(|&v| v.max(0.0) as usize).sum();
            // Mean-center the chunk independently.
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let centered: Vec<f64> = chunk.iter().map(|v| v - mean).collect();
            let pg = Periodogram::from_samples(&centered, scale as f64);
            let peak = pg.max_line();
            frames.push(SpectrogramFrame {
                start: series.start() + (i * seg_bins) as u64 * scale,
                events,
                dominant_period: peak.map(|l| l.period),
                peak_power: peak.map(|l| l.power).unwrap_or(0.0),
                energy: pg.total_energy(),
            });
        }
        Ok(Self {
            frames,
            segment_seconds,
        })
    }

    /// The frames in time order.
    pub fn frames(&self) -> &[SpectrogramFrame] {
        &self.frames
    }

    /// Segment length in seconds.
    pub fn segment_seconds(&self) -> u64 {
        self.segment_seconds
    }

    /// Frames whose event count is at least `min_events` — the *active
    /// episodes* of an on/off channel.
    pub fn active_frames(&self, min_events: usize) -> Vec<&SpectrogramFrame> {
        self.frames
            .iter()
            .filter(|f| f.events >= min_events)
            .collect()
    }

    /// Duty cycle: fraction of frames with at least `min_events` events.
    pub fn duty_cycle(&self, min_events: usize) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.active_frames(min_events).len() as f64 / self.frames.len() as f64
    }

    /// The median dominant period across active frames — the *intra-burst*
    /// period of an on/off channel (7–8 s for Conficker), robust to the
    /// odd silent or noisy frame.
    pub fn burst_period(&self, min_events: usize) -> Option<f64> {
        let mut periods: Vec<f64> = self
            .active_frames(min_events)
            .iter()
            .filter_map(|f| f.dominant_period)
            .collect();
        if periods.is_empty() {
            return None;
        }
        periods.sort_by(f64::total_cmp);
        Some(periods[periods.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    /// Conficker-like: bursts of 8 s beacons, long silences.
    fn on_off_series() -> TimeSeries {
        let mut ts = Vec::new();
        let mut t = 0u64;
        for _ in 0..6 {
            for _ in 0..16 {
                ts.push(t);
                t += 8;
            }
            t += 1_800; // 30-minute silence
        }
        TimeSeries::from_timestamps(&ts, 1).unwrap()
    }

    #[test]
    fn localizes_bursts_in_time() {
        let series = on_off_series();
        let sg = Spectrogram::compute(&series, 128).unwrap();
        let active = sg.active_frames(8);
        assert!(
            (5..=8).contains(&active.len()),
            "expected ~6 active frames, got {}",
            active.len()
        );
        // On/off channel: low duty cycle.
        let duty = sg.duty_cycle(8);
        assert!(duty < 0.2, "duty = {duty}");
    }

    #[test]
    fn recovers_intra_burst_period() {
        let series = on_off_series();
        let sg = Spectrogram::compute(&series, 128).unwrap();
        let p = sg.burst_period(8).expect("bursts have a period");
        // An impulse train spreads power over its harmonics, so any
        // divisor of the 8 s beat is a legitimate per-frame peak; it must
        // be harmonically related and no slower than the beat itself.
        let ratio = 8.0 / p;
        assert!(
            p <= 9.0 && (ratio - ratio.round()).abs() < 0.15,
            "burst period = {p}"
        );
    }

    #[test]
    fn steady_beacon_full_duty_cycle() {
        let ts: Vec<u64> = (0..600).map(|i| i * 10).collect();
        let series = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let sg = Spectrogram::compute(&series, 600).unwrap();
        assert!(sg.duty_cycle(10) > 0.9);
        let p = sg.burst_period(10).unwrap();
        let ratio = 10.0 / p;
        assert!(
            (ratio - ratio.round()).abs() < 0.1,
            "period {p} not harmonically related to 10"
        );
    }

    #[test]
    fn segment_too_small_rejected() {
        let series = on_off_series();
        assert!(Spectrogram::compute(&series, 2).is_err());
        let coarse = series.rescale(60).unwrap();
        assert!(Spectrogram::compute(&coarse, 120).is_err()); // 2 bins only
    }

    #[test]
    fn frames_cover_series_in_order() {
        let series = on_off_series();
        let sg = Spectrogram::compute(&series, 256).unwrap();
        assert!(!sg.frames().is_empty());
        assert_eq!(sg.segment_seconds(), 256);
        for w in sg.frames().windows(2) {
            assert_eq!(w[1].start - w[0].start, 256);
        }
        assert!(sg.frames().iter().all(|f| f.energy >= 0.0));
    }

    #[test]
    fn empty_activity_no_burst_period() {
        let series = TimeSeries::from_values(0, 1, vec![0.0; 512]).unwrap();
        let sg = Spectrogram::compute(&series, 128).unwrap();
        assert_eq!(sg.duty_cycle(1), 0.0);
        assert!(sg.burst_period(1).is_none());
    }
}
