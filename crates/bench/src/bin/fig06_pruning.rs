//! Fig. 6 — pruning using statistical features (the TDSS bot example).
//!
//! The paper's table lists five periodogram candidates for a TDSS trace
//! (periods 30.5, 2.37, 387.3, 8.8, 33.2 s); the minimum observed interval
//! of 196 s eliminates every high-frequency artifact, and the one-sample
//! t-test keeps only the true ≈387 s period. This binary reproduces that
//! funnel on a TDSS-style trace and on the paper's literal candidate table.

#![warn(clippy::unwrap_used)]

use baywatch_bench::{f, render_table, save_json};
use baywatch_netsim::synth::tdss_like;
use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};
use baywatch_timeseries::periodogram::SpectralLine;
use baywatch_timeseries::prune::{prune_candidates, PruneConfig, PruneReason};

fn reason_str(r: &Option<PruneReason>) -> String {
    match r {
        None => "KEEP".into(),
        Some(PruneReason::BelowMinInterval { min_interval }) => {
            format!("high-freq (< min interval {min_interval:.0}s)")
        }
        Some(PruneReason::HypothesisRejected { p_value }) => {
            format!("t-test rejected (p = {p_value:.4})")
        }
        Some(PruneReason::UnderSampled { cycles }) => format!("under-sampled ({cycles:.1} cycles)"),
        Some(PruneReason::LowSupport { support }) => format!("low support ({support:.2})"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 6: pruning using statistical features (TDSS bot) ===\n");

    // ---- Part 1: the paper's literal candidate table. -----------------
    println!("--- paper's candidate table, replayed through our pruner ---");
    let mk = |period: f64, power: f64| SpectralLine {
        bin: 0,
        frequency: 1.0 / period,
        period,
        power,
    };
    let paper_candidates = [
        mk(30.5473, 245.9),
        mk(2.36615, 236.4),
        mk(387.34, 230.1),
        mk(8.8351, 223.5),
        mk(33.1626, 217.7),
    ];
    // The paper's interval list (Fig. 6(b)) has minimum 196 s and values
    // clustered near 390 s with occasional outages.
    let paper_intervals = [
        404.0, 663.0, 400.0, 362.0, 1933.0, 445.0, 407.0, 423.0, 372.0, 395.0, 362.0, 400.0, 369.0,
        822.0, 5512.0, 196.0, 1023.0, 635.0, 817.0, 919.0, 492.0, 423.0, 391.0, 442.0, 759.0,
    ];
    let span: f64 = paper_intervals.iter().sum();
    let decisions = prune_candidates(
        &paper_candidates,
        &paper_intervals,
        span,
        &PruneConfig::default(),
    )?;
    let rows: Vec<Vec<String>> = decisions
        .iter()
        .map(|d| {
            vec![
                f(d.line.frequency, 4),
                f(d.line.period, 4),
                f(d.line.power, 1),
                d.p_value.map(|p| f(p, 4)).unwrap_or_else(|| "-".into()),
                reason_str(&d.rejected),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["freq (Hz)", "period (s)", "power", "p-value", "decision"],
            &rows
        )
    );
    let survivors: Vec<f64> = decisions
        .iter()
        .filter(|d| d.survived())
        .map(|d| d.line.period)
        .collect();
    println!("survivors: {survivors:?}  (paper: only 387.34)\n");
    assert_eq!(survivors, vec![387.34]);

    // ---- Part 2: full Step-1 → Step-2 run on a synthetic TDSS trace. ---
    println!("--- end-to-end candidates on a synthetic TDSS-style trace ---");
    let ts = tdss_like(0, 300, 11);
    let detector = PeriodicityDetector::new(DetectorConfig::default());
    let report = detector.detect(&ts)?;
    let min_interval = report
        .intervals
        .iter()
        .copied()
        .filter(|&i| i > 0.0)
        .fold(f64::INFINITY, f64::min);
    println!(
        "{} events, min interval {min_interval:.0} s, permutation threshold {:.2}",
        ts.len(),
        report.power_threshold
    );
    let rows: Vec<Vec<String>> = report
        .prune_decisions
        .iter()
        .map(|d| {
            vec![
                f(d.line.period, 2),
                f(d.line.power, 2),
                d.p_value.map(|p| f(p, 4)).unwrap_or_else(|| "-".into()),
                reason_str(&d.rejected),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["period (s)", "power", "p-value", "decision"], &rows)
    );
    println!("verified periods after ACF (Step 3):");
    for c in &report.candidates {
        println!(
            "  period {:.1} s  power {:.2}  ACF score {:.2}",
            c.period, c.power, c.acf_score
        );
    }
    assert!(report
        .candidates
        .iter()
        .any(|c| (c.period - 395.0).abs() < 30.0));

    save_json(
        "fig06_pruning",
        &report
            .candidates
            .iter()
            .map(|c| (c.period, c.power, c.acf_score))
            .collect::<Vec<_>>(),
    );
    Ok(())
}
