//! Table V — example cases found in the long trace.
//!
//! Paper (5-month trace, top-50 investigation): confirmed malicious
//! destinations with smallest periods between 30 s and 929 s and 1–19
//! clients each, DGA-style names (`cdn.5f75b1c54f8[..]2d4.com`, …).
//!
//! This binary runs the full pipeline daily over a multi-week simulated
//! trace and prints the same three columns — domain, smallest period,
//! client count — for every reported destination, with ground-truth
//! confirmation in place of the paper's manual investigation.

#![warn(clippy::unwrap_used)]

use std::collections::{HashMap, HashSet};

use baywatch_bench::{render_table, save_json};
use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
use baywatch_core::record::LogRecord;
use baywatch_netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};

fn main() {
    println!("=== Table V: example cases found in the long trace ===\n");

    let sim = EnterpriseSimulator::new(EnterpriseConfig {
        hosts: 150,
        days: 14,
        infection_rate: 0.08,
        seed: 0x7AB1E5,
        ..Default::default()
    });
    let truth = sim.ground_truth();
    println!(
        "{} hosts, {} days, {} campaigns\n",
        sim.config().hosts,
        sim.config().days,
        sim.campaigns().len()
    );

    let mut engine = Baywatch::new(BaywatchConfig {
        local_tau: 0.05,
        ..Default::default()
    });

    // domain -> (smallest period seen, distinct clients)
    let mut found: HashMap<String, (f64, HashSet<String>)> = HashMap::new();
    for day in 0..sim.config().days {
        let records: Vec<LogRecord> = sim
            .generate_day(day)
            .iter()
            .map(|e| {
                LogRecord::new(
                    e.timestamp,
                    e.host.to_string(),
                    e.domain.clone(),
                    e.url_path.clone(),
                )
            })
            .collect();
        let report = engine.analyze(records);
        for rc in &report.ranked {
            let entry = found
                .entry(rc.case.pair.destination.clone())
                .or_insert((f64::INFINITY, HashSet::new()));
            if let Some(p) = rc.case.smallest_period() {
                entry.0 = entry.0.min(p);
            }
            entry.1.insert(rc.case.pair.source.clone());
        }
    }

    let mut rows: Vec<(String, f64, usize, bool)> = found
        .into_iter()
        .map(|(d, (p, clients))| {
            let malicious = truth.is_malicious(&d);
            (d, p, clients.len(), malicious)
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(d, p, c, m)| {
            let shown = if d.len() > 34 {
                format!("{}[..]{}", &d[..14], &d[d.len() - 8..])
            } else {
                d.clone()
            };
            vec![
                shown,
                format!("{:.0} seconds", p),
                c.to_string(),
                if *m {
                    "CONFIRMED (ground truth)"
                } else {
                    "false positive"
                }
                .into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Domain name", "Smallest period", "Clients", "verdict"],
            &table
        )
    );

    let confirmed = rows.iter().filter(|(_, _, _, m)| *m).count();
    println!(
        "{}/{} flagged destinations confirmed malicious \
         (paper: 48/50 = 96% of top-ranked)",
        confirmed,
        rows.len()
    );
    println!(
        "period range among confirmed: {:.0}–{:.0} s (paper: 30–929 s)",
        rows.iter()
            .filter(|(_, _, _, m)| *m)
            .map(|r| r.1)
            .fold(f64::INFINITY, f64::min),
        rows.iter()
            .filter(|(_, _, _, m)| *m)
            .map(|r| r.1)
            .fold(0.0, f64::max),
    );

    assert!(confirmed >= 1, "at least one campaign must be confirmed");
    // Precision shape: the large majority of flagged destinations are
    // truly malicious, as in the paper's 96%.
    assert!(
        confirmed * 10 >= rows.len() * 6,
        "precision below the paper's band: {confirmed}/{}",
        rows.len()
    );

    save_json(
        "table05_cases",
        &rows
            .iter()
            .map(|(d, p, c, m)| (d.clone(), *p, *c, *m))
            .collect::<Vec<_>>(),
    );
}
