//! Shared harness code for the experiment binaries that regenerate the
//! tables and figures of the BAYWATCH paper (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results).
//!
//! Binaries live in `src/bin/` — one per table/figure:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig05_permutation` | Fig. 5 — permutation-based power threshold |
//! | `fig06_pruning` | Fig. 6 — candidate pruning on a TDSS-style bot |
//! | `fig07_gmm` | Fig. 7 — GMM multi-period detection + BIC |
//! | `fig10_noise` | Fig. 10(a–d) — noise-robustness sweeps |
//! | `fig11_uncertainty` | Fig. 11 — FN vs cases examined |
//! | `table03_volumes` | Table III — data volumes (scaled) |
//! | `table04_confusion` | Table IV — classifier confusion matrix |
//! | `table05_cases` | Table V — example cases in the long trace |
//! | `table06_top5` | Table VI — top-5 cases in the 10-day trace |
//! | `scalability` | §VIII-B2 — runtime vs pair count |
//! | `lm_scores` | §V-C worked example — LM domain scores |
//!
//! Run one with `cargo run --release -p baywatch-bench --bin fig06_pruning`
//! or everything with the `all_experiments` binary.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::io::Write as _;
use std::path::PathBuf;

pub mod bootstrap;

/// Renders a Markdown-style table to a string.
///
/// # Example
///
/// ```
/// let t = baywatch_bench::render_table(
///     &["period", "power"],
///     &[vec!["387.34".into(), "230.1".into()]],
/// );
/// assert!(t.contains("| period "));
/// assert!(t.contains("| 387.34 "));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Where experiment outputs (JSON) are written: `<workspace>/results/`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("BAYWATCH_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Saves a serializable result under `results/<name>.json` and announces
/// the path on stdout. Failures to write are reported, not fatal — the
/// console output is the primary artifact.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Ok(s) = serde_json::to_string_pretty(value) {
                if f.write_all(s.as_bytes()).is_ok() {
                    println!("[saved {}]", path.display());
                    return;
                }
            }
            eprintln!("warning: failed to serialize {name}");
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Formats a float with fixed precision for table cells.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(2.345, 2), "2.35");
        assert_eq!(f(1.0, 0), "1");
    }

    #[test]
    fn save_json_roundtrip() {
        std::env::set_var("BAYWATCH_RESULTS_DIR", std::env::temp_dir().join("bw-test"));
        save_json("unit-test", &vec![1, 2, 3]);
        let path = results_dir().join("unit-test.json");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains('1'));
        std::env::remove_var("BAYWATCH_RESULTS_DIR");
    }
}
