//! Enterprise hunt: simulate a corporate network for a week, run BAYWATCH
//! daily (as the paper operates it, §VIII-B2), and score the findings
//! against ground truth.
//!
//! ```text
//! cargo run --release --example enterprise_hunt
//! ```
//!
//! Pass `--json` to additionally emit the machine-readable observability
//! export for the final day — the funnel, fault report, metrics snapshot
//! and ranked top-K as one stable JSON document (the same schema the
//! golden-run suite pins; see README "Observability"):
//!
//! ```text
//! cargo run --release --example enterprise_hunt -- --json
//! ```
//!
//! Durable hunts: `--checkpoint-dir DIR` persists each day's detection
//! phase shard-by-shard under `DIR/day_NN`, so an interrupted hunt loses
//! at most one shard of work. Re-run with `--resume` to pick up where the
//! interrupted run stopped (the resumed report is byte-identical to an
//! uninterrupted one), and add `--replay-dlq` to re-run dead-letter-queue
//! pairs — budget-exhausted or quarantined ones — under 4× the configured
//! per-pair budget:
//!
//! ```text
//! cargo run --release --example enterprise_hunt -- --checkpoint-dir /tmp/hunt
//! cargo run --release --example enterprise_hunt -- --checkpoint-dir /tmp/hunt --resume --replay-dlq
//! ```

#![warn(clippy::unwrap_used)]

use std::collections::HashSet;

use baywatch::core::checkpoint::CheckpointSpec;
use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::report::export_json;
use baywatch::netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use baywatch::record_from_event;
use baywatch::timeseries::BudgetSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let emit_json = args.iter().any(|a| a == "--json");
    let resume = args.iter().any(|a| a == "--resume");
    let replay_dlq = args.iter().any(|a| a == "--replay-dlq");
    let checkpoint_dir = args
        .iter()
        .position(|a| a == "--checkpoint-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if (resume || replay_dlq) && checkpoint_dir.is_none() {
        eprintln!("--resume / --replay-dlq require --checkpoint-dir DIR");
        std::process::exit(2);
    }
    // ---- Simulate the enterprise. -------------------------------------
    let config = EnterpriseConfig {
        hosts: 150,
        days: 7,
        infection_rate: 0.06,
        ..Default::default()
    };
    let sim = EnterpriseSimulator::new(config);
    let truth = sim.ground_truth();
    println!(
        "simulated {} hosts, {} campaigns, {} infected hosts",
        sim.config().hosts,
        sim.campaigns().len(),
        truth.infected_host_count()
    );
    for c in sim.campaigns() {
        println!(
            "  campaign: {:?} -> {} ({} hosts, from day {})",
            c.profile,
            c.domain,
            c.hosts.len(),
            c.start_day
        );
    }

    // ---- Daily operation. ----------------------------------------------
    // τ_P = 5%: with 150 hosts, organizational services (update/AV pollers
    // subscribed by ~80% of machines) sit far above it, victim pools of
    // 1–5 hosts far below.
    let config = BaywatchConfig {
        local_tau: 0.05,
        ..Default::default()
    };
    // DLQ replay runs under 4× the per-pair detection budget (a limit of
    // `None` stays unlimited).
    let replay_budget = BudgetSpec {
        max_millis: config.detector.budget.max_millis.map(|m| m * 4),
        max_ops: config.detector.budget.max_ops.map(|o| o * 4),
    };
    let mut engine = Baywatch::new(config);

    let mut reported: HashSet<String> = HashSet::new();
    let mut flagged: HashSet<String> = HashSet::new();
    let mut last_report = None;
    for day in 0..sim.config().days {
        let events = sim.generate_day(day);
        let records = events.iter().map(record_from_event).collect();
        let report = match &checkpoint_dir {
            None => engine.analyze(records),
            Some(base) => {
                let spec = CheckpointSpec {
                    resume,
                    replay_budget: replay_dlq.then_some(replay_budget),
                    ..CheckpointSpec::new(base.join(format!("day_{day:02}")))
                };
                match engine.analyze_checkpointed(records, &spec) {
                    Ok(report) => report,
                    Err(err) => {
                        eprintln!("checkpoint I/O failed under {}: {err}", spec.dir.display());
                        std::process::exit(1);
                    }
                }
            }
        };
        let day_kind = if sim.is_weekend(day) {
            "weekend"
        } else {
            "weekday"
        };
        println!(
            "day {day} ({day_kind}): {} events, {} pairs, {} periodic, {} reported",
            report.stats.events, report.stats.pairs, report.stats.periodic, report.stats.reported
        );
        if let Some(ck) = &report.checkpoint {
            println!(
                "    checkpoint: {}/{} shards resumed, {} executed, dlq {} entries ({} replayed, {} recovered)",
                ck.resumed_shards,
                ck.total_shards,
                ck.executed_shards,
                ck.dlq_entries,
                ck.dlq_replayed,
                ck.dlq_recovered
            );
        }
        for rc in &report.ranked {
            flagged.insert(rc.case.pair.destination.clone());
        }
        for rc in report.reported() {
            println!(
                "    reported: {}  (score {:.2}, period {:?})",
                rc.case.pair,
                rc.score,
                rc.case.smallest_period().map(|p| p.round())
            );
            reported.insert(rc.case.pair.destination.clone());
        }
        last_report = Some(report);
    }

    // ---- Score against ground truth. -----------------------------------
    let true_hits: Vec<&String> = reported.iter().filter(|d| truth.is_malicious(d)).collect();
    let missed: Vec<&String> = truth
        .malicious_domains
        .iter()
        .filter(|d| !flagged.contains(*d))
        .collect();
    println!("\n--- verdict ---");
    println!(
        "reported {} distinct destinations above the 90th percentile; {} truly malicious, {} false alarms",
        reported.len(),
        true_hits.len(),
        reported.len() - true_hits.len()
    );
    let flagged_mal = truth
        .malicious_domains
        .iter()
        .filter(|d| flagged.contains(*d))
        .count();
    println!(
        "coverage: {}/{} malicious destinations flagged by the pipeline ({} of them top-ranked)",
        flagged_mal,
        truth.malicious_domains.len(),
        true_hits.len()
    );
    if !missed.is_empty() {
        println!("missed: {missed:?} (low-and-slow campaigns may need the weekly/monthly pass)");
    }

    // ---- Machine-readable export. --------------------------------------
    // Funnel counts are the final day's window; the metrics snapshot is
    // cumulative over the whole week (the registry lives on the engine).
    if emit_json {
        if let Some(report) = &last_report {
            println!("\n--- observability export (--json) ---");
            println!("{}", export_json(report, &engine.metrics_snapshot(), 10));
        }
    }
}
