//! Small sampling helpers on top of [`rand`]: Gaussian, Poisson, Pareto and
//! Zipf draws used by the traffic models.

use rand::Rng;

/// Standard-normal draw via Box–Muller.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    mean + std_dev * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Poisson draw (Knuth's algorithm — fine for the λ ≤ ~50 used here; larger
/// λ falls back to a rounded Gaussian approximation).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        return gaussian(rng, lambda, lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Pareto draw with scale `x_min` and shape `alpha` (heavy-tailed think
/// times inside browsing sessions).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0);
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// A pre-computed Zipf sampler over ranks `0..n` with exponent `s`
/// (popular-domain selection: rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (cannot occur after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        for lambda in [0.5, 3.0, 20.0, 80.0] {
            let n = 5_000;
            let mean = (0..n)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "λ={lambda} mean={mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn pareto_respects_min() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(pareto(&mut rng, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| pareto(&mut rng, 1.0, 1.2)).collect();
        let over_10 = samples.iter().filter(|&&x| x > 10.0).count() as f64 / n as f64;
        // P(X > 10) = 10^-1.2 ≈ 0.063
        assert!((over_10 - 0.063).abs() < 0.02, "tail mass = {over_10}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 should hold roughly 1/H_100 ≈ 19% of mass.
        let share = counts[0] as f64 / 50_000.0;
        assert!((share - 0.192).abs() < 0.03, "share = {share}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 1.3);
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic]
    fn zipf_zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
