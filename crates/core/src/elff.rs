//! W3C Extended Log File Format (ELFF) ingestion — the format BlueCoat
//! ProxySG appliances (the paper's log source, §VIII-B1) emit.
//!
//! An ELFF file declares its schema in a `#Fields:` directive and then
//! carries one space-separated record per line:
//!
//! ```text
//! #Software: SGOS 6.5
//! #Fields: date time c-ip cs-host cs-uri-path sc-status
//! 2015-03-01 08:00:12 10.1.2.3 update.example.com /check 200
//! ```
//!
//! The parser maps whichever of `date`/`time`/`x-timestamp`, `c-ip`/
//! `cs-username`, `cs-host`, and `cs-uri-path`/`cs-uri-stem` columns are
//! present onto [`LogRecord`]s, skipping directives and malformed lines
//! (corruption is a fact of life at tens of billions of events).

use std::io::BufRead;

use crate::io::{ParseLineError, ReadOutcome};
use crate::record::LogRecord;

/// Column roles the pipeline needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Date,
    Time,
    Timestamp,
    Source,
    Host,
    Path,
    Ignore,
}

fn role_of(field: &str) -> Role {
    match field {
        "date" => Role::Date,
        "time" => Role::Time,
        "x-timestamp" | "timestamp" => Role::Timestamp,
        "c-ip" | "cs-username" | "c-mac" => Role::Source,
        "cs-host" | "cs(Host)" | "s-hostname" => Role::Host,
        "cs-uri-path" | "cs-uri-stem" => Role::Path,
        _ => Role::Ignore,
    }
}

/// Incremental ELFF parser: holds the `#Fields:` schema seen so far so
/// callers that need per-line admission decisions (the breaker-guarded
/// ingest in [`crate::io::IngestGuard`]) can separate directive handling
/// from record parsing. [`read_elff`] is the plain streaming facade on
/// top of it.
#[derive(Debug, Default)]
pub struct ElffParser {
    roles: Option<Vec<Role>>,
}

impl ElffParser {
    /// A parser that has not yet seen a `#Fields:` directive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the schema from the payload of a `#Fields:` directive
    /// (the text after the prefix).
    pub fn set_schema(&mut self, fields: &str) {
        self.roles = Some(fields.split_whitespace().map(role_of).collect());
    }

    /// Whether a `#Fields:` directive has been seen.
    pub fn has_schema(&self) -> bool {
        self.roles.is_some()
    }

    /// Parses one data line (already known to be non-blank and not a
    /// directive) under the current schema.
    ///
    /// # Errors
    ///
    /// Fails when no `#Fields:` directive has been seen yet, or when the
    /// line does not yield the columns the pipeline needs.
    pub fn parse_data_line(
        &self,
        line: &str,
        line_number: usize,
    ) -> Result<LogRecord, ParseLineError> {
        let Some(roles) = self.roles.as_ref() else {
            return Err(ParseLineError {
                line_number,
                reason: "record before #Fields: directive".into(),
            });
        };
        parse_record(line, roles, line_number)
    }
}

/// Streaming ELFF reader.
///
/// Ingest is lenient: truncated, garbled, or non-UTF-8 lines are counted
/// (and sampled) in [`ReadOutcome::malformed_lines`] rather than aborting
/// the file — at the paper's scale, corruption is routine.
///
/// # Errors
///
/// Returns the underlying I/O error if the stream fails. Records that
/// cannot be parsed are collected per line in the outcome.
///
/// # Example
///
/// ```
/// use baywatch_core::elff::read_elff;
///
/// let log = "\
/// #Software: SGOS 6.5\n\
/// #Fields: date time c-ip cs-host cs-uri-path sc-status\n\
/// 2015-03-01 08:00:12 10.1.2.3 update.example.com /check/version 200\n\
/// 2015-03-01 08:00:15 10.1.2.4 news.example.org /feed 200\n";
/// let outcome = read_elff(log.as_bytes()).unwrap();
/// assert_eq!(outcome.records.len(), 2);
/// assert_eq!(outcome.records[0].domain, "update.example.com");
/// assert_eq!(outcome.records[0].url_token, "check");
/// assert!(outcome.records[1].timestamp == outcome.records[0].timestamp + 3);
/// ```
pub fn read_elff<R: BufRead>(reader: R) -> std::io::Result<ReadOutcome> {
    let mut outcome = ReadOutcome::default();
    let mut parser = ElffParser::new();

    // Byte-wise line splitting so invalid UTF-8 degrades to a malformed
    // line (via the lossy conversion) instead of killing the whole stream.
    for (i, raw) in reader.split(b'\n').enumerate() {
        let raw = raw?;
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(fields) = trimmed.strip_prefix("#Fields:") {
            parser.set_schema(fields);
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        match parser.parse_data_line(trimmed, i + 1) {
            Ok(r) => outcome.records.push(r),
            Err(e) => outcome.note_error(e),
        }
    }
    Ok(outcome)
}

fn parse_record(
    line: &str,
    roles: &[Role],
    line_number: usize,
) -> Result<LogRecord, ParseLineError> {
    let values: Vec<&str> = line.split_whitespace().collect();
    if values.len() < roles.len() {
        return Err(ParseLineError {
            line_number,
            reason: format!("expected {} fields, got {}", roles.len(), values.len()),
        });
    }
    let mut date: Option<&str> = None;
    let mut time: Option<&str> = None;
    let mut timestamp: Option<u64> = None;
    let mut source: Option<&str> = None;
    let mut host: Option<&str> = None;
    let mut path: Option<&str> = None;
    for (role, value) in roles.iter().zip(&values) {
        match role {
            Role::Date => date = Some(value),
            Role::Time => time = Some(value),
            Role::Timestamp => {
                timestamp = value.parse().ok();
                if timestamp.is_none() {
                    return Err(ParseLineError {
                        line_number,
                        reason: format!("invalid timestamp `{value}`"),
                    });
                }
            }
            Role::Source if source.is_none() => source = Some(value),
            Role::Host => host = Some(value),
            Role::Path if path.is_none() => path = Some(value),
            _ => {}
        }
    }

    let ts = match (timestamp, date, time) {
        (Some(t), _, _) => t,
        (None, Some(d), Some(t)) => parse_datetime(d, t).ok_or_else(|| ParseLineError {
            line_number,
            reason: format!("invalid date/time `{d} {t}`"),
        })?,
        _ => {
            return Err(ParseLineError {
                line_number,
                reason: "no timestamp columns (need x-timestamp or date+time)".into(),
            })
        }
    };
    let source = source.ok_or_else(|| ParseLineError {
        line_number,
        reason: "no source column (c-ip / cs-username)".into(),
    })?;
    let host = host.ok_or_else(|| ParseLineError {
        line_number,
        reason: "no cs-host column".into(),
    })?;
    if host == "-" {
        return Err(ParseLineError {
            line_number,
            reason: "empty host".into(),
        });
    }
    let token = path.map(first_path_token).unwrap_or_default();
    Ok(LogRecord::new(ts, source, host, token))
}

/// First path segment of a URL path (`/check/version?id=1` → `check`).
fn first_path_token(path: &str) -> String {
    path.trim_start_matches('/')
        .split(['/', '?', '#'])
        .next()
        .unwrap_or("")
        .to_owned()
}

/// Parses `YYYY-MM-DD` + `HH:MM:SS` into epoch seconds (UTC, proleptic
/// Gregorian; days-from-civil per Hinnant's algorithm).
pub fn parse_datetime(date: &str, time: &str) -> Option<u64> {
    let mut dp = date.split('-');
    let year: i64 = dp.next()?.parse().ok()?;
    let month: u32 = dp.next()?.parse().ok()?;
    let day: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let mut tp = time.split(':');
    let hour: u64 = tp.next()?.parse().ok()?;
    let minute: u64 = tp.next()?.parse().ok()?;
    let second: u64 = tp.next()?.parse().ok()?;
    if tp.next().is_some() || hour > 23 || minute > 59 || second > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return None;
    }
    Some(days as u64 * 86_400 + hour * 3_600 + minute * 60 + second)
}

/// Days since 1970-01-01 (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
#Software: SGOS 6.5\n\
#Version: 1.0\n\
#Fields: date time time-taken c-ip sc-status cs-method cs-host cs-uri-path sc-bytes\n\
2015-03-01 08:00:12 120 10.1.2.3 200 GET update.example.com /check/version 512\n\
2015-03-01 08:00:15 80 10.1.2.4 200 GET news.example.org /feed 2048\n\
2015-03-01 08:00:20 95 10.1.2.3 404 GET - / 0\n";

    #[test]
    fn parses_bluecoat_sample() {
        let o = read_elff(SAMPLE.as_bytes()).unwrap();
        assert_eq!(o.records.len(), 2);
        assert_eq!(o.errors.len(), 1, "the '-' host line is rejected");
        assert_eq!(o.malformed_lines, 1);
        let r = &o.records[0];
        assert_eq!(r.source, "10.1.2.3");
        assert_eq!(r.domain, "update.example.com");
        assert_eq!(r.url_token, "check");
    }

    #[test]
    fn invalid_utf8_counts_as_malformed_line() {
        let mut log = b"#Fields: x-timestamp c-ip cs-host\n".to_vec();
        log.extend_from_slice(b"1000 10.0.0.1 a.com\n");
        log.extend_from_slice(&[0x80, 0x81, b' ', 0xff, b'\n']);
        log.extend_from_slice(b"1060 10.0.0.1 a.com\n");
        let o = read_elff(log.as_slice()).unwrap();
        assert_eq!(o.records.len(), 2);
        assert_eq!(o.malformed_lines, 1);
    }

    #[test]
    fn datetime_epoch_known_values() {
        assert_eq!(parse_datetime("1970-01-01", "00:00:00"), Some(0));
        assert_eq!(parse_datetime("1970-01-02", "00:00:01"), Some(86_401));
        // 2015-03-01 00:00:00 UTC = 1425168000.
        assert_eq!(
            parse_datetime("2015-03-01", "00:00:00"),
            Some(1_425_168_000)
        );
        // Leap year check: 2016-02-29 exists.
        assert!(parse_datetime("2016-02-29", "12:00:00").is_some());
    }

    #[test]
    fn datetime_rejects_garbage() {
        assert_eq!(parse_datetime("2015-13-01", "00:00:00"), None);
        assert_eq!(parse_datetime("2015-03-01", "24:00:00"), None);
        assert_eq!(parse_datetime("notadate", "00:00:00"), None);
        assert_eq!(parse_datetime("2015-03", "00:00:00"), None);
        assert_eq!(parse_datetime("1960-01-01", "00:00:00"), None, "pre-epoch");
    }

    #[test]
    fn timestamp_column_takes_precedence() {
        let log = "#Fields: x-timestamp c-ip cs-host\n1425168000 10.0.0.1 a.com\n";
        let o = read_elff(log.as_bytes()).unwrap();
        assert_eq!(o.records[0].timestamp, 1_425_168_000);
    }

    #[test]
    fn record_before_fields_is_error() {
        let log = "2015-03-01 08:00:12 10.1.2.3 a.com\n#Fields: date time c-ip cs-host\n";
        let o = read_elff(log.as_bytes()).unwrap();
        assert_eq!(o.errors.len(), 1);
        assert!(o.errors[0].reason.contains("#Fields"));
    }

    #[test]
    fn short_lines_reported() {
        let log = "#Fields: date time c-ip cs-host\n2015-03-01 08:00:12 10.1.2.3\n";
        let o = read_elff(log.as_bytes()).unwrap();
        assert_eq!(o.records.len(), 0);
        assert!(o.errors[0].reason.contains("expected 4 fields"));
    }

    #[test]
    fn missing_required_columns_reported() {
        let log = "#Fields: date time sc-status\n2015-03-01 08:00:12 200\n";
        let o = read_elff(log.as_bytes()).unwrap();
        assert!(o.errors[0].reason.contains("source"));
    }

    #[test]
    fn incremental_parser_matches_streaming_reader() {
        let mut parser = ElffParser::new();
        assert!(!parser.has_schema());
        let err = parser.parse_data_line("1000 10.0.0.1 a.com", 1).unwrap_err();
        assert!(err.reason.contains("#Fields"));
        parser.set_schema(" x-timestamp c-ip cs-host");
        assert!(parser.has_schema());
        let r = parser.parse_data_line("1000 10.0.0.1 a.com", 2).unwrap();
        assert_eq!(r.timestamp, 1000);
        assert_eq!(r.domain, "a.com");
    }

    #[test]
    fn path_token_extraction() {
        assert_eq!(first_path_token("/check/version"), "check");
        assert_eq!(first_path_token("/feed?id=7"), "feed");
        assert_eq!(first_path_token("/"), "");
        assert_eq!(first_path_token("plain"), "plain");
    }

    #[test]
    fn intervals_survive_roundtrip_to_pipeline_types() {
        // 60 s beacon in ELFF form: the parsed records produce exact
        // 60-second intervals.
        let mut log = String::from("#Fields: date time c-ip cs-host cs-uri-path\n");
        for i in 0..5u64 {
            let minute = i;
            log.push_str(&format!(
                "2015-03-01 08:{minute:02}:00 10.0.0.1 c2.example.biz /a9f{i}\n"
            ));
        }
        let o = read_elff(log.as_bytes()).unwrap();
        assert_eq!(o.records.len(), 5);
        for w in o.records.windows(2) {
            assert_eq!(w[1].timestamp - w[0].timestamp, 60);
        }
    }
}
