//! `baywatch-lint` — the workspace invariant linter.
//!
//! BAYWATCH's verdicts are only auditable if a rerun over the same window
//! is byte-identical, and its scale (the paper evaluates 30 billion
//! events) means "rare" hazards fire daily. This crate mechanically
//! enforces the repo's reproducibility catalogue — see [`rules`] for the
//! rule-by-rule story — with CI ratcheting via a committed baseline
//! ([`baseline`]) and per-site suppression that demands written
//! justification ([`config`]).
//!
//! The analysis is a token-level pass (a hand-rolled lexer plus delimiter
//! matching, [`lexer`]/[`syntax`]) rather than a full `syn` AST: the
//! linter must build with **zero dependencies** so hermetic and offline
//! builds can always run it. The rules are scope-aware (test code,
//! function bodies, bindings) but heuristic; the determinism integration
//! tests backstop what lexing cannot see.

#![warn(clippy::unwrap_used)]

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;
pub mod walk;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::BaselineEntry;
use config::{AllowEntry, Config};
use rules::Finding;
use walk::walk_workspace;

/// Everything that can go wrong while linting. I/O failures carry the
/// path; config/baseline failures carry file/line context.
#[derive(Debug)]
pub enum LintError {
    Io(PathBuf, std::io::Error),
    Config(String),
    Baseline(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::Config(msg) => write!(f, "invalid allowlist: {msg}"),
            LintError::Baseline(msg) => write!(f, "invalid baseline: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Where to lint and against what.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Workspace root. Defaults to the current directory.
    pub root: PathBuf,
    /// Allowlist path; `None` means `<root>/lint.toml`, tolerated missing.
    pub config_path: Option<PathBuf>,
    /// Baseline path; `None` means `<root>/lint-baseline.json`, tolerated
    /// missing (treated as empty — everything is new).
    pub baseline_path: Option<PathBuf>,
}

/// The result of a full run: findings partitioned by how CI should react.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Unsuppressed findings not in the baseline. Nonempty ⇒ fail.
    pub new: Vec<Finding>,
    /// Findings tolerated by the committed baseline.
    pub baselined: Vec<Finding>,
    /// Findings suppressed by `lint.toml`, with the entry's reason.
    pub allowlisted: Vec<(Finding, String)>,
    /// Baseline entries whose finding has been fixed.
    pub stale_baseline: Vec<BaselineEntry>,
    /// Allowlist entries that matched nothing.
    pub unused_allows: Vec<AllowEntry>,
}

impl LintOutcome {
    /// The ratchet passes when nothing new was found. (Stale entries and
    /// unused allows are reported but do not fail the build: they appear
    /// exactly when someone fixes a tolerated finding, and failing on the
    /// fix would punish it.)
    pub fn is_clean(&self) -> bool {
        self.new.is_empty()
    }
}

/// Lints every source file under `root` and returns the raw findings,
/// path-sorted, with no allowlist or baseline applied.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, LintError> {
    let files = walk_workspace(root).map_err(|e| LintError::Io(root.to_path_buf(), e))?;
    let mut findings = Vec::new();
    for sf in &files {
        let source =
            fs::read_to_string(&sf.abs_path).map_err(|e| LintError::Io(sf.abs_path.clone(), e))?;
        findings.extend(rules::check_file(sf, &source));
    }
    // Files are walked in sorted order; keep (path, line) order globally.
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// The full pipeline: walk, lint, apply the allowlist, ratchet against
/// the baseline.
pub fn run(opts: &LintOptions) -> Result<LintOutcome, LintError> {
    let root = if opts.root.as_os_str().is_empty() {
        PathBuf::from(".")
    } else {
        opts.root.clone()
    };
    let config = load_config(&root, opts.config_path.as_deref())?;
    let baseline_entries = load_baseline(&root, opts.baseline_path.as_deref())?;
    let findings = lint_workspace(&root)?;

    // Allowlist first: suppressed findings never reach the ratchet, so a
    // baseline can shrink to empty while justified exceptions remain.
    let mut surviving = Vec::new();
    let mut allowlisted = Vec::new();
    let mut used = vec![false; config.allows.len()];
    'findings: for f in findings {
        for (i, entry) in config.allows.iter().enumerate() {
            if entry.matches(&f) {
                used[i] = true;
                allowlisted.push((f, entry.reason.clone()));
                continue 'findings;
            }
        }
        surviving.push(f);
    }

    let ratchet = baseline::ratchet(&surviving, &baseline_entries);
    Ok(LintOutcome {
        new: ratchet.new,
        baselined: ratchet.known,
        allowlisted,
        stale_baseline: ratchet.stale,
        unused_allows: config
            .allows
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect(),
    })
}

fn load_config(root: &Path, explicit: Option<&Path>) -> Result<Config, LintError> {
    let path = explicit
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("lint.toml"));
    match fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text, &path.display().to_string()),
        // A missing default allowlist is fine; a missing *explicit* one is
        // an error (the caller named it, so a typo must not pass silently).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && explicit.is_none() => {
            Ok(Config::default())
        }
        Err(e) => Err(LintError::Io(path, e)),
    }
}

fn load_baseline(root: &Path, explicit: Option<&Path>) -> Result<Vec<BaselineEntry>, LintError> {
    let path = explicit
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    match fs::read_to_string(&path) {
        Ok(text) => baseline::parse(&text, &path.display().to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && explicit.is_none() => Ok(Vec::new()),
        Err(e) => Err(LintError::Io(path, e)),
    }
}
