//! Communication pairs (Table I of the paper).
//!
//! A *communication pair* is a source endpoint together with a destination
//! endpoint. The paper's Table I lists the candidate features of each side:
//!
//! * source: MAC address, IP address, (user identity),
//! * destination: domain name, IP address, (port).
//!
//! In the experiments the paper keys sources by MAC (stable under DHCP
//! churn) and destinations by domain — the configuration this crate uses:
//! [`CommunicationPair`] holds the stable source id and the destination
//! domain.

/// A source/destination endpoint pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommunicationPair {
    /// Stable source identifier (MAC-correlated in the paper).
    pub source: String,
    /// Destination domain.
    pub destination: String,
}

impl CommunicationPair {
    /// Creates a pair.
    pub fn new(source: impl Into<String>, destination: impl Into<String>) -> Self {
        Self {
            source: source.into(),
            destination: destination.into(),
        }
    }
}

impl std::fmt::Display for CommunicationPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.source, self.destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_equality_and_display() {
        let a = CommunicationPair::new("02:00:aa", "evil.com");
        let b = CommunicationPair::new("02:00:aa", "evil.com");
        let c = CommunicationPair::new("02:00:ab", "evil.com");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "02:00:aa -> evil.com");
    }

    #[test]
    fn pairs_order_by_source_then_destination() {
        let mut v = [
            CommunicationPair::new("b", "x.com"),
            CommunicationPair::new("a", "y.com"),
            CommunicationPair::new("a", "x.com"),
        ];
        v.sort();
        assert_eq!(v[0], CommunicationPair::new("a", "x.com"));
        assert_eq!(v[2], CommunicationPair::new("b", "x.com"));
    }
}
