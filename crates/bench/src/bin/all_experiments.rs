//! Runs every experiment binary in sequence — the one-shot reproduction of
//! the paper's evaluation section. Equivalent to invoking each
//! `cargo run --release -p baywatch-bench --bin <exp>` by hand.

#![warn(clippy::unwrap_used)]

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "lm_scores",
    "fig05_permutation",
    "fig06_pruning",
    "fig07_gmm",
    "fig10_noise",
    "table03_volumes",
    "table04_confusion",
    "fig11_uncertainty",
    "table05_cases",
    "table06_top5",
    "scalability",
    "ablations",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exe = std::env::current_exe()?;
    let exe_dir = exe
        .parent()
        .ok_or("experiment binary has no parent directory")?
        .to_path_buf();

    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n================================================================");
        println!("=== running {exp}");
        println!("================================================================\n");
        // A binary that cannot even be spawned is recorded as a failure
        // alongside non-zero exits, so one missing target does not abort
        // the whole reproduction run.
        match Command::new(exe_dir.join(exp)).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("!!! {exp} failed with {status}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("!!! failed to spawn {exp}: {e}");
                failures.push(*exp);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
    Ok(())
}
