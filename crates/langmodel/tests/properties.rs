//! Property-based tests of the language model.

use baywatch_langmodel::ngram::NgramModel;
use baywatch_langmodel::DomainScorer;
use proptest::prelude::*;

fn domainish() -> impl Strategy<Value = String> {
    "[a-z0-9.-]{1,40}"
}

fn arbitrary_text() -> impl Strategy<Value = String> {
    // Any printable ASCII, to exercise canonicalization.
    "[ -~]{0,60}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scores are finite for any input whatsoever.
    #[test]
    fn score_always_finite(s in arbitrary_text()) {
        let model = NgramModel::train(["example.com", "test.org", "data.net"], 3);
        prop_assert!(model.log_prob(&s).is_finite());
        prop_assert!(model.log_prob_per_char(&s).is_finite());
    }

    /// Probabilities are valid for any context/next-char combination.
    #[test]
    fn prob_in_unit_interval(ctx in domainish(), next in any::<u8>()) {
        let model = NgramModel::train(["example.com", "another.org"], 3);
        let p = model.prob(ctx.as_bytes(), next);
        prop_assert!(p > 0.0 && p <= 1.0, "P = {p}");
    }

    /// Training on a string raises (or at least never lowers drastically)
    /// its own score relative to an untrained model of the same shape.
    #[test]
    fn training_helps_in_domain(name in "[a-z]{6,20}") {
        let domain = format!("{name}.com");
        let trained = NgramModel::train([domain.as_str(), "filler.org"], 3);
        let other = NgramModel::train(["zzzzqqqq.xyz", "filler.org"], 3);
        prop_assert!(trained.log_prob(&domain) >= other.log_prob(&domain) - 1e-9);
    }

    /// Longer strings never have higher total log-prob than their prefix
    /// plus zero (log-probs accumulate negatively).
    #[test]
    fn log_prob_decreases_with_length(base in "[a-z]{3,15}") {
        let model = NgramModel::train(["example.com", "another.org"], 3);
        let longer = format!("{base}{base}");
        // Each extra transition multiplies by p <= 1.
        prop_assert!(model.log_prob(&longer) <= model.log_prob(&base) + 1e-9);
    }

    /// The scorer is case-insensitive.
    #[test]
    fn scorer_case_insensitive(s in "[a-zA-Z.]{1,30}") {
        let scorer = DomainScorer::train(["example.com", "other.net"], 3);
        prop_assert!((scorer.score(&s) - scorer.score(&s.to_lowercase())).abs() < 1e-12);
    }
}
