//! A minimal Rust lexer: source text → a stream of semantic tokens with
//! line numbers, with comments and whitespace discarded.
//!
//! The invariant rules ([`crate::rules`]) match *token* sequences, never raw
//! text, so a `partial_cmp` inside a string literal or a doc comment can
//! never produce a finding. The lexer understands exactly as much Rust as
//! that guarantee requires: line/nested-block comments, (raw/byte) string
//! literals, char literals vs. lifetimes, numeric literals with exponents
//! and suffixes, identifiers, and single-character punctuation.

/// What a token is, as far as the rules need to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `partial_cmp`, `HashMap`, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`42`, `0.95`, `1e-6`, `0xFF_u64`).
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `(`, `::` is two `:` tokens).
    Punct,
}

/// One lexed token. `text` is the literal source text for identifiers,
/// numbers, and punctuation; string/char literals keep only their delimiter
/// so the stream stays cheap to clone and findings never embed file bodies.
/// The byte span (`start..end` into the original source) always covers the
/// full literal, so the fix engine and the metric-name extractor can
/// recover exact source text without re-scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-indexed source line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first character in the source.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

impl Token {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `source` into tokens. Unterminated literals and comments are
/// tolerated (the remainder of the file is consumed as that literal):
/// the linter must keep walking a workspace even when one file is
/// mid-edit, and a truncated tail can only *hide* tokens, never invent
/// findings.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    byte_pos: usize,
    tok_start: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            byte_pos: 0,
            tok_start: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, keeping the line counter and byte offset true.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            self.byte_pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            start: self.tok_start,
            end: self.byte_pos,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            self.tok_start = self.byte_pos;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.skip_line_comment(),
                '/' if self.peek(1) == Some('*') => self.skip_block_comment(),
                '"' => self.lex_string(line),
                '\'' => self.lex_char_or_lifetime(line),
                c if c.is_ascii_digit() => self.lex_number(line),
                c if c == '_' || c.is_alphabetic() => self.lex_ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) {
        // Consume the opening `/*`, then balance nested comments.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// A plain `"…"` string starting at the current `"`.
    fn lex_string(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, "\"".to_string(), line);
    }

    /// A raw string `r"…"` / `r#"…"#` starting at the current `r`-prefix
    /// position; `hashes` is the number of `#` between `r` and `"`.
    fn lex_raw_string(&mut self, hashes: usize, line: u32) {
        // Consume up to and including the opening quote.
        for _ in 0..hashes + 1 {
            self.bump();
        }
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Str, "r\"".to_string(), line);
    }

    fn lex_char_or_lifetime(&mut self, line: u32) {
        // `'` then: escape → char literal; X followed by `'` → char literal;
        // anything else → lifetime.
        if self.peek(1) == Some('\\') {
            self.bump(); // '
            self.bump(); // backslash
            self.bump(); // escaped char
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
            }
            self.push(TokenKind::Char, "'".to_string(), line);
        } else if self.peek(2) == Some('\'') && self.peek(1).is_some() {
            self.bump();
            self.bump();
            self.bump();
            self.push(TokenKind::Char, "'".to_string(), line);
        } else {
            self.bump();
            let mut name = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, name, line);
        }
    }

    fn lex_number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // Exponent sign: `1e-6` / `1E+9` — only inside a decimal
                // number (hex digits include `e` but hex has no exponent).
                text.push(c);
                self.bump();
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && !text.starts_with("0X")
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(self.bump().unwrap_or('+'));
                }
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `0.95` continues the number; `0..n` and `1.max(2)` do not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    /// Identifier, keyword, or a string-literal prefix (`r""`, `b""`,
    /// `br#""#`, `c""`).
    fn lex_ident_or_prefixed(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Raw / byte / C string prefixes: the identifier ends exactly at a
        // quote (or `#…"` for raw flavors).
        let is_prefix = matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr" | "rb");
        if is_prefix {
            if self.peek(0) == Some('"') {
                if text.contains('r') {
                    self.lex_raw_string(0, line);
                } else {
                    self.lex_string(line);
                }
                return;
            }
            if text.contains('r') && self.peek(0) == Some('#') {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.lex_raw_string(hashes, line);
                    return;
                }
            }
            // `b'x'` byte char.
            if text == "b" && self.peek(0) == Some('\'') {
                self.lex_char_or_lifetime(line);
                return;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // partial_cmp in a line comment
            /* partial_cmp in /* a nested */ block comment */
            let s = "partial_cmp in a string";
            let r = r#"partial_cmp in a raw "string""#;
            let b = b"partial_cmp in bytes";
        "##;
        let toks = lex(src);
        assert!(
            !toks.iter().any(|t| t.is_ident("partial_cmp")),
            "literal/comment content must not surface as identifiers: {toks:?}"
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 3);
    }

    #[test]
    fn chars_versus_lifetimes() {
        let toks = kinds("let c = 'x'; fn f<'a>(v: &'a str) -> char { '\\n' }");
        assert!(toks.contains(&(TokenKind::Char, "'".into())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn numbers_with_dots_exponents_and_ranges() {
        let toks = kinds("0.95 1e-6 0xFF_u64 0..n 1.max(2)");
        assert!(toks.contains(&(TokenKind::Number, "0.95".into())));
        assert!(toks.contains(&(TokenKind::Number, "1e-6".into())));
        assert!(toks.contains(&(TokenKind::Number, "0xFF_u64".into())));
        // `0..n` is number, dot, dot, ident.
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Ident, "n".into())));
        // `1.max(2)` keeps `max` callable.
        assert!(toks.contains(&(TokenKind::Ident, "max".into())));
    }

    #[test]
    fn method_chain_tokens_in_order() {
        let toks = lex("maxima.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            idents,
            [
                "maxima",
                "sort_by",
                "a",
                "b",
                "a",
                "partial_cmp",
                "b",
                "unwrap"
            ]
        );
    }

    #[test]
    fn byte_spans_recover_source_text() {
        let src = "let n = reg.counter(\"stage.α.admitted\"); // π";
        let toks = lex(src);
        for t in &toks {
            assert!(t.start < t.end && t.end <= src.len(), "{t:?}");
        }
        let s = toks
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(&src[s.start..s.end], "\"stage.α.admitted\"");
        let id = toks.iter().find(|t| t.is_ident("counter")).expect("ident");
        assert_eq!(&src[id.start..id.end], "counter");
    }

    #[test]
    fn raw_string_spans_cover_the_full_literal() {
        let src = r###"let r = r#"metric "x""#;"###;
        let toks = lex(src);
        let s = toks
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("raw string token");
        assert_eq!(&src[s.start..s.end], r###"r#"metric "x""#"###);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb \"str\nacross\" c";
        let toks = lex(src);
        let find = |name: &str| {
            toks.iter()
                .filter(|t| t.is_ident(name))
                .map(|t| t.line)
                .next()
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(5));
    }
}
