//! Spectral workspace — cached FFT plans and reusable scratch buffers.
//!
//! Every step of the detection pipeline is FFT-bound: the periodogram
//! (Step 1) transforms the count series once, the permutation filter
//! transforms `m` shuffled copies of the *same length*, and the ACF
//! verifier (Step 3) runs a forward/inverse pair at the padded length.
//! Planning an FFT is far from free — rustfft decomposes the length into
//! a recipe of butterflies and allocates twiddle tables — and the seed
//! implementation rebuilt a fresh [`FftPlanner`] for every single
//! transform, i.e. 20+ times per communication pair.
//!
//! [`SpectralWorkspace`] amortizes that cost: it owns one planner, maps of
//! already-built plans keyed by `(kind, length)` — complex-to-complex
//! forward/inverse plus the real-to-complex ([`R2cPlan`]) and
//! complex-to-real ([`C2rPlan`]) wrappers — and recycled complex, real and
//! half-spectrum buffers. A workspace is deliberately single-threaded
//! (`!Sync`, interior mutability via [`RefCell`]); each MapReduce worker
//! thread gets its own instance through [`with_thread_workspace`], so
//! plans are reused across every pair and permutation round the thread
//! processes during a window without any locking.
//!
//! # Real-valued spectral path
//!
//! Detection input is always real (binned event counts), so the full
//! complex DFT computes every output twice: `X(n−k) = conj(X(k))`. The
//! workspace exploits that Hermitian symmetry two ways, selected by
//! [`SpectralMode`]:
//!
//! - **Single series** ([`with_half_spectrum`](SpectralWorkspace::with_half_spectrum),
//!   [`with_autocorrelation`](SpectralWorkspace::with_autocorrelation)):
//!   an even-length real series of length `n` is packed into a
//!   half-length complex series `z(j) = x(2j) + i·x(2j+1)`, transformed
//!   with one FFT of length `n/2`, and unpacked into the one-sided
//!   spectrum `X(0..=n/2)` with `O(n)` twiddle arithmetic — about half
//!   the transform work. Odd lengths fall back to the full complex
//!   transform (the ACF's padded length is always a power of two, so the
//!   round trip is always packed).
//! - **Batched permutation rounds**
//!   ([`shuffled_half_power_maxima`](SpectralWorkspace::shuffled_half_power_maxima)):
//!   two shuffled *rounds* `a`, `b` of the same length ride one complex
//!   FFT as `z = a + i·b` and are separated per bin by
//!   `A(k) = (Z(k) + conj(Z(n−k)))/2`, `B(k) = (Z(k) − conj(Z(n−k)))/(2i)`.
//!   This halves transform count for *any* length — including the odd and
//!   prime (Bluestein) lengths arbitrary observation spans produce.
//!
//! [`SpectralMode::ComplexFull`] keeps the pre-r2c full-complex pipeline
//! reachable; its output is bit-for-bit identical to planning from
//! scratch (rustfft plans are deterministic functions of the length) and
//! serves as the reference for equivalence tests and for the before/after
//! benchmark in `BENCH_detector.json`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use rustfft::{num_complex::Complex, Fft, FftPlanner};

/// Which spectral algorithm the workspace uses for real input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectralMode {
    /// Real-input transforms run through the packed half-length r2c/c2r
    /// plans and permutation rounds are batched two-per-FFT. Output agrees
    /// with [`ComplexFull`](SpectralMode::ComplexFull) to within FFT
    /// rounding (a few ULPs); roughly half the transform work. The
    /// default.
    #[default]
    RealHalf,
    /// The legacy full complex-to-complex pipeline, bit-for-bit identical
    /// to the pre-r2c implementation. Kept as the reference path for
    /// equivalence tests and benchmarks.
    ComplexFull,
}

/// A per-thread cache of FFT plans plus reusable transform buffers.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::workspace::SpectralWorkspace;
///
/// let ws = SpectralWorkspace::new();
/// let samples = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
/// // The Nyquist bin carries all the energy of an alternating series.
/// let max = ws.with_spectrum(&samples, |spectrum| {
///     spectrum[1..=4].iter().map(|v| v.norm_sqr()).fold(0.0, f64::max)
/// });
/// assert!(max > 0.0);
/// // A second transform of the same length reuses the cached plan.
/// ws.with_spectrum(&samples, |_| ());
/// assert_eq!(ws.plans_built(), 1);
/// assert_eq!(ws.transforms_run(), 2);
/// ```
pub struct SpectralWorkspace {
    inner: RefCell<Inner>,
    mode: SpectralMode,
}

struct Inner {
    planner: FftPlanner<f64>,
    forward: HashMap<usize, Arc<dyn Fft<f64>>>,
    inverse: HashMap<usize, Arc<dyn Fft<f64>>>,
    /// Real-to-complex plans, keyed by the *real* length `n` (even). Kept
    /// in their own map: a length-`n` r2c plan and a length-`n` c2c plan
    /// are different transforms and must never alias in the cache.
    r2c: HashMap<usize, Arc<R2cPlan>>,
    /// Complex-to-real plans, keyed by the real length `n` (even).
    c2r: HashMap<usize, Arc<C2rPlan>>,
    /// Recycled complex working buffer (the transform target).
    buffer: Vec<Complex<f64>>,
    /// Recycled rustfft scratch space.
    scratch: Vec<Complex<f64>>,
    /// Recycled one-sided (half) spectrum buffer for the r2c path.
    half: Vec<Complex<f64>>,
    /// Recycled real sample buffer (r2c input / c2r output).
    real: Vec<f64>,
    /// Recycled matrix arena for batched permutation rounds.
    rows: Vec<f64>,
    plans_built: usize,
    plans_built_c2c: usize,
    plans_built_r2c: usize,
    plan_requests: usize,
    plan_hits: usize,
    transforms_run: usize,
}

const ZERO: Complex<f64> = Complex { re: 0.0, im: 0.0 };

/// A cached real-to-complex transform of even real length `n`: the packed
/// half-length complex FFT plus the `O(n)` Hermitian unpack.
///
/// The classic packing trick: `z(j) = x(2j) + i·x(2j+1)` is transformed
/// with an FFT of length `h = n/2`, and the one-sided spectrum of `x` is
/// recovered as
///
/// ```text
/// X(k) = (Z(k) + conj(Z(h−k)))/2 − (i/2)·W(k)·(Z(k) − conj(Z(h−k)))
/// ```
///
/// for `k = 0..=h`, with `Z(h) ≡ Z(0)` and twiddle `W(k) = e^(−2πik/n)`.
pub struct R2cPlan {
    n: usize,
    half_fft: Arc<dyn Fft<f64>>,
    /// `W(k) = e^(−2πik/n)` for `k = 0..=n/2`.
    twiddles: Vec<Complex<f64>>,
}

impl R2cPlan {
    fn new(n: usize, half_fft: Arc<dyn Fft<f64>>) -> Self {
        debug_assert!(n >= 2 && n % 2 == 0, "r2c requires even n >= 2");
        Self {
            n,
            half_fft,
            twiddles: twiddle_table(n),
        }
    }

    /// Real transform length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the degenerate length 0 (never built).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transforms `input` (length `n`) into the one-sided spectrum
    /// `out[k] = X(k)` for `k = 0..=n/2`, using `work` for the packed
    /// half-length FFT and `scratch` for rustfft scratch space.
    fn process(
        &self,
        input: &[f64],
        work: &mut Vec<Complex<f64>>,
        out: &mut Vec<Complex<f64>>,
        scratch: &mut Vec<Complex<f64>>,
    ) {
        let h = self.n / 2;
        debug_assert_eq!(input.len(), self.n);
        work.clear();
        work.extend(input.chunks_exact(2).map(|p| Complex::new(p[0], p[1])));
        run_in_place(&*self.half_fft, work, scratch);
        out.clear();
        out.reserve(h + 1);
        for (k, w) in self.twiddles.iter().enumerate() {
            let zk = work[k % h];
            let zc = work[(h - k) % h].conj();
            let s = zk + zc;
            let d = zk - zc;
            let wd = w * d;
            // X(k) = (s − i·w·d)/2, with i·wd = (−wd.im, wd.re).
            out.push(Complex::new(0.5 * (s.re + wd.im), 0.5 * (s.im - wd.re)));
        }
    }
}

/// A cached complex-to-real inverse transform of even real length `n`:
/// the Hermitian repack plus a half-length inverse FFT.
///
/// Given the one-sided spectrum `X(0..=h)` of a real series (`h = n/2`),
/// the packed half-length series is rebuilt from
///
/// ```text
/// Xe(k) = (X(k) + conj(X(h−k)))/2
/// Xo(k) = (X(k) − conj(X(h−k)))/2 · conj(W(k))
/// Z(k)  = Xe(k) + i·Xo(k)
/// ```
///
/// and one unnormalized inverse FFT of length `h` yields `h·z(j)` with
/// `z(j) = x(2j) + i·x(2j+1)`. The unpack doubles each component, so the
/// output carries the same `n·x` scaling as the full-length unnormalized
/// inverse (the factor 2 is exact in binary floating point).
pub struct C2rPlan {
    n: usize,
    half_inv: Arc<dyn Fft<f64>>,
    /// `W(k) = e^(−2πik/n)` for `k = 0..=n/2`.
    twiddles: Vec<Complex<f64>>,
}

impl C2rPlan {
    fn new(n: usize, half_inv: Arc<dyn Fft<f64>>) -> Self {
        debug_assert!(n >= 2 && n % 2 == 0, "c2r requires even n >= 2");
        Self {
            n,
            half_inv,
            twiddles: twiddle_table(n),
        }
    }

    /// Real transform length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the degenerate length 0 (never built).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transforms the one-sided spectrum `spectrum` (length `n/2 + 1`)
    /// into the real series `out` (length `n`, scaled by `n` like the
    /// unnormalized full-length inverse FFT).
    fn process(
        &self,
        spectrum: &[Complex<f64>],
        work: &mut Vec<Complex<f64>>,
        out: &mut Vec<f64>,
        scratch: &mut Vec<Complex<f64>>,
    ) {
        let h = self.n / 2;
        debug_assert_eq!(spectrum.len(), h + 1);
        work.clear();
        work.reserve(h);
        for (k, w) in self.twiddles.iter().enumerate().take(h) {
            let xk = spectrum[k];
            let xc = spectrum[h - k].conj();
            let e = 0.5 * (xk + xc);
            let u = 0.5 * (xk - xc);
            // Xo(k) = u·conj(W(k)); Z(k) = Xe(k) + i·Xo(k).
            let uc = u * w.conj();
            work.push(Complex::new(e.re - uc.im, e.im + uc.re));
        }
        run_in_place(&*self.half_inv, work, scratch);
        out.clear();
        out.reserve(self.n);
        out.extend(work.iter().flat_map(|z| [2.0 * z.re, 2.0 * z.im]));
    }
}

/// `W(k) = e^(−2πik/n)` for `k = 0..=n/2`.
fn twiddle_table(n: usize) -> Vec<Complex<f64>> {
    (0..=n / 2)
        .map(|k| Complex::from_polar(1.0, -2.0 * std::f64::consts::PI * k as f64 / n as f64))
        .collect()
}

impl SpectralWorkspace {
    /// Creates an empty workspace in the default [`SpectralMode::RealHalf`]
    /// mode; plans are built lazily on first use.
    pub fn new() -> Self {
        Self::with_mode(SpectralMode::default())
    }

    /// Creates an empty workspace with an explicit [`SpectralMode`] —
    /// [`SpectralMode::ComplexFull`] reproduces the pre-r2c pipeline
    /// bit-for-bit for equivalence tests and benchmarks.
    pub fn with_mode(mode: SpectralMode) -> Self {
        Self {
            inner: RefCell::new(Inner {
                planner: FftPlanner::new(),
                forward: HashMap::new(),
                inverse: HashMap::new(),
                r2c: HashMap::new(),
                c2r: HashMap::new(),
                buffer: Vec::new(),
                scratch: Vec::new(),
                half: Vec::new(),
                real: Vec::new(),
                rows: Vec::new(),
                plans_built: 0,
                plans_built_c2c: 0,
                plans_built_r2c: 0,
                plan_requests: 0,
                plan_hits: 0,
                transforms_run: 0,
            }),
            mode,
        }
    }

    /// The spectral mode the workspace was created with.
    pub fn mode(&self) -> SpectralMode {
        self.mode
    }

    /// The cached forward plan for length `n`, building it on first use.
    pub fn forward(&self, n: usize) -> Arc<dyn Fft<f64>> {
        self.plan(n, true)
    }

    /// The cached inverse plan for length `n`, building it on first use.
    pub fn inverse(&self, n: usize) -> Arc<dyn Fft<f64>> {
        self.plan(n, false)
    }

    fn plan(&self, n: usize, forward: bool) -> Arc<dyn Fft<f64>> {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.plan_requests += 1;
        let map = if forward {
            &mut inner.forward
        } else {
            &mut inner.inverse
        };
        if let Some(plan) = map.get(&n) {
            inner.plan_hits += 1;
            return Arc::clone(plan);
        }
        let plan = if forward {
            inner.planner.plan_fft_forward(n)
        } else {
            inner.planner.plan_fft_inverse(n)
        };
        inner.plans_built += 1;
        inner.plans_built_c2c += 1;
        map.insert(n, Arc::clone(&plan));
        plan
    }

    /// The cached real-to-complex plan for even real length `n`, building
    /// it (and its inner half-length c2c plan) on first use. The r2c map
    /// is keyed separately from the c2c maps, so a same-length c2c request
    /// never aliases with it.
    pub fn r2c(&self, n: usize) -> Arc<R2cPlan> {
        {
            let mut inner = self.inner.borrow_mut();
            inner.plan_requests += 1;
            if let Some(plan) = inner.r2c.get(&n) {
                let plan = Arc::clone(plan);
                inner.plan_hits += 1;
                return plan;
            }
        }
        // Build outside the borrow: the inner half-length plan goes
        // through the shared c2c cache (and its own counters).
        let half_fft = self.forward(n / 2);
        let plan = Arc::new(R2cPlan::new(n, half_fft));
        let mut inner = self.inner.borrow_mut();
        inner.plans_built += 1;
        inner.plans_built_r2c += 1;
        inner.r2c.insert(n, Arc::clone(&plan));
        plan
    }

    /// The cached complex-to-real plan for even real length `n`, building
    /// it (and its inner half-length inverse plan) on first use.
    pub fn c2r(&self, n: usize) -> Arc<C2rPlan> {
        {
            let mut inner = self.inner.borrow_mut();
            inner.plan_requests += 1;
            if let Some(plan) = inner.c2r.get(&n) {
                let plan = Arc::clone(plan);
                inner.plan_hits += 1;
                return plan;
            }
        }
        let half_inv = self.inverse(n / 2);
        let plan = Arc::new(C2rPlan::new(n, half_inv));
        let mut inner = self.inner.borrow_mut();
        inner.plans_built += 1;
        inner.plans_built_r2c += 1;
        inner.c2r.insert(n, Arc::clone(&plan));
        plan
    }

    /// Number of distinct plans built so far (cache misses), summed over
    /// every plan kind: c2c forward/inverse plus the r2c/c2r wrappers
    /// (whose inner half-length c2c plans are counted by the c2c tally
    /// when first built).
    pub fn plans_built(&self) -> usize {
        self.inner.borrow().plans_built
    }

    /// Number of distinct complex-to-complex plans built so far.
    pub fn plans_built_c2c(&self) -> usize {
        self.inner.borrow().plans_built_c2c
    }

    /// Number of distinct r2c/c2r wrapper plans built so far. Counted
    /// apart from [`plans_built_c2c`](Self::plans_built_c2c): a cache
    /// keyed only by length would silently alias a length-`n` r2c plan
    /// with a length-`n` c2c plan, which compute different transforms.
    pub fn plans_built_r2c(&self) -> usize {
        self.inner.borrow().plans_built_r2c
    }

    /// Number of plan lookups (any kind) served so far.
    pub fn plan_requests(&self) -> usize {
        self.inner.borrow().plan_requests
    }

    /// Number of plan lookups answered from cache.
    pub fn plan_hits(&self) -> usize {
        self.inner.borrow().plan_hits
    }

    /// Number of physical FFT executions run through the workspace. A
    /// packed r2c/c2r transform counts 1 (one half-length FFT); a batched
    /// permutation pass over `m` rounds counts `⌈m/2⌉` in
    /// [`SpectralMode::RealHalf`] (two rounds per FFT) and `m` in
    /// [`SpectralMode::ComplexFull`].
    pub fn transforms_run(&self) -> usize {
        self.inner.borrow().transforms_run
    }

    /// Runs the forward DFT of `samples` into the recycled buffer and hands
    /// the *full* complex spectrum to `f`. No allocation occurs once the
    /// buffers have grown to the working length. This is always a
    /// complex-to-complex transform, regardless of [`SpectralMode`].
    pub fn with_spectrum<R>(&self, samples: &[f64], f: impl FnOnce(&[Complex<f64>]) -> R) -> R {
        let fft = self.forward(samples.len());
        let (mut buffer, mut scratch) = self.take_buffers();
        buffer.clear();
        buffer.extend(samples.iter().map(|&v| Complex::new(v, 0.0)));
        run_in_place(&*fft, &mut buffer, &mut scratch);
        let out = f(&buffer);
        self.put_buffers(buffer, scratch, 1);
        out
    }

    /// Runs the forward DFT of real `samples` and hands the *one-sided*
    /// spectrum `X(0..=n/2)` to `f` — everything a real signal carries, by
    /// Hermitian symmetry. In [`SpectralMode::RealHalf`] an even-length
    /// series runs through the packed half-length [`R2cPlan`] (half the
    /// transform work); odd lengths and [`SpectralMode::ComplexFull`] run
    /// the full complex transform and hand out its first `n/2 + 1` bins,
    /// bit-for-bit those of [`with_spectrum`](Self::with_spectrum).
    pub fn with_half_spectrum<R>(
        &self,
        samples: &[f64],
        f: impl FnOnce(&[Complex<f64>]) -> R,
    ) -> R {
        let n = samples.len();
        if n == 0 {
            return f(&[]);
        }
        if self.mode == SpectralMode::ComplexFull || n % 2 != 0 {
            return self.with_spectrum(samples, |spectrum| f(&spectrum[..n / 2 + 1]));
        }
        let plan = self.r2c(n);
        let (mut buffer, mut scratch) = self.take_buffers();
        let mut half = self.take_half();
        plan.process(samples, &mut buffer, &mut half, &mut scratch);
        let out = f(&half);
        self.put_half(half);
        self.put_buffers(buffer, scratch, 1);
        out
    }

    /// Computes the *raw* (unnormalized) circular autocorrelation of
    /// `samples` via Wiener–Khinchin — zero-pad to the next power of two at
    /// or above `2·len` (making the circular convolution linear), forward
    /// transform, squared magnitude, inverse transform — and hands the
    /// padded real result buffer to `f`. Entries `0..len` are the
    /// meaningful lags, scaled by the padded length `p` exactly like the
    /// unnormalized full-length round trip; callers normalize by the lag-0
    /// value.
    ///
    /// In [`SpectralMode::RealHalf`] the round trip runs packed
    /// ([`R2cPlan`] → `|X|²` over the half spectrum → [`C2rPlan`]): the
    /// padded length is a power of two, so this path always applies. In
    /// [`SpectralMode::ComplexFull`] the legacy full complex round trip
    /// runs and the real parts are handed to `f`, bit-for-bit the pre-r2c
    /// values. All plans come from the cache and every buffer is recycled.
    pub fn with_autocorrelation<R>(&self, samples: &[f64], f: impl FnOnce(&[f64]) -> R) -> R {
        let padded = (2 * samples.len()).next_power_of_two();
        if self.mode == SpectralMode::ComplexFull || padded < 2 {
            let fwd = self.forward(padded);
            let inv = self.inverse(padded);
            let (mut buffer, mut scratch) = self.take_buffers();
            let mut real = self.take_real();
            buffer.clear();
            buffer.extend(samples.iter().map(|&v| Complex::new(v, 0.0)));
            buffer.resize(padded, ZERO);
            run_in_place(&*fwd, &mut buffer, &mut scratch);
            for v in buffer.iter_mut() {
                *v = Complex::new(v.norm_sqr(), 0.0);
            }
            run_in_place(&*inv, &mut buffer, &mut scratch);
            real.clear();
            real.extend(buffer.iter().map(|c| c.re));
            let out = f(&real);
            self.put_real(real);
            self.put_buffers(buffer, scratch, 2);
            return out;
        }
        let r2c = self.r2c(padded);
        let c2r = self.c2r(padded);
        let (mut buffer, mut scratch) = self.take_buffers();
        let mut half = self.take_half();
        let mut real = self.take_real();
        real.clear();
        real.extend_from_slice(samples);
        real.resize(padded, 0.0);
        r2c.process(&real, &mut buffer, &mut half, &mut scratch);
        for v in half.iter_mut() {
            *v = Complex::new(v.norm_sqr(), 0.0);
        }
        c2r.process(&half, &mut buffer, &mut real, &mut scratch);
        let out = f(&real);
        self.put_real(real);
        self.put_half(half);
        self.put_buffers(buffer, scratch, 2);
        out
    }

    /// Batched spectral maxima for the permutation filter: `rows` is a
    /// contiguous `m × n` matrix of shuffled series (row-major), and the
    /// result holds, per row, the maximum *unnormalized* power
    /// `|X(k)|²` over the one-sided bins `k = 1..=n/2` (callers divide by
    /// `n` once — exact for the maximum, since division by a positive
    /// constant is monotone under IEEE round-to-nearest).
    ///
    /// In [`SpectralMode::RealHalf`] consecutive rows are packed two per
    /// complex FFT (`z = a + i·b`) and separated per bin by Hermitian
    /// symmetry, halving the transform count at *every* length; a trailing
    /// odd row runs through the single-series half-spectrum path. In
    /// [`SpectralMode::ComplexFull`] each row runs its own full transform,
    /// making every per-row maximum bit-identical to the unbatched legacy
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len()` is not a multiple of `n` (debug builds).
    pub fn shuffled_half_power_maxima(&self, rows: &[f64], n: usize) -> Vec<f64> {
        debug_assert!(n > 0 && rows.len() % n == 0);
        let m = rows.len() / n;
        let mut maxima = Vec::with_capacity(m);
        if n < 2 {
            maxima.resize(m, 0.0);
            return maxima;
        }
        if self.mode == SpectralMode::ComplexFull {
            let fft = self.forward(n);
            let (mut buffer, mut scratch) = self.take_buffers();
            let mut ran = 0usize;
            for row in rows.chunks_exact(n) {
                buffer.clear();
                buffer.extend(row.iter().map(|&v| Complex::new(v, 0.0)));
                run_in_place(&*fft, &mut buffer, &mut scratch);
                ran += 1;
                let max = buffer[1..=n / 2]
                    .iter()
                    .map(Complex::norm_sqr)
                    .fold(0.0, f64::max);
                maxima.push(max);
            }
            self.put_buffers(buffer, scratch, ran);
            return maxima;
        }

        let mut pairs = rows.chunks_exact(2 * n);
        if m >= 2 {
            // The full-length plan is only needed when at least one pair of
            // rounds rides a packed transform; a lone row (m = 1) goes
            // straight to the half-spectrum path below.
            let fft = self.forward(n);
            let (mut buffer, mut scratch) = self.take_buffers();
            let mut ran = 0usize;
            for pair in pairs.by_ref() {
                let (a, b) = pair.split_at(n);
                buffer.clear();
                buffer.extend(a.iter().zip(b).map(|(&x, &y)| Complex::new(x, y)));
                run_in_place(&*fft, &mut buffer, &mut scratch);
                ran += 1;
                let mut max_a = 0.0f64;
                let mut max_b = 0.0f64;
                for k in 1..=n / 2 {
                    let zk = buffer[k];
                    let zc = buffer[n - k].conj();
                    // A(k) = (zk + zc)/2, B(k) = (zk − zc)/(2i): only the
                    // squared magnitudes are needed, so no twiddles appear.
                    max_a = max_a.max(0.25 * (zk + zc).norm_sqr());
                    max_b = max_b.max(0.25 * (zk - zc).norm_sqr());
                }
                maxima.push(max_a);
                maxima.push(max_b);
            }
            self.put_buffers(buffer, scratch, ran);
        }

        let rest = pairs.remainder();
        if !rest.is_empty() {
            // Odd trailing row: one single-series half-spectrum transform.
            let max = self.with_half_spectrum(rest, |spectrum| {
                spectrum[1..=n / 2]
                    .iter()
                    .map(Complex::norm_sqr)
                    .fold(0.0, f64::max)
            });
            maxima.push(max);
        }
        maxima
    }

    /// Detaches the recycled buffers so a transform can run without holding
    /// the `RefCell` borrow — re-entrant calls (a closure that itself uses
    /// the workspace) then simply start from empty buffers instead of
    /// panicking.
    fn take_buffers(&self) -> (Vec<Complex<f64>>, Vec<Complex<f64>>) {
        let mut inner = self.inner.borrow_mut();
        (
            std::mem::take(&mut inner.buffer),
            std::mem::take(&mut inner.scratch),
        )
    }

    fn put_buffers(&self, buffer: Vec<Complex<f64>>, scratch: Vec<Complex<f64>>, ran: usize) {
        let mut inner = self.inner.borrow_mut();
        // Keep the larger allocation: nested use may have grown a fresh pair.
        if buffer.capacity() >= inner.buffer.capacity() {
            inner.buffer = buffer;
        }
        if scratch.capacity() >= inner.scratch.capacity() {
            inner.scratch = scratch;
        }
        inner.transforms_run += ran;
    }

    fn take_half(&self) -> Vec<Complex<f64>> {
        std::mem::take(&mut self.inner.borrow_mut().half)
    }

    fn put_half(&self, half: Vec<Complex<f64>>) {
        let mut inner = self.inner.borrow_mut();
        if half.capacity() >= inner.half.capacity() {
            inner.half = half;
        }
    }

    fn take_real(&self) -> Vec<f64> {
        std::mem::take(&mut self.inner.borrow_mut().real)
    }

    fn put_real(&self, real: Vec<f64>) {
        let mut inner = self.inner.borrow_mut();
        if real.capacity() >= inner.real.capacity() {
            inner.real = real;
        }
    }

    /// Detaches the recycled permutation-matrix arena (see
    /// [`shuffled_half_power_maxima`](Self::shuffled_half_power_maxima)).
    pub(crate) fn take_rows(&self) -> Vec<f64> {
        std::mem::take(&mut self.inner.borrow_mut().rows)
    }

    /// Returns the permutation-matrix arena for reuse.
    pub(crate) fn put_rows(&self, rows: Vec<f64>) {
        let mut inner = self.inner.borrow_mut();
        if rows.capacity() >= inner.rows.capacity() {
            inner.rows = rows;
        }
    }
}

/// Runs `fft` in place over `buffer`, growing `scratch` as required.
fn run_in_place(fft: &dyn Fft<f64>, buffer: &mut [Complex<f64>], scratch: &mut Vec<Complex<f64>>) {
    let need = fft.get_inplace_scratch_len();
    if scratch.len() < need {
        scratch.resize(need, ZERO);
    }
    fft.process_with_scratch(buffer, scratch);
}

impl Default for SpectralWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SpectralWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("SpectralWorkspace")
            .field("mode", &self.mode)
            .field("forward_plans", &inner.forward.len())
            .field("inverse_plans", &inner.inverse.len())
            .field("r2c_plans", &inner.r2c.len())
            .field("c2r_plans", &inner.c2r.len())
            .field("plans_built", &inner.plans_built)
            .field("plan_requests", &inner.plan_requests)
            .field("plan_hits", &inner.plan_hits)
            .field("transforms_run", &inner.transforms_run)
            .finish()
    }
}

thread_local! {
    static THREAD_WORKSPACE: SpectralWorkspace = SpectralWorkspace::new();
}

/// Runs `f` with the calling thread's shared [`SpectralWorkspace`].
///
/// This is how the detection pipeline gets plan reuse without threading a
/// workspace through every signature: `Periodogram::compute`,
/// `permutation_threshold`, `Autocorrelation::compute` and
/// `PeriodicityDetector::detect` all route here, so a MapReduce worker
/// thread builds each plan once per window and reuses it for every pair
/// and every permutation round it processes. The thread workspace runs in
/// the default [`SpectralMode::RealHalf`].
pub fn with_thread_workspace<R>(f: impl FnOnce(&SpectralWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference spectrum computed the way the seed code did: fresh
    /// planner, fresh buffers, every call.
    fn naive_spectrum(samples: &[f64]) -> Vec<Complex<f64>> {
        let mut buf: Vec<Complex<f64>> = samples.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut planner = FftPlanner::new();
        planner.plan_fft_forward(samples.len()).process(&mut buf);
        buf
    }

    fn test_samples(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 7.3).sin() + 0.1 * i as f64)
            .collect()
    }

    /// Tolerance for comparing two FFT algorithms on the same input:
    /// relative to the spectrum's largest magnitude, a generous multiple
    /// of the O(ε·log n) FFT rounding bound.
    fn spectral_tolerance(reference: &[Complex<f64>]) -> f64 {
        let scale = reference
            .iter()
            .map(|v| v.norm_sqr())
            .fold(0.0, f64::max)
            .sqrt();
        1e-12 * scale.max(1.0)
    }

    #[test]
    fn spectrum_matches_fresh_planner_exactly() {
        let ws = SpectralWorkspace::new();
        for n in [8usize, 60, 256, 1000] {
            let samples = test_samples(n);
            let expected = naive_spectrum(&samples);
            ws.with_spectrum(&samples, |got| {
                assert_eq!(got.len(), expected.len());
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(g, e, "n = {n}");
                }
            });
        }
    }

    #[test]
    fn half_spectrum_matches_full_spectrum() {
        // The packed r2c unpack agrees with the full complex transform to
        // within FFT rounding at every even length, including tiny ones.
        let ws = SpectralWorkspace::new();
        for n in [2usize, 4, 6, 8, 60, 96, 128, 256, 1000] {
            let samples = test_samples(n);
            let expected = naive_spectrum(&samples);
            let tol = spectral_tolerance(&expected);
            ws.with_half_spectrum(&samples, |got| {
                assert_eq!(got.len(), n / 2 + 1, "n = {n}");
                for (k, (g, e)) in got.iter().zip(&expected).enumerate() {
                    assert!(
                        (g - e).norm() <= tol,
                        "n = {n}, bin {k}: {g} vs {e} (tol {tol})"
                    );
                }
            });
        }
    }

    #[test]
    fn half_spectrum_odd_and_complex_full_are_bit_exact() {
        // Odd lengths (no r2c packing) and ComplexFull mode both hand out
        // the full transform's leading bins, bit-for-bit.
        let odd = test_samples(61);
        let expected = naive_spectrum(&odd);
        let ws = SpectralWorkspace::new();
        ws.with_half_spectrum(&odd, |got| {
            assert_eq!(got.len(), 31);
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g, e);
            }
        });

        let even = test_samples(64);
        let expected = naive_spectrum(&even);
        let legacy = SpectralWorkspace::with_mode(SpectralMode::ComplexFull);
        legacy.with_half_spectrum(&even, |got| {
            assert_eq!(got.len(), 33);
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g, e);
            }
        });
    }

    #[test]
    fn plans_are_cached_per_length() {
        let ws = SpectralWorkspace::new();
        let samples = test_samples(128);
        for _ in 0..10 {
            ws.with_spectrum(&samples, |_| ());
        }
        assert_eq!(ws.plans_built(), 1);
        assert_eq!(ws.transforms_run(), 10);
        assert_eq!(ws.plan_requests(), 10);
        assert_eq!(ws.plan_hits(), 9);

        let other = test_samples(96);
        ws.with_spectrum(&other, |_| ());
        assert_eq!(ws.plans_built(), 2);
    }

    #[test]
    fn r2c_and_c2c_plans_do_not_alias() {
        // Regression: a same-length r2c and c2c request must build two
        // distinct plans — a cache keyed only by length would alias them.
        let ws = SpectralWorkspace::new();
        let samples = test_samples(64);
        ws.with_spectrum(&samples, |_| ());
        assert_eq!((ws.plans_built_c2c(), ws.plans_built_r2c()), (1, 0));

        ws.with_half_spectrum(&samples, |_| ());
        // The r2c wrapper plus its inner half-length (32) c2c plan.
        assert_eq!((ws.plans_built_c2c(), ws.plans_built_r2c()), (2, 1));
        assert_eq!(ws.plans_built(), 3);

        // Both caches now hit; no further builds.
        ws.with_spectrum(&samples, |_| ());
        ws.with_half_spectrum(&samples, |_| ());
        assert_eq!(ws.plans_built(), 3);
        assert_eq!(
            ws.plans_built(),
            ws.plans_built_c2c() + ws.plans_built_r2c()
        );
    }

    #[test]
    fn forward_and_inverse_plans_are_distinct() {
        let ws = SpectralWorkspace::new();
        let f = ws.forward(64);
        let i = ws.inverse(64);
        assert_eq!(ws.plans_built(), 2);
        // Round trip: forward then inverse scales by n.
        let mut buf: Vec<Complex<f64>> = test_samples(64)
            .iter()
            .map(|&v| Complex::new(v, 0.0))
            .collect();
        let original = buf.clone();
        f.process(&mut buf);
        i.process(&mut buf);
        for (got, want) in buf.iter().zip(&original) {
            assert!((got.re / 64.0 - want.re).abs() < 1e-9);
            assert!((got.im / 64.0 - want.im).abs() < 1e-9);
        }
    }

    #[test]
    fn autocorrelation_lag0_dominates() {
        let ws = SpectralWorkspace::new();
        let samples = test_samples(100);
        ws.with_autocorrelation(&samples, |buf| {
            assert_eq!(buf.len(), 256); // (2·100).next_power_of_two()
            let r0 = buf[0];
            assert!(r0 > 0.0);
            for (lag, v) in buf.iter().enumerate().take(100).skip(1) {
                assert!(v.abs() <= r0 * (1.0 + 1e-9), "lag {lag}");
            }
        });
        // Packed round trip: r2c + c2r wrappers, each with an inner
        // half-length (128) c2c plan; two physical FFT executions.
        assert_eq!(ws.plans_built(), 4);
        assert_eq!(ws.plans_built_r2c(), 2);
        assert_eq!(ws.transforms_run(), 2);
    }

    #[test]
    fn autocorrelation_modes_agree() {
        let samples = test_samples(100);
        let legacy = SpectralWorkspace::with_mode(SpectralMode::ComplexFull);
        let packed = SpectralWorkspace::new();
        let expected = legacy.with_autocorrelation(&samples, |buf| buf.to_vec());
        // Legacy mode keeps the pre-r2c plan/transform accounting.
        assert_eq!(legacy.plans_built(), 2);
        assert_eq!(legacy.transforms_run(), 2);
        packed.with_autocorrelation(&samples, |got| {
            assert_eq!(got.len(), expected.len());
            let tol = 1e-9 * expected[0].abs().max(1.0);
            for (lag, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert!((g - e).abs() <= tol, "lag {lag}: {g} vs {e}");
            }
        });
    }

    #[test]
    fn batched_maxima_match_per_row_transforms() {
        // RealHalf batching (two rounds per FFT) agrees with row-by-row
        // full transforms; ComplexFull batching is bit-identical to them.
        for n in [7usize, 12, 31, 60] {
            for m in [1usize, 2, 3, 20] {
                let rows: Vec<f64> = (0..m * n)
                    .map(|i| (i as f64 * 0.37).sin() + 0.05 * (i % n) as f64)
                    .collect();
                let reference: Vec<f64> = rows
                    .chunks_exact(n)
                    .map(|row| {
                        naive_spectrum(row)[1..=n / 2]
                            .iter()
                            .map(Complex::norm_sqr)
                            .fold(0.0, f64::max)
                    })
                    .collect();

                let legacy = SpectralWorkspace::with_mode(SpectralMode::ComplexFull);
                let got = legacy.shuffled_half_power_maxima(&rows, n);
                assert_eq!(got, reference, "ComplexFull n={n} m={m}");
                assert_eq!(legacy.transforms_run(), m);

                let packed = SpectralWorkspace::new();
                let got = packed.shuffled_half_power_maxima(&rows, n);
                assert_eq!(got.len(), m);
                assert_eq!(packed.transforms_run(), m.div_ceil(2));
                for (i, (g, e)) in got.iter().zip(&reference).enumerate() {
                    let tol = 1e-9 * e.max(1.0);
                    assert!((g - e).abs() <= tol, "RealHalf n={n} m={m} row {i}");
                }
            }
        }
    }

    #[test]
    fn reentrant_use_does_not_panic() {
        let ws = SpectralWorkspace::new();
        let outer = test_samples(64);
        let inner = test_samples(32);
        let expected = naive_spectrum(&inner);
        ws.with_spectrum(&outer, |_| {
            // Nested use of the same workspace from inside a closure.
            ws.with_spectrum(&inner, |got| {
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(g, e);
                }
            });
        });
    }

    #[test]
    fn thread_workspace_persists_across_calls() {
        let before = with_thread_workspace(|ws| ws.plans_built());
        let samples = test_samples(333);
        with_thread_workspace(|ws| ws.with_spectrum(&samples, |_| ()));
        with_thread_workspace(|ws| ws.with_spectrum(&samples, |_| ()));
        let after = with_thread_workspace(|ws| ws.plans_built());
        // Both calls hit the same per-thread cache: one new plan at most
        // (another test on this thread may have planned length 333 first).
        assert!(after <= before + 1);
    }

    #[test]
    fn debug_format_mentions_plan_counts() {
        let ws = SpectralWorkspace::new();
        ws.forward(16);
        let s = format!("{ws:?}");
        assert!(s.contains("plans_built"), "{s}");
        assert!(s.contains("r2c_plans"), "{s}");
    }
}
