//! Fig. 5 — permutation-based power thresholding.
//!
//! Shows, for a TDSS-style trace, the periodogram maximum of the original
//! signal towering above the distribution of maxima obtained from `m`
//! random permutations, and how the estimated threshold `p_T` stabilizes
//! as `m` grows (the ablation DESIGN.md calls out).

#![warn(clippy::unwrap_used)]

use baywatch_bench::{f, render_table, save_json};
use baywatch_netsim::synth::{random_arrivals, tdss_like};
use baywatch_timeseries::periodogram::Periodogram;
use baywatch_timeseries::permutation::{permutation_threshold, PermutationConfig};
use baywatch_timeseries::series::TimeSeries;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 5: permutation-based filtering ===\n");

    let timestamps = tdss_like(0, 250, 5);
    let series = TimeSeries::from_timestamps(&timestamps, 1)?;
    let pg = Periodogram::compute(&series);

    let cfg = PermutationConfig::default(); // m = 20, C = 95%
    let thr = permutation_threshold(&series, &cfg)?;

    println!(
        "original signal: {} events over {} s",
        timestamps.len(),
        series.span_seconds()
    );
    println!("periodogram max power p_max(x)   = {:.2}", pg.max_power());
    println!("permutation threshold p_T (m=20) = {:.2}", thr.threshold);
    println!(
        "shuffled maxima (sorted): [{}]",
        thr.shuffled_maxima
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "\nratio p_max / p_T = {:.1}x  (periodic structure far exceeds chance)",
        pg.max_power() / thr.threshold
    );
    assert!(pg.max_power() > thr.threshold);

    // Negative control: random arrivals should NOT beat the threshold by a
    // comparable margin.
    let rand_ts = random_arrivals(0, 250, 395.0, 6);
    let rand_series = TimeSeries::from_timestamps(&rand_ts, 1)?;
    let rand_pg = Periodogram::compute(&rand_series);
    let rand_thr = permutation_threshold(&rand_series, &cfg)?;
    println!(
        "negative control (random arrivals): p_max / p_T = {:.2}x",
        rand_pg.max_power() / rand_thr.threshold
    );

    // Ablation: threshold stability vs m.
    println!("\n--- ablation: permutation count m vs threshold spread ---");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for m in [5usize, 10, 20, 40, 80] {
        let estimates: Vec<f64> = (0..10)
            .map(|seed| {
                permutation_threshold(
                    &series,
                    &PermutationConfig {
                        permutations: m,
                        seed,
                        ..Default::default()
                    },
                )
                .map(|t| t.threshold)
            })
            .collect::<Result<_, _>>()?;
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let sd = (estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>()
            / estimates.len() as f64)
            .sqrt();
        rows.push(vec![m.to_string(), f(mean, 3), f(sd, 3), f(sd / mean, 4)]);
        json_rows.push((m, mean, sd));
    }
    println!(
        "{}",
        render_table(&["m", "mean p_T", "sd", "relative spread"], &rows)
    );
    save_json("fig05_permutation", &json_rows);
    Ok(())
}
