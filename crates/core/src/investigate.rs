//! Investigation & verification — filter 8 (§VI, Table IV, Fig. 11).
//!
//! Even after all triage filters, a months-long window over a large network
//! yields thousands of suspicious destinations. The paper's bootstrap
//! procedure:
//!
//! 1. manually label a small window (one month) of cases,
//! 2. train a random forest (200 trees) on Table-II features,
//! 3. classify the remaining cases,
//! 4. rank residual cases by classifier *uncertainty* and hand analysts
//!    the most uncertain first — Fig. 11 shows the false-negative pool
//!    emptying rapidly under this order.

use baywatch_classifier::features::{CaseFeatures, CaseInput};
use baywatch_classifier::forest::{ForestConfig, RandomForest};

use crate::rank::BeaconCase;
use crate::CoreError;

/// A 2×2 confusion matrix of benign/malicious classification
/// (Table IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True benign classified benign.
    pub true_negative: usize,
    /// True benign classified malicious.
    pub false_positive: usize,
    /// True malicious classified benign.
    pub false_negative: usize,
    /// True malicious classified malicious.
    pub true_positive: usize,
}

impl ConfusionMatrix {
    /// Adds one observation.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (false, false) => self.true_negative += 1,
            (false, true) => self.false_positive += 1,
            (true, false) => self.false_negative += 1,
            (true, true) => self.true_positive += 1,
        }
    }

    /// Total cases.
    pub fn total(&self) -> usize {
        self.true_negative + self.false_positive + self.false_negative + self.true_positive
    }

    /// False-positive rate (`FP / (FP + TN)`), 0 when undefined.
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.false_positive + self.true_negative;
        if denom == 0 {
            0.0
        } else {
            self.false_positive as f64 / denom as f64
        }
    }

    /// Recall / true-positive rate (`TP / (TP + FN)`), 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            0.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Precision (`TP / (TP + FP)`), 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            0.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Accuracy over all cases, 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.true_positive + self.true_negative) as f64 / self.total() as f64
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "                  classified benign  classified malicious"
        )?;
        writeln!(
            f,
            "true benign       {:>17}  {:>20}",
            self.true_negative, self.false_positive
        )?;
        write!(
            f,
            "true malicious    {:>17}  {:>20}",
            self.false_negative, self.true_positive
        )
    }
}

/// Converts a pipeline case into the classifier's feature input.
pub fn case_to_input(case: &BeaconCase) -> CaseInput {
    CaseInput {
        intervals: case.intervals.clone(),
        dominant_periods: case.candidates.iter().map(|c| c.period).collect(),
        power: case.candidates.first().map(|c| c.power).unwrap_or(0.0),
        acf_score: case.candidates.first().map(|c| c.acf_score).unwrap_or(0.0),
        similar_sources: case.similar_sources,
        lm_score: case.lm_score,
        popularity: case.popularity,
    }
}

/// Extracts the Table-II feature vector of a case.
pub fn case_features(case: &BeaconCase) -> Vec<f64> {
    CaseFeatures::extract(&case_to_input(case)).to_vector()
}

/// The trained bootstrap classifier.
#[derive(Debug, Clone)]
pub struct Investigator {
    forest: RandomForest,
}

/// The classifier's output for one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseVerdict {
    /// Ensemble vote: `true` = malicious.
    pub malicious: bool,
    /// Ensemble probability of maliciousness.
    pub probability: f64,
    /// Prediction uncertainty in `[0, 1]` (1 = evenly split ensemble).
    pub uncertainty: f64,
}

impl Investigator {
    /// Trains the random forest on manually labeled cases
    /// (`true` = malicious).
    ///
    /// # Errors
    ///
    /// Propagates classifier training errors (empty set, degenerate
    /// config).
    pub fn train(labeled: &[(BeaconCase, bool)], config: &ForestConfig) -> Result<Self, CoreError> {
        let xs: Vec<Vec<f64>> = labeled.iter().map(|(c, _)| case_features(c)).collect();
        let ys: Vec<bool> = labeled.iter().map(|(_, y)| *y).collect();
        let forest = RandomForest::fit(&xs, &ys, config)?;
        Ok(Self { forest })
    }

    /// The underlying forest.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Table-II feature importances, named and sorted descending — which
    /// evidence actually drives the benign/malicious separation.
    pub fn feature_importances(&self) -> Vec<(&'static str, f64)> {
        const NAMES: [&str; baywatch_classifier::N_FEATURES] = [
            "series length",
            "primary period",
            "secondary period",
            "power",
            "acf score",
            "similar sources",
            "ngram distinct",
            "ngram top fraction",
            "symbol entropy",
            "compressibility",
            "interval cv",
            "match fraction",
            "lm score",
            "popularity",
        ];
        let mut out: Vec<(&'static str, f64)> = NAMES
            .iter()
            .copied()
            .zip(self.forest.feature_importances())
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Classifies one case.
    pub fn classify(&self, case: &BeaconCase) -> CaseVerdict {
        let x = case_features(case);
        let probability = self.forest.predict_proba(&x);
        CaseVerdict {
            malicious: probability >= 0.5,
            probability,
            uncertainty: 1.0 - (2.0 * probability - 1.0).abs(),
        }
    }

    /// Classifies a batch and evaluates against ground truth.
    pub fn confusion(&self, cases: &[(BeaconCase, bool)]) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for (case, truth) in cases {
            m.record(*truth, self.classify(case).malicious);
        }
        m
    }

    /// Reproduces Fig. 11: cases are examined in descending-uncertainty
    /// order; examining a case reveals its true label (fixing any
    /// classification error). Returns `curve[k]` = number of false
    /// negatives remaining after examining `k` cases (so `curve[0]` is the
    /// classifier's raw FN count and the curve is non-increasing).
    pub fn false_negative_curve(&self, cases: &[(BeaconCase, bool)]) -> Vec<usize> {
        let verdicts: Vec<CaseVerdict> = cases.iter().map(|(c, _)| self.classify(c)).collect();
        let mut order: Vec<usize> = (0..cases.len()).collect();
        order.sort_by(|&a, &b| {
            verdicts[b]
                .uncertainty
                .total_cmp(&verdicts[a].uncertainty)
                .then(a.cmp(&b))
        });

        let mut remaining_fn = cases
            .iter()
            .zip(&verdicts)
            .filter(|((_, truth), v)| *truth && !v.malicious)
            .count();
        let mut curve = Vec::with_capacity(cases.len() + 1);
        curve.push(remaining_fn);
        for &i in &order {
            let (_, truth) = &cases[i];
            if *truth && !verdicts[i].malicious {
                remaining_fn -= 1;
            }
            curve.push(remaining_fn);
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::CommunicationPair;
    use baywatch_timeseries::detector::CandidatePeriod;

    fn mk_case(dest: &str, periodic: bool, seed: u64) -> BeaconCase {
        let intervals: Vec<f64> = if periodic {
            (0..40)
                .map(|i| 60.0 + ((seed + i) % 5) as f64 * 0.4)
                .collect()
        } else {
            (0..40)
                .map(|i| (((seed + i) * 2654435761) % 900) as f64 + 1.0)
                .collect()
        };
        let candidates = if periodic {
            vec![CandidatePeriod {
                frequency: 1.0 / 60.0,
                period: 60.0,
                power: 8.0,
                acf_score: 0.85,
                p_value: Some(0.4),
            }]
        } else {
            vec![CandidatePeriod {
                frequency: 1.0 / 450.0,
                period: 450.0,
                power: 1.2,
                acf_score: 0.15,
                p_value: Some(0.06),
            }]
        };
        BeaconCase {
            pair: CommunicationPair::new("s", dest),
            intervals,
            candidates,
            url_tokens: Default::default(),
            popularity: if periodic { 0.0002 } else { 0.006 },
            lm_score: if periodic { -3.6 } else { -1.7 },
            similar_sources: 1,
        }
    }

    fn labeled_population(n: usize) -> Vec<(BeaconCase, bool)> {
        (0..n)
            .map(|i| {
                let malicious = i % 3 == 0;
                (
                    mk_case(&format!("d{i}.com"), malicious, i as u64),
                    malicious,
                )
            })
            .collect()
    }

    fn forest_cfg() -> ForestConfig {
        ForestConfig {
            n_trees: 40,
            ..Default::default()
        }
    }

    #[test]
    fn confusion_matrix_arithmetic() {
        let mut m = ConfusionMatrix::default();
        m.record(false, false);
        m.record(false, true);
        m.record(true, false);
        m.record(true, true);
        assert_eq!(m.total(), 4);
        assert_eq!(m.false_positive_rate(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.accuracy(), 0.5);
        assert!(m.to_string().contains("classified malicious"));
    }

    #[test]
    fn empty_matrix_rates_are_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn bootstrap_classifier_separates_populations() {
        let train = labeled_population(90);
        let inv = Investigator::train(&train, &forest_cfg()).unwrap();
        let test = labeled_population(60);
        let m = inv.confusion(&test);
        assert!(m.accuracy() > 0.9, "accuracy = {}", m.accuracy());
    }

    #[test]
    fn verdict_fields_consistent() {
        let inv = Investigator::train(&labeled_population(60), &forest_cfg()).unwrap();
        let v = inv.classify(&mk_case("x.com", true, 999));
        assert_eq!(v.malicious, v.probability >= 0.5);
        assert!((0.0..=1.0).contains(&v.uncertainty));
    }

    #[test]
    fn fn_curve_non_increasing_and_terminates_at_zero() {
        let inv = Investigator::train(&labeled_population(60), &forest_cfg()).unwrap();
        let test = labeled_population(120);
        let curve = inv.false_negative_curve(&test);
        assert_eq!(curve.len(), test.len() + 1);
        for w in curve.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(*curve.last().unwrap(), 0);
    }

    #[test]
    fn training_on_empty_set_errors() {
        assert!(Investigator::train(&[], &forest_cfg()).is_err());
    }

    #[test]
    fn importances_named_and_sorted() {
        let inv = Investigator::train(&labeled_population(90), &forest_cfg()).unwrap();
        let imp = inv.feature_importances();
        assert_eq!(imp.len(), baywatch_classifier::N_FEATURES);
        for w in imp.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let total: f64 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The synthetic populations differ most in ACF/lm/popularity; one
        // of those should top the list.
        let top = imp[0].0;
        assert!(
            [
                "acf score",
                "lm score",
                "popularity",
                "power",
                "match fraction",
                "interval cv",
                "compressibility",
                "symbol entropy"
            ]
            .contains(&top),
            "unexpected top feature {top}"
        );
    }

    #[test]
    fn feature_vector_arity() {
        let case = mk_case("x.com", true, 1);
        assert_eq!(case_features(&case).len(), baywatch_classifier::N_FEATURES);
    }
}
