//! Streaming/batch equivalence battery (deterministic half; the
//! randomized half lives in `stream_properties.rs`).
//!
//! The contract under test: a [`StreamingHunt`] in lossless mode, fed a
//! whole trace, must end in exactly the state a batch [`Baywatch`] run
//! over the final window would compute — byte-identical `export_json`,
//! identical confirmed-beacon sets — and the per-tick funnel deltas must
//! telescope exactly to the batch funnel totals. Chunk boundaries and
//! intra-tick arrival order must be invisible.
//!
//! [`StreamingHunt`]: baywatch::core::stream::StreamingHunt
//! [`Baywatch`]: baywatch::core::pipeline::Baywatch

use std::sync::Arc;

use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::record::LogRecord;
use baywatch::core::report::export_json;
use baywatch::core::stream::{StreamConfig, StreamingHunt, TickReport};
use baywatch::core::ScheduleSpec;
use baywatch::netsim::longtrace::{LongTraceConfig, LongTraceGenerator};
use baywatch::obs::ManualClock;
use baywatch::record_from_event;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const TICK_SECONDS: u64 = 300;
const WINDOW_TICKS: u64 = 4;
const TICKS: u64 = 8;
const TOP_K: usize = 10;

fn generator(seed: u64) -> LongTraceGenerator {
    LongTraceGenerator::new(LongTraceConfig {
        seed,
        tick_seconds: TICK_SECONDS,
        ..LongTraceConfig::default()
    })
}

fn trace(seed: u64) -> Vec<LogRecord> {
    generator(seed)
        .events(0..TICKS)
        .iter()
        .map(record_from_event)
        .collect()
}

fn pipeline_config() -> BaywatchConfig {
    BaywatchConfig {
        // ~68 distinct sources: τ_P = 5% whitelists the popular news
        // catalog while single-victim beacons survive.
        local_tau: 0.05,
        ..Default::default()
    }
}

fn stream_config() -> StreamConfig {
    let schedule = ScheduleSpec::new(TICK_SECONDS, WINDOW_TICKS).expect("valid schedule");
    let mut config = StreamConfig::lossless(schedule);
    config.pipeline = pipeline_config();
    config
}

/// Streams `records` in the given chunks and returns the engine plus
/// every tick report (including the forced final close).
fn stream_chunks(chunks: Vec<Vec<LogRecord>>) -> (StreamingHunt, Vec<TickReport>) {
    let mut hunt = StreamingHunt::new(stream_config()).expect("valid stream config");
    let mut reports = Vec::new();
    for chunk in chunks {
        reports.extend(hunt.ingest(&chunk));
    }
    reports.extend(hunt.finish());
    (hunt, reports)
}

/// The batch pipeline over the records inside the final window.
fn batch_on_final_window(records: &[LogRecord]) -> (String, Vec<String>, [i64; 8]) {
    let schedule = ScheduleSpec::new(TICK_SECONDS, WINDOW_TICKS).expect("valid schedule");
    let final_tick = TICKS - 1;
    let window: Vec<LogRecord> = records
        .iter()
        .filter(|r| schedule.in_window(final_tick, r.timestamp))
        .cloned()
        .collect();
    let mut engine = Baywatch::with_clock(pipeline_config(), Arc::new(ManualClock::new()));
    let report = engine.analyze(window);
    let export = export_json(&report, &engine.metrics_snapshot(), TOP_K);
    let confirmed: Vec<String> = report
        .reported()
        .iter()
        .map(|c| format!("{}→{}", c.case.pair.source, c.case.pair.destination))
        .collect();
    let funnel = [
        report.stats.events as i64,
        report.stats.pairs as i64,
        report.stats.after_global_whitelist as i64,
        report.stats.after_local_whitelist as i64,
        report.stats.periodic as i64,
        report.stats.after_token_filter as i64,
        report.stats.after_novelty as i64,
        report.stats.reported as i64,
    ];
    (export, confirmed, funnel)
}

#[test]
fn streaming_final_export_is_byte_identical_to_batch() {
    let records = trace(42);
    let (hunt, _) = stream_chunks(vec![records.clone()]);
    assert!(
        hunt.ledger().is_lossless(),
        "lossless config must lose nothing: {:?}",
        hunt.ledger()
    );

    let (batch_export, batch_confirmed, _) = batch_on_final_window(&records);
    let stream_export = hunt.final_export(TOP_K);
    assert_eq!(
        stream_export, batch_export,
        "streaming export deviates from the batch pipeline on the final window"
    );

    let stream_confirmed: Vec<String> = hunt
        .confirmed_pairs()
        .iter()
        .map(|p| format!("{}→{}", p.source, p.destination))
        .collect();
    assert_eq!(stream_confirmed, batch_confirmed);
    assert!(
        !stream_confirmed.is_empty(),
        "the trace carries persistent beacons; something must be confirmed"
    );
    // The confirmed set actually contains a planted beacon destination.
    let beacons = generator(42);
    assert!(
        stream_confirmed
            .iter()
            .any(|s| beacons.beacon_domains().iter().any(|d| s.ends_with(d))),
        "no planted beacon in {stream_confirmed:?}"
    );
}

#[test]
fn chunk_boundaries_and_intra_tick_order_are_invisible() {
    let records = trace(43);
    let (whole_hunt, whole_reports) = stream_chunks(vec![records.clone()]);
    let whole_export = whole_hunt.final_export(TOP_K);

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    // Several random chunkings, including single-record feeding.
    for round in 0..3 {
        let mut chunks = Vec::new();
        let mut rest = records.clone();
        while !rest.is_empty() {
            let take = if round == 0 {
                1
            } else {
                rng.random_range(1..=rest.len())
            };
            let tail = rest.split_off(take.min(rest.len()));
            chunks.push(rest);
            rest = tail;
        }
        let (hunt, reports) = stream_chunks(chunks);
        assert_eq!(
            hunt.final_export(TOP_K),
            whole_export,
            "chunking round {round} changed the final export"
        );
        assert_eq!(hunt.ledger(), whole_hunt.ledger());
        assert_eq!(
            format!("{reports:?}"),
            format!("{whole_reports:?}"),
            "chunking round {round} changed a tick report"
        );
    }

    // Shuffling arrivals *within* each tick must also be invisible: the
    // engine folds a tick's buffer before appending.
    let mut shuffled = Vec::new();
    for tick in 0..TICKS {
        let mut tick_records: Vec<LogRecord> = records
            .iter()
            .filter(|r| r.timestamp / TICK_SECONDS == tick)
            .cloned()
            .collect();
        tick_records.shuffle(&mut rng);
        shuffled.push(tick_records);
    }
    let (hunt, reports) = stream_chunks(shuffled);
    assert_eq!(hunt.final_export(TOP_K), whole_export);
    assert_eq!(hunt.ledger(), whole_hunt.ledger());
    assert_eq!(format!("{reports:?}"), format!("{whole_reports:?}"));
}

#[test]
fn per_tick_deltas_telescope_to_the_batch_funnel() {
    let records = trace(44);
    let (hunt, reports) = stream_chunks(vec![records.clone()]);
    assert!(hunt.ledger().is_lossless());

    let mut acc = [0i64; 8];
    for report in &reports {
        report.delta.accumulate(&mut acc);
    }
    let (_, _, batch_funnel) = batch_on_final_window(&records);
    assert_eq!(
        acc, batch_funnel,
        "summed per-tick deltas must telescope exactly to the batch funnel"
    );

    // And the last tick's absolute levels agree with the batch, too.
    let last = reports.last().expect("at least one tick closed");
    let levels = [
        last.stats.events as i64,
        last.stats.pairs as i64,
        last.stats.after_global_whitelist as i64,
        last.stats.after_local_whitelist as i64,
        last.stats.periodic as i64,
        last.stats.after_token_filter as i64,
        last.stats.after_novelty as i64,
        last.stats.reported as i64,
    ];
    assert_eq!(levels, batch_funnel);
}
