//! Integration: ELFF log ingestion → multi-scale scheduler → analyst
//! report. The full path a real deployment walks, end to end.

use baywatch::core::elff::read_elff;
use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::report::{render_report, ReportOptions};
use baywatch::core::schedule::MultiScaleScheduler;

/// Builds an ELFF log covering `days` days with a 10-minute beacon plus
/// human noise, starting 2015-03-01.
fn build_elff(days: u64) -> String {
    let mut log = String::from(
        "#Software: SGOS 6.5\n#Fields: date time c-ip cs-host cs-uri-path sc-status\n",
    );
    for day in 0..days {
        let dom = day + 1;
        // Beacon every 10 minutes around the clock.
        for i in 0..144u64 {
            let (h, m) = ((i * 10) / 60, (i * 10) % 60);
            log.push_str(&format!(
                "2015-03-{dom:02} {h:02}:{m:02}:00 10.0.0.9 qzvkxw.example.biz /c0{i:03x} 200\n"
            ));
        }
        // Human-ish noise from another host.
        for i in 0..60u64 {
            let t = (i * i * 613 + day * 17) % 86_400;
            let (h, m, s) = (t / 3600, (t % 3600) / 60, t % 60);
            log.push_str(&format!(
                "2015-03-{dom:02} {h:02}:{m:02}:{s:02} 10.0.0.7 news.example.org /story{i} 200\n"
            ));
        }
    }
    log
}

#[test]
fn elff_to_pipeline_to_report() {
    let log = build_elff(1);
    let outcome = read_elff(log.as_bytes()).unwrap();
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(outcome.records.len(), 144 + 60);

    let mut engine = Baywatch::new(BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    });
    let analysis = engine.analyze(outcome.records);
    assert!(analysis.stats.periodic >= 1);
    assert_eq!(
        analysis.ranked[0].case.pair.destination,
        "qzvkxw.example.biz"
    );
    let period = analysis.ranked[0].case.primary_period().unwrap();
    assert!((period - 600.0).abs() < 30.0, "period = {period}");

    let text = render_report(&analysis, &ReportOptions::default());
    assert!(text.contains("qzvkxw.example.biz"));
    assert!(text.contains("periodic (verified)"));
    assert!(text.contains("series: x"));
}

#[test]
fn elff_to_multiscale_scheduler() {
    // Feed the scheduler day by day from parsed ELFF logs.
    let mut sched = MultiScaleScheduler::standard();
    let mut found_daily = false;
    for day in 0..7u64 {
        let log = build_elff(7);
        let outcome = read_elff(log.as_bytes()).unwrap();
        // Slice out this day's records by timestamp.
        let day_start = outcome.records[0].timestamp / 86_400 * 86_400 + day * 86_400;
        let day_records: Vec<_> = outcome
            .records
            .iter()
            .filter(|r| r.timestamp >= day_start && r.timestamp < day_start + 86_400)
            .cloned()
            .collect();
        assert!(!day_records.is_empty());
        for det in sched.ingest_day(day_records) {
            if det.tier == "daily" && det.pair.destination == "qzvkxw.example.biz" {
                found_daily = true;
            }
        }
    }
    assert!(found_daily, "daily tier should flag the 10-minute beacon");
    assert_eq!(sched.days_ingested(), 7);
}

/// Hand-written corrupt fixture: every corruption kind the lenient ELFF
/// parser distinguishes, with the exact line numbers and reasons pinned.
#[test]
fn elff_malformed_lines_are_counted_exactly() {
    let mut fixture: Vec<u8> = b"\
#Software: SGOS 6.5\n\
2015-03-01 07:59:59 10.0.0.9 early.example.com /x 200\n\
#Fields: date time c-ip cs-host cs-uri-path sc-status\n\
2015-03-01 08:00:00 10.0.0.1 beacon.example.net /ping 200\n\
2015-03-01 08:00:05 10.0.0.1\n\
not-a-date garbage 10.0.0.2 host.example.com /x 200\n\
2015-03-01 08:00:10 10.0.0.3 - /y 200\n"
        .to_vec();
    fixture.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']); // line 8: not UTF-8
    fixture.extend_from_slice(b"2015-03-01 08:00:15 10.0.0.1 beacon.example.net /ping 200\n");

    let outcome = read_elff(fixture.as_slice()).unwrap();

    assert_eq!(outcome.records.len(), 2, "only the two clean records parse");
    assert_eq!(outcome.malformed_lines, 5);
    assert_eq!(
        outcome.errors.len(),
        5,
        "all errors sampled while under the bound"
    );

    let lines: Vec<usize> = outcome.errors.iter().map(|e| e.line_number).collect();
    assert_eq!(lines, vec![2, 5, 6, 7, 8]);

    let reasons: Vec<&str> = outcome.errors.iter().map(|e| e.reason.as_str()).collect();
    assert!(reasons[0].contains("before #Fields"), "{:?}", reasons[0]);
    assert!(
        reasons[1].contains("expected 6 fields, got 3"),
        "{:?}",
        reasons[1]
    );
    assert!(reasons[2].contains("invalid date/time"), "{:?}", reasons[2]);
    assert!(reasons[3].contains("empty host"), "{:?}", reasons[3]);
    assert!(reasons[4].contains("expected 6 fields"), "{:?}", reasons[4]);
}

/// Past [`ERROR_SAMPLE_LIMIT`] the sample vector stays bounded but the
/// malformed count stays exact, and `analyze_outcome` carries both —
/// exact count into `stats.malformed_lines`, bounded samples into
/// `report.malformed_samples` — without perturbing detection.
#[test]
fn elff_sample_bound_survives_analyze_outcome() {
    use baywatch::core::io::ERROR_SAMPLE_LIMIT;

    let flood = ERROR_SAMPLE_LIMIT + 25;
    let mut log = build_elff(1);
    for i in 0..flood {
        log.push_str(&format!("corrupt-fragment-{i}\n"));
    }
    let outcome = read_elff(log.as_bytes()).unwrap();
    assert_eq!(outcome.records.len(), 144 + 60);
    assert_eq!(
        outcome.malformed_lines, flood,
        "count stays exact past the bound"
    );
    assert_eq!(
        outcome.errors.len(),
        ERROR_SAMPLE_LIMIT,
        "samples stay bounded"
    );

    let mut engine = Baywatch::new(BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    });
    let report = engine.analyze_outcome(outcome);
    assert_eq!(report.stats.malformed_lines, flood);
    assert_eq!(report.malformed_samples.len(), ERROR_SAMPLE_LIMIT);
    assert!(
        report.malformed_samples[0].contains("line "),
        "samples keep their line provenance: {:?}",
        report.malformed_samples[0]
    );
    // The corrupt lines must not leak into the funnel's event count or
    // suppress the beacon the clean records carry.
    assert_eq!(report.stats.events, 144 + 60);
    assert!(report.stats.periodic >= 1);
}
