//! Whitelist analysis — filters 1 and 2 of the pipeline (§III of the
//! paper).
//!
//! * The **global whitelist** removes destinations on a curated
//!   popular-domain list (Alexa-style). Matching is suffix-aware so
//!   `cdn.google.com` is covered by a `google.com` entry.
//! * The **local whitelist** is tuned per organization: any destination
//!   contacted by more than a fraction τ_P of the monitored population is
//!   considered organizational infrastructure (update servers, intranet
//!   CDNs) and removed. The paper uses τ_P = 0.01 (1% of the population).
//!
//! Whitelisting trades a theoretical risk (an attacker hiding behind a
//! whitelisted domain) for a massive reduction in pairs to analyze; the
//! paper discusses why the trade is acceptable for beaconing *triage*.

use std::collections::HashSet;

/// A suffix-matching global whitelist.
#[derive(Debug, Clone, Default)]
pub struct GlobalWhitelist {
    exact: HashSet<String>,
}

impl GlobalWhitelist {
    /// Builds a whitelist from domain entries (lower-cased internally).
    pub fn new<I, S>(domains: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self {
            exact: domains
                .into_iter()
                .map(|d| d.as_ref().to_lowercase())
                .collect(),
        }
    }

    /// Builds the default whitelist from the embedded popular-domain seed
    /// corpus (the Alexa-list substitution described in DESIGN.md).
    pub fn from_seed_corpus() -> Self {
        Self::new(baywatch_langmodel::corpus::seed_domains())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Whether the whitelist has no entries.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Whether `domain` (or any parent domain of it) is whitelisted.
    ///
    /// # Example
    ///
    /// ```
    /// use baywatch_core::whitelist::GlobalWhitelist;
    ///
    /// let wl = GlobalWhitelist::new(["google.com"]);
    /// assert!(wl.contains("google.com"));
    /// assert!(wl.contains("MAIL.google.com"));
    /// assert!(!wl.contains("notgoogle.com"));
    /// ```
    pub fn contains(&self, domain: &str) -> bool {
        let d = domain.to_lowercase();
        if self.exact.contains(&d) {
            return true;
        }
        // Walk parent suffixes: a.b.c.com -> b.c.com -> c.com.
        let mut rest = d.as_str();
        while let Some(pos) = rest.find('.') {
            rest = &rest[pos + 1..];
            // Require at least one dot left so bare TLDs don't match.
            if rest.contains('.') && self.exact.contains(rest) {
                return true;
            }
        }
        false
    }

    /// Adds an entry.
    pub fn insert(&mut self, domain: impl AsRef<str>) {
        self.exact.insert(domain.as_ref().to_lowercase());
    }
}

/// The local whitelist: destination popularity above τ_P.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalWhitelist {
    tau: f64,
}

impl LocalWhitelist {
    /// Creates a local whitelist with population threshold `tau`
    /// (paper: 0.01).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not within `(0, 1]`.
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0, 1]");
        Self { tau }
    }

    /// The threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Whether a destination with the given popularity (fraction of the
    /// population that contacted it) is whitelisted.
    pub fn is_whitelisted(&self, popularity: f64) -> bool {
        popularity > self.tau
    }
}

impl Default for LocalWhitelist {
    fn default() -> Self {
        Self::new(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_subdomain_match() {
        let wl = GlobalWhitelist::new(["example.com", "static.cdn.net"]);
        assert!(wl.contains("example.com"));
        assert!(wl.contains("www.example.com"));
        assert!(wl.contains("a.b.example.com"));
        assert!(wl.contains("static.cdn.net"));
        assert!(!wl.contains("cdn.net")); // only the subdomain is listed
        assert!(!wl.contains("example.org"));
    }

    #[test]
    fn no_bare_tld_matches() {
        let wl = GlobalWhitelist::new(["example.com"]);
        assert!(!wl.contains("com"));
        assert!(!wl.contains("other.com"));
    }

    #[test]
    fn case_insensitive() {
        let wl = GlobalWhitelist::new(["Example.COM"]);
        assert!(wl.contains("EXAMPLE.com"));
    }

    #[test]
    fn seed_corpus_whitelist_loads() {
        let wl = GlobalWhitelist::from_seed_corpus();
        assert!(wl.len() > 500);
        assert!(!wl.is_empty());
        assert!(wl.contains("google.com"));
        assert!(wl.contains("ajax.googleapis.com"));
        assert!(!wl.contains("qzxkwv.biz"));
    }

    #[test]
    fn insert_extends() {
        let mut wl = GlobalWhitelist::default();
        assert!(!wl.contains("corp.example"));
        wl.insert("corp.example");
        assert!(wl.contains("corp.example"));
    }

    #[test]
    fn local_whitelist_threshold() {
        let lw = LocalWhitelist::new(0.01);
        assert!(lw.is_whitelisted(0.5));
        assert!(lw.is_whitelisted(0.011));
        assert!(!lw.is_whitelisted(0.01)); // strictly greater
        assert!(!lw.is_whitelisted(0.001));
        assert_eq!(lw.tau(), 0.01);
    }

    #[test]
    fn local_whitelist_default_is_one_percent() {
        assert_eq!(LocalWhitelist::default().tau(), 0.01);
    }

    #[test]
    #[should_panic]
    fn tau_zero_panics() {
        LocalWhitelist::new(0.0);
    }
}
