//! Criterion micro-bench: the full per-pair detection pipeline (Step 1–3
//! + GMM) under clean, jittered and multi-period traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use baywatch_netsim::synth::{multi_period_burst, SyntheticBeacon};
use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};

fn bench_detector(c: &mut Criterion) {
    let detector = PeriodicityDetector::new(DetectorConfig::default());

    let clean = SyntheticBeacon {
        period: 60.0,
        count: 240,
        ..Default::default()
    }
    .generate(1);
    let noisy = SyntheticBeacon {
        period: 60.0,
        gaussian_sigma: 5.0,
        p_miss: 0.25,
        add_rate: 0.2,
        count: 240,
        ..Default::default()
    }
    .generate(2);
    let burst = multi_period_burst(0, 20, 16, 7.5, 600.0, 0.4, 3);

    let mut group = c.benchmark_group("detector");
    group.sample_size(20);
    for (label, ts) in [("clean", &clean), ("noisy", &noisy), ("burst", &burst)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), ts, |b, ts| {
            b.iter(|| detector.detect(black_box(ts)).unwrap());
        });
    }
    group.finish();

    // Ablation: GMM on vs off (design choice from DESIGN.md §5).
    let mut group = c.benchmark_group("detector_gmm_ablation");
    group.sample_size(20);
    for (label, fit_gmm) in [("with_gmm", true), ("without_gmm", false)] {
        let det = PeriodicityDetector::new(DetectorConfig {
            fit_gmm,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(label), &burst, |b, ts| {
            b.iter(|| det.detect(black_box(ts)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
