//! Criterion micro-bench: language-model training and scoring throughput
//! (every flagged destination gets scored, so this is on the ranking
//! filter's hot path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use baywatch_langmodel::dga::{DgaGenerator, DgaStyle};
use baywatch_langmodel::{corpus, DomainScorer};

fn bench_langmodel(c: &mut Criterion) {
    // Training on the full corpus (one-time cost per engine).
    let mut group = c.benchmark_group("langmodel_train");
    group.sample_size(10);
    let small_corpus: Vec<String> = corpus::seed_domains()
        .into_iter()
        .map(str::to_owned)
        .collect();
    group.bench_function("seed_corpus_3gram", |b| {
        b.iter(|| DomainScorer::train(black_box(small_corpus.iter()), 3));
    });
    group.finish();

    // Scoring throughput.
    let scorer = DomainScorer::train(corpus::training_corpus(), 3);
    let batch = DgaGenerator::new(DgaStyle::RandomAlpha, 1).generate_batch(1_000);
    let mut group = c.benchmark_group("langmodel_score");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("score_1000_domains", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in &batch {
                acc += scorer.score(black_box(d));
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_langmodel);
criterion_main!(benches);
