//! Machine-readable detector benchmark: pairs/sec, per-stage nanos, and
//! plan-cache statistics for both spectral modes, written as
//! `BENCH_detector.json` at the repository root.
//!
//! Unlike the criterion micro-benches this binary is a *regression gate*.
//! Two baseline flavours, because fields differ in how far they travel:
//!
//! * `--baseline PATH` — full gate against a run from the **same build**
//!   (CI blesses one run, then verifies a second against it): speedup
//!   ratio and plan-cache hit rates within the tolerance band, plus the
//!   deterministic detection checksums compared exactly.
//! * `--ratio-baseline PATH` — ratio-only gate against the **committed**
//!   `BENCH_detector.json`, which may come from another machine or
//!   another resolved `rand` build (the synthetic corpus is seeded, so
//!   its exact bytes — and hence the checksums — depend on the `rand`
//!   version, exactly like the golden funnel snapshot). Only the
//!   RealHalf/ComplexFull speedup ratio and plan-cache hit rates are
//!   compared, within the tolerance band.
//!
//! Absolute pairs/sec numbers are recorded for the curious but never
//! gated on — they depend on the host.
//!
//! A checkpoint probe additionally runs one small pipeline corpus three
//! ways — plain, checkpointed, and resumed with DLQ replay — recording
//! `checkpoints_written`/`dlq_replayed` accounting (exact-gated within a
//! build) and the checkpoint overhead ratio (recorded, never gated), so
//! a checkpoint-overhead or DLQ-accounting regression trips the gate.
//!
//! A resilience probe measures the clean-path cost of the breaker guard
//! and the armed retry backoff (ratios recorded, never gated) while
//! exact-gating their clean-path ledgers at zero transitions, zero
//! rejected lines, and zero backoff waits.
//!
//! A streaming probe drives the incremental `StreamingHunt` engine over a
//! seeded long-trace feed under a tight state budget, recording events/sec
//! and per-tick close latency (p50/p99/max — host-dependent, never gated),
//! exact-gating the stream ledger and detection-cache counts within a
//! build, and ratio-gating the verdict-cache hit rate — the incremental
//! engine's reason to exist — like the FFT plan-cache hit rate.
//!
//! Usage:
//!
//! ```text
//! bench_detector [--out PATH] [--quick] [--baseline PATH]
//!                [--ratio-baseline PATH] [--tolerance F]
//! ```
//!
//! * `--out PATH` — where to write the JSON (default `<repo>/BENCH_detector.json`).
//! * `--quick` — smaller corpus and a single timed pass (local smoke runs;
//!   quick output must not be blessed as the baseline).
//! * `--tolerance F` — relative band for ratio comparisons (default 0.25).

#![warn(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use serde_json::{json, Value};

use baywatch_core::checkpoint::CheckpointSpec;
use baywatch_core::io::{read_records, IngestGuard};
use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
use baywatch_core::record::LogRecord;
use baywatch_core::stream::{StreamConfig, StreamingHunt};
use baywatch_core::ScheduleSpec;
use baywatch_netsim::adversarial::pathological_sparse_beacon;
use baywatch_netsim::longtrace::{LongTraceConfig, LongTraceGenerator};
use baywatch_netsim::synth::{multi_period_burst, SyntheticBeacon};
use baywatch_obs::clock::MonotonicClock;
use baywatch_obs::registry::MetricsRegistry;
use baywatch_resilience::{BreakerConfig, RetryPolicy};
use baywatch_timeseries::detector::{DetectorConfig, DetectorObs, PeriodicityDetector};
use baywatch_timeseries::workspace::{SpectralMode, SpectralWorkspace};
use baywatch_timeseries::BudgetSpec;

/// Deterministic benchmark corpus: seeded beacon pairs spanning the
/// detector's interesting regimes. Periods repeat across seeds so the
/// plan cache sees both cold builds and warm hits, and series are long
/// enough (hundreds of events at minute-scale periods) that the spectral
/// stages dominate, as they do on real proxy-log pairs.
fn corpus(quick: bool) -> Vec<Vec<u64>> {
    let mut pairs = Vec::new();
    let periods: &[f64] = if quick {
        &[60.0, 300.0]
    } else {
        &[30.0, 60.0, 120.0, 300.0, 600.0]
    };
    let seeds_per_period: u64 = if quick { 2 } else { 3 };
    for (i, &period) in periods.iter().enumerate() {
        for seed in 0..seeds_per_period {
            // Clean, jittered, and lossy variants of the same period.
            pairs.push(
                SyntheticBeacon {
                    period,
                    count: 240,
                    ..Default::default()
                }
                .generate(1 + seed),
            );
            pairs.push(
                SyntheticBeacon {
                    period,
                    gaussian_sigma: period * 0.05,
                    p_miss: 0.2,
                    add_rate: 0.1,
                    count: 300,
                    ..Default::default()
                }
                .generate(100 + 10 * i as u64 + seed),
            );
        }
    }
    if !quick {
        for seed in 0..4 {
            pairs.push(multi_period_burst(0, 20, 16, 7.5, 600.0, 0.4, seed));
        }
    }
    pairs
}

struct ModeRun {
    elapsed_ns: u128,
    detections_ok: usize,
    detections_err: usize,
    periodic_pairs: usize,
    // Σ round(best_period · 1000) over periodic pairs: a deterministic
    // fingerprint that flips if either mode changes detection output.
    period_checksum: u64,
    stage_sums: [(String, u64, u64); 4],
    plan_requests: usize,
    plan_hits: usize,
    plans_built: usize,
    plans_built_c2c: usize,
    plans_built_r2c: usize,
    transforms_run: usize,
}

fn run_mode(mode: SpectralMode, pairs: &[Vec<u64>], passes: usize) -> ModeRun {
    let registry = MetricsRegistry::new();
    let obs = DetectorObs::new(&registry, Arc::new(MonotonicClock::new()));
    let detector = PeriodicityDetector::new(DetectorConfig::default()).with_obs(obs);
    let ws = SpectralWorkspace::with_mode(mode);

    // One untimed warmup pass builds every FFT plan the corpus needs, so
    // the timed passes measure steady-state batch throughput.
    for ts in pairs {
        let _ = detector.detect_in(&ws, ts);
    }

    let mut detections_ok = 0usize;
    let mut detections_err = 0usize;
    let mut periodic_pairs = 0usize;
    let mut period_checksum = 0u64;
    let start = Instant::now();
    for _ in 0..passes {
        for ts in pairs {
            match detector.detect_in(&ws, ts) {
                Ok(report) => {
                    detections_ok += 1;
                    if report.is_periodic() {
                        periodic_pairs += 1;
                    }
                    if let Some(best) = report.best() {
                        period_checksum =
                            period_checksum.wrapping_add((best.period * 1000.0).round() as u64);
                    }
                }
                Err(_) => detections_err += 1,
            }
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();

    let snapshot = registry.snapshot();
    let stage = |name: &str| -> (u64, u64) {
        snapshot
            .timings
            .get(name)
            .map(|h| (h.sum, h.total))
            .unwrap_or((0, 0))
    };
    let stage_sums = ["periodogram", "permutation", "acf", "gmm"].map(|s| {
        let (sum, total) = stage(&format!("detector.{s}.nanos"));
        (s.to_string(), sum, total)
    });

    ModeRun {
        elapsed_ns,
        detections_ok,
        detections_err,
        periodic_pairs,
        period_checksum,
        stage_sums,
        plan_requests: ws.plan_requests(),
        plan_hits: ws.plan_hits(),
        plans_built: ws.plans_built(),
        plans_built_c2c: ws.plans_built_c2c(),
        plans_built_r2c: ws.plans_built_r2c(),
        transforms_run: ws.transforms_run(),
    }
}

fn mode_json(run: &ModeRun) -> Value {
    let secs = run.elapsed_ns as f64 / 1e9;
    let pairs_per_sec = run.detections_ok as f64 / secs.max(1e-12);
    let stages: Value = run
        .stage_sums
        .iter()
        .map(|(name, sum, observations)| {
            (
                name.clone(),
                json!({
                    "sum_ns": sum,
                    "observations": observations,
                    "mean_ns": if *observations > 0 { sum / observations } else { 0 },
                }),
            )
        })
        .collect::<serde_json::Map<String, Value>>()
        .into();
    let hit_rate = if run.plan_requests > 0 {
        run.plan_hits as f64 / run.plan_requests as f64
    } else {
        0.0
    };
    json!({
        "pairs_per_sec": (pairs_per_sec * 10.0).round() / 10.0,
        "elapsed_ns": run.elapsed_ns as u64,
        "detections_ok": run.detections_ok,
        "detections_err": run.detections_err,
        "periodic_pairs": run.periodic_pairs,
        "period_checksum": run.period_checksum,
        "stage_nanos": stages,
        "plan_cache": {
            "requests": run.plan_requests,
            "hits": run.plan_hits,
            "hit_rate": (hit_rate * 1e4).round() / 1e4,
            "plans_built": run.plans_built,
            "plans_built_c2c": run.plans_built_c2c,
            "plans_built_r2c": run.plans_built_r2c,
            "transforms_run": run.transforms_run,
        },
    })
}

struct CheckpointProbe {
    plain_elapsed_ns: u128,
    checkpointed_elapsed_ns: u128,
    shards: u64,
    checkpoints_written: u64,
    dlq_entries: u64,
    dlq_replayed: u64,
    dlq_recovered: u64,
}

/// A dozen clean beacon pairs — the well-behaved part of the probe
/// corpora.
fn clean_records() -> Vec<LogRecord> {
    let mut records = Vec::new();
    for h in 0..12u64 {
        let period = 60 + (h % 6) * 30;
        for i in 0..80u64 {
            records.push(LogRecord::new(
                50_000 + i * period,
                format!("host-{h}"),
                format!("zxq{h}wvkt{h}n.biz"),
                format!("{:x}", (h * 77 + i) * 2_654_435_761 % 0xFF_FFFF),
            ));
        }
    }
    records
}

/// Deterministic pipeline corpus for the checkpoint probe: a dozen clean
/// beacon pairs plus one pathological sparse pair that exhausts the
/// per-pair op budget, lands in the DLQ, and is recovered on replay.
fn checkpoint_records() -> Vec<LogRecord> {
    let mut records = clean_records();
    for t in pathological_sparse_beacon(50_000, 300, 2_333) {
        records.push(LogRecord::new(t, "host-0", "pathological-dest.biz", "x"));
    }
    records
}

fn probe_config() -> BaywatchConfig {
    let mut config = BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    };
    // Tight enough that only the pathological pair trips it.
    config.detector.budget.max_ops = Some(800_000);
    config
}

/// Measures checkpoint overhead (same corpus, with and without shard
/// persistence) and exercises the resume + DLQ-replay path so the gate
/// pins its deterministic accounting.
fn run_checkpoint_probe() -> Result<CheckpointProbe, String> {
    let records = checkpoint_records();

    let mut plain = Baywatch::new(probe_config());
    let start = Instant::now();
    let _ = plain.analyze(records.clone());
    let plain_elapsed_ns = start.elapsed().as_nanos();

    let dir = std::env::temp_dir().join(format!("baywatch-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = |resume: bool, replay_budget: Option<BudgetSpec>| CheckpointSpec {
        resume,
        replay_budget,
        shard_size: 4,
        ..CheckpointSpec::new(dir.clone())
    };

    let mut engine = Baywatch::new(probe_config());
    let start = Instant::now();
    let first = engine
        .analyze_checkpointed(records.clone(), &spec(false, None))
        .map_err(|e| format!("checkpointed run failed under {}: {e}", dir.display()))?;
    let checkpointed_elapsed_ns = start.elapsed().as_nanos();

    let mut replayer = Baywatch::new(probe_config());
    let second = replayer
        .analyze_checkpointed(records, &spec(true, Some(BudgetSpec::UNLIMITED)))
        .map_err(|e| format!("replay run failed under {}: {e}", dir.display()))?;
    let _ = std::fs::remove_dir_all(&dir);

    let ops = engine.metrics_snapshot().operational;
    let count = |name: &str| ops.get(name).copied().unwrap_or(0);
    let first_ck = first
        .checkpoint
        .ok_or("checkpointed run reported no checkpoint outcome")?;
    let second_ck = second
        .checkpoint
        .ok_or("replay run reported no checkpoint outcome")?;
    Ok(CheckpointProbe {
        plain_elapsed_ns,
        checkpointed_elapsed_ns,
        shards: first_ck.total_shards as u64,
        checkpoints_written: count("checkpoint.shards_written")
            + count("checkpoint.manifest_writes"),
        dlq_entries: first_ck.dlq_entries as u64,
        dlq_replayed: second_ck.dlq_replayed as u64,
        dlq_recovered: second_ck.dlq_recovered as u64,
    })
}

fn checkpoint_json(p: &CheckpointProbe) -> Value {
    let overhead = if p.plain_elapsed_ns > 0 {
        p.checkpointed_elapsed_ns as f64 / p.plain_elapsed_ns as f64
    } else {
        0.0
    };
    json!({
        // Host-dependent, recorded but never gated.
        "plain_elapsed_ns": p.plain_elapsed_ns as u64,
        "checkpointed_elapsed_ns": p.checkpointed_elapsed_ns as u64,
        "overhead_ratio": (overhead * 1000.0).round() / 1000.0,
        // Deterministic accounting, exact-gated within one build.
        "shards": p.shards,
        "checkpoints_written": p.checkpoints_written,
        "dlq_entries": p.dlq_entries,
        "dlq_replayed": p.dlq_replayed,
        "dlq_recovered": p.dlq_recovered,
    })
}

struct ResilienceProbe {
    plain_ingest_elapsed_ns: u128,
    guarded_ingest_elapsed_ns: u128,
    disarmed_analyze_elapsed_ns: u128,
    armed_analyze_elapsed_ns: u128,
    lines: u64,
    records: u64,
    transitions: u64,
    rejected_lines: u64,
    retry_waits: u64,
}

/// Measures what the resilience layer costs when nothing is wrong: the
/// same clean corpus is parsed plain and through the per-line breaker
/// guard, and analyzed with the retry backoff disarmed and armed. On a
/// clean path the breaker must never transition or reject and the armed
/// backoff must never fire — those counts are exact-gated at zero, so a
/// fast-path regression (resilience machinery activating on healthy
/// input) trips the gate even though the overhead ratios themselves are
/// host-dependent and only recorded.
fn run_resilience_probe() -> Result<ResilienceProbe, String> {
    let mut data = String::new();
    for i in 0..20_000u64 {
        let line = format!(
            "{}\thost-{}\tsvc{}.example.net\ttok\n",
            50_000 + i,
            i % 40,
            i % 8
        );
        data.push_str(&line);
    }

    let start = Instant::now();
    let plain = read_records(data.as_bytes()).map_err(|e| format!("plain ingest failed: {e}"))?;
    let plain_ingest_elapsed_ns = start.elapsed().as_nanos();

    let mut guard = IngestGuard::new(BreakerConfig::default(), Arc::new(MonotonicClock::new()));
    let start = Instant::now();
    let guarded = guard
        .read_source("bench-clean", data.as_bytes())
        .map_err(|e| format!("guarded ingest failed: {e}"))?;
    let guarded_ingest_elapsed_ns = start.elapsed().as_nanos();
    if guarded.outcome.records.len() != plain.records.len() {
        return Err(format!(
            "guarded ingest admitted {} records, plain parsed {}",
            guarded.outcome.records.len(),
            plain.records.len()
        ));
    }
    let stats = guard.stats();

    let records = clean_records();
    let mut disarmed = Baywatch::new(BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    });
    let start = Instant::now();
    let _ = disarmed.analyze(records.clone());
    let disarmed_analyze_elapsed_ns = start.elapsed().as_nanos();

    let mut armed = Baywatch::new(BaywatchConfig {
        local_tau: 0.9,
        retry: RetryPolicy {
            base_nanos: 1_000_000,
            ..RetryPolicy::default()
        },
        ..Default::default()
    });
    let start = Instant::now();
    let _ = armed.analyze(records);
    let armed_analyze_elapsed_ns = start.elapsed().as_nanos();
    let retry_waits = armed
        .metrics_snapshot()
        .counters
        .get("resilience.retry.waits")
        .copied()
        .unwrap_or(0);

    Ok(ResilienceProbe {
        plain_ingest_elapsed_ns,
        guarded_ingest_elapsed_ns,
        disarmed_analyze_elapsed_ns,
        armed_analyze_elapsed_ns,
        lines: guarded.offered_lines as u64,
        records: guarded.outcome.records.len() as u64,
        transitions: stats.transitions(),
        rejected_lines: guarded.rejected_lines as u64,
        retry_waits,
    })
}

fn resilience_json(p: &ResilienceProbe) -> Value {
    let ratio = |num: u128, den: u128| {
        let r = num as f64 / den.max(1) as f64;
        (r * 1000.0).round() / 1000.0
    };
    json!({
        // Host-dependent, recorded but never gated.
        "plain_ingest_elapsed_ns": p.plain_ingest_elapsed_ns as u64,
        "guarded_ingest_elapsed_ns": p.guarded_ingest_elapsed_ns as u64,
        "ingest_overhead_ratio": ratio(p.guarded_ingest_elapsed_ns, p.plain_ingest_elapsed_ns),
        "disarmed_analyze_elapsed_ns": p.disarmed_analyze_elapsed_ns as u64,
        "armed_analyze_elapsed_ns": p.armed_analyze_elapsed_ns as u64,
        "retry_overhead_ratio": ratio(p.armed_analyze_elapsed_ns, p.disarmed_analyze_elapsed_ns),
        // Deterministic clean-path accounting, exact-gated within a build.
        "lines": p.lines,
        "records": p.records,
        "transitions": p.transitions,
        "rejected_lines": p.rejected_lines,
        "retry_waits": p.retry_waits,
    })
}

struct StreamProbe {
    elapsed_ns: u128,
    tick_p50_ns: u64,
    tick_p99_ns: u64,
    tick_max_ns: u64,
    ticks_closed: u64,
    events_offered: u64,
    events_admitted: u64,
    pairs_admitted: u64,
    pairs_evicted: u64,
    pairs_readmitted: u64,
    detect_runs: u64,
    detect_cached: u64,
    confirmed: u64,
}

/// Nearest-rank percentile over per-tick close latencies.
fn percentile_ns(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// Drives the streaming engine over a seeded long-trace feed under a
/// state budget tight enough that eviction, readmission, and the verdict
/// cache all stay busy — the regime the engine exists for. Tick batches
/// are pre-generated so the timed loop measures only ingest + tick close.
fn run_stream_probe(quick: bool) -> Result<StreamProbe, String> {
    let ticks: u64 = if quick { 8 } else { 24 };
    let generator = LongTraceGenerator::new(LongTraceConfig {
        seed: 21,
        tick_seconds: 300,
        ..LongTraceConfig::default()
    });
    let batches: Vec<Vec<LogRecord>> = (0..ticks)
        .map(|t| {
            generator
                .tick_events(t)
                .iter()
                .map(|e| {
                    LogRecord::new(
                        e.timestamp,
                        e.host.to_string(),
                        e.domain.clone(),
                        e.url_path.clone(),
                    )
                })
                .collect()
        })
        .collect();

    let schedule = ScheduleSpec::new(300, 4).map_err(|e| format!("invalid schedule: {e}"))?;
    let mut config = StreamConfig::lossless(schedule);
    config.ring_capacity = 64;
    config.state_budget_bytes = 128 * 1024;
    config.pipeline.local_tau = 0.05;
    let mut hunt = StreamingHunt::new(config).map_err(|e| format!("invalid stream config: {e}"))?;

    let mut latencies = Vec::with_capacity(batches.len() + 1);
    let mut closed = 0u64;
    let start = Instant::now();
    for batch in &batches {
        let tick_start = Instant::now();
        closed += hunt.ingest(batch).len() as u64;
        latencies.push(tick_start.elapsed().as_nanos() as u64);
    }
    let tick_start = Instant::now();
    closed += u64::from(hunt.finish().is_some());
    latencies.push(tick_start.elapsed().as_nanos() as u64);
    let elapsed_ns = start.elapsed().as_nanos();

    if !hunt.ledger().is_balanced() {
        return Err(format!("stream ledger out of balance: {:?}", hunt.ledger()));
    }
    latencies.sort_unstable();
    let ledger = *hunt.ledger();
    let snapshot = hunt.metrics_snapshot();
    let count = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    Ok(StreamProbe {
        elapsed_ns,
        tick_p50_ns: percentile_ns(&latencies, 50),
        tick_p99_ns: percentile_ns(&latencies, 99),
        tick_max_ns: percentile_ns(&latencies, 100),
        ticks_closed: closed,
        events_offered: ledger.events_offered,
        events_admitted: ledger.events_admitted,
        pairs_admitted: ledger.pairs_admitted,
        pairs_evicted: ledger.pairs_evicted,
        pairs_readmitted: ledger.pairs_readmitted,
        detect_runs: count("stream.detect.runs"),
        detect_cached: count("stream.detect.cached"),
        confirmed: hunt.confirmed_pairs().len() as u64,
    })
}

fn stream_json(p: &StreamProbe) -> Value {
    let secs = p.elapsed_ns as f64 / 1e9;
    let events_per_sec = p.events_offered as f64 / secs.max(1e-12);
    let cache_lookups = p.detect_runs + p.detect_cached;
    let hit_rate = if cache_lookups > 0 {
        p.detect_cached as f64 / cache_lookups as f64
    } else {
        0.0
    };
    json!({
        // Host-dependent, recorded but never gated.
        "elapsed_ns": p.elapsed_ns as u64,
        "events_per_sec": (events_per_sec * 10.0).round() / 10.0,
        "tick_p50_ns": p.tick_p50_ns,
        "tick_p99_ns": p.tick_p99_ns,
        "tick_max_ns": p.tick_max_ns,
        // Deterministic stream accounting, exact-gated within a build.
        "ticks_closed": p.ticks_closed,
        "events_offered": p.events_offered,
        "events_admitted": p.events_admitted,
        "pairs_admitted": p.pairs_admitted,
        "pairs_evicted": p.pairs_evicted,
        "pairs_readmitted": p.pairs_readmitted,
        "detect_runs": p.detect_runs,
        "detect_cached": p.detect_cached,
        "confirmed": p.confirmed,
        // Ratio-gated like the plan-cache hit rate: losing verdict-cache
        // hits means the incremental engine re-detects clean pairs.
        "detect_cache_hit_rate": (hit_rate * 1e4).round() / 1e4,
    })
}

fn get_f64(v: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p)?;
    }
    cur.as_f64()
}

/// Gate: compare machine-independent fields of `current` against
/// `baseline`. With `ratio_only`, the deterministic checksum fields are
/// skipped — they depend on the resolved `rand` build, so they only
/// travel between runs of the same binary, not across environments.
/// Returns a list of human-readable failures (empty = pass).
fn gate(current: &Value, baseline: &Value, tolerance: f64, ratio_only: bool) -> Vec<String> {
    let mut failures = Vec::new();

    if current.get("profile") != baseline.get("profile") {
        failures.push(format!(
            "profile mismatch: current {:?} vs baseline {:?} — run the gate with the profile the baseline was blessed under",
            current.get("profile"),
            baseline.get("profile")
        ));
        return failures;
    }

    // The headline ratio: RealHalf throughput over ComplexFull, measured
    // on the same host in the same process. Host speed cancels out.
    let ratio = |v: &Value| -> Option<f64> {
        let real = get_f64(v, &["modes", "real_half", "pairs_per_sec"])?;
        let complex = get_f64(v, &["modes", "complex_full", "pairs_per_sec"])?;
        (complex > 0.0).then(|| real / complex)
    };
    match (ratio(current), ratio(baseline)) {
        (Some(cur), Some(base)) => {
            let floor = base * (1.0 - tolerance);
            if cur < floor {
                failures.push(format!(
                    "speedup regression: RealHalf/ComplexFull = {cur:.2}x, \
                     baseline {base:.2}x (floor {floor:.2}x at tolerance {tolerance})"
                ));
            }
        }
        _ => failures.push("speedup ratio missing from current or baseline JSON".to_string()),
    }

    if !ratio_only {
        // Checkpoint accounting is a deterministic function of the probe
        // corpus: a count drift means the store started writing more (or
        // fewer) files per shard, or DLQ replay stopped recovering the
        // planted pathological pair.
        for field in [
            "shards",
            "checkpoints_written",
            "dlq_entries",
            "dlq_replayed",
            "dlq_recovered",
        ] {
            let cur = get_f64(current, &["checkpoint", field]);
            let base = get_f64(baseline, &["checkpoint", field]);
            if cur != base {
                failures.push(format!(
                    "checkpoint.{field}: current {cur:?} != baseline {base:?} \
                     (deterministic field — re-bless only with an explanation)"
                ));
            }
        }

        // The stream probe's ledger and verdict-cache counts are a
        // deterministic function of the seeded long trace: any drift
        // means admission, eviction, windowing, or cache invalidation
        // changed behaviour, not just speed.
        for field in [
            "ticks_closed",
            "events_offered",
            "events_admitted",
            "pairs_admitted",
            "pairs_evicted",
            "pairs_readmitted",
            "detect_runs",
            "detect_cached",
            "confirmed",
        ] {
            let cur = get_f64(current, &["stream", field]);
            let base = get_f64(baseline, &["stream", field]);
            if cur != base {
                failures.push(format!(
                    "stream.{field}: current {cur:?} != baseline {base:?} \
                     (deterministic field — re-bless only with an explanation)"
                ));
            }
        }

        // The clean-path resilience ledger is exact: a breaker that
        // transitions, rejects a line, or a backoff that fires on healthy
        // input is a fast-path regression regardless of how fast it ran.
        for field in [
            "lines",
            "records",
            "transitions",
            "rejected_lines",
            "retry_waits",
        ] {
            let cur = get_f64(current, &["resilience", field]);
            let base = get_f64(baseline, &["resilience", field]);
            if cur != base {
                failures.push(format!(
                    "resilience.{field}: current {cur:?} != baseline {base:?} \
                     (deterministic field — re-bless only with an explanation)"
                ));
            }
        }
    }

    for mode in ["complex_full", "real_half"] {
        // Plan-cache behaviour and detection output are deterministic
        // functions of the corpus: exact match required — but only within
        // one build, since the seeded corpus bytes follow the resolved
        // `rand` version.
        if !ratio_only {
            for field in [
                "periodic_pairs",
                "period_checksum",
                "detections_ok",
                "detections_err",
            ] {
                let cur = get_f64(current, &["modes", mode, field]);
                let base = get_f64(baseline, &["modes", mode, field]);
                if cur != base {
                    failures.push(format!(
                        "{mode}.{field}: current {cur:?} != baseline {base:?} \
                         (deterministic field — re-bless only with an explanation)"
                    ));
                }
            }
        }
        let cur = get_f64(current, &["modes", mode, "plan_cache", "hit_rate"]);
        let base = get_f64(baseline, &["modes", mode, "plan_cache", "hit_rate"]);
        match (cur, base) {
            (Some(c), Some(b)) => {
                if c < b * (1.0 - tolerance) {
                    failures.push(format!(
                        "{mode} plan-cache hit rate fell: {c:.4} vs baseline {b:.4}"
                    ));
                }
            }
            _ => failures.push(format!("{mode} plan-cache hit rate missing")),
        }
    }

    // The verdict-cache hit rate travels like the plan-cache hit rates:
    // it is coarse enough to survive a `rand`-version trace shift, and a
    // collapse means the streaming engine re-detects undirtied pairs.
    let cur = get_f64(current, &["stream", "detect_cache_hit_rate"]);
    let base = get_f64(baseline, &["stream", "detect_cache_hit_rate"]);
    match (cur, base) {
        (Some(c), Some(b)) => {
            if c < b * (1.0 - tolerance) {
                failures.push(format!(
                    "stream verdict-cache hit rate fell: {c:.4} vs baseline {b:.4}"
                ));
            }
        }
        _ => failures.push("stream verdict-cache hit rate missing".to_string()),
    }

    failures
}

fn repo_root_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detector.json")
}

fn main() -> ExitCode {
    let mut out = repo_root_out();
    let mut quick = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut ratio_baseline_path: Option<PathBuf> = None;
    let mut tolerance = 0.25f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--ratio-baseline" => match args.next() {
                Some(p) => ratio_baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--ratio-baseline requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match args.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("--tolerance requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let pairs = corpus(quick);
    let passes = if quick { 1 } else { 3 };
    println!(
        "corpus: {} pairs × {} timed passes ({} profile)",
        pairs.len(),
        passes,
        if quick { "quick" } else { "full" }
    );

    let complex = run_mode(SpectralMode::ComplexFull, &pairs, passes);
    let real = run_mode(SpectralMode::RealHalf, &pairs, passes);
    let probe = match run_checkpoint_probe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("checkpoint probe failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "checkpoint probe: {} shards, {} files written, overhead {:.2}x, \
         dlq {} entry(ies) / {} replayed / {} recovered",
        probe.shards,
        probe.checkpoints_written,
        probe.checkpointed_elapsed_ns as f64 / probe.plain_elapsed_ns.max(1) as f64,
        probe.dlq_entries,
        probe.dlq_replayed,
        probe.dlq_recovered
    );

    let resilience = match run_resilience_probe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("resilience probe failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "resilience probe: guarded ingest {:.2}x plain, armed retry {:.2}x disarmed \
         ({} transitions, {} rejected, {} waits on the clean path)",
        resilience.guarded_ingest_elapsed_ns as f64
            / resilience.plain_ingest_elapsed_ns.max(1) as f64,
        resilience.armed_analyze_elapsed_ns as f64
            / resilience.disarmed_analyze_elapsed_ns.max(1) as f64,
        resilience.transitions,
        resilience.rejected_lines,
        resilience.retry_waits
    );

    let stream = match run_stream_probe(quick) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("stream probe failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "stream probe: {} events / {} ticks, {:.1} events/sec, tick p99 {:.2} ms, \
         {} evicted / {} readmitted pairs, verdict cache {}/{} cached",
        stream.events_offered,
        stream.ticks_closed,
        stream.events_offered as f64 / (stream.elapsed_ns as f64 / 1e9).max(1e-12),
        stream.tick_p99_ns as f64 / 1e6,
        stream.pairs_evicted,
        stream.pairs_readmitted,
        stream.detect_cached,
        stream.detect_runs + stream.detect_cached
    );

    let complex_pps = complex.detections_ok as f64 / (complex.elapsed_ns as f64 / 1e9);
    let real_pps = real.detections_ok as f64 / (real.elapsed_ns as f64 / 1e9);
    let speedup = real_pps / complex_pps.max(1e-12);
    println!("ComplexFull: {complex_pps:.1} pairs/sec");
    println!("RealHalf:    {real_pps:.1} pairs/sec  ({speedup:.2}x)");

    let doc = json!({
        "schema": "baywatch.bench.detector/1",
        "profile": if quick { "quick" } else { "full" },
        "pairs": pairs.len(),
        "passes": passes,
        "speedup_real_over_complex": (speedup * 100.0).round() / 100.0,
        "modes": {
            "complex_full": mode_json(&complex),
            "real_half": mode_json(&real),
        },
        "checkpoint": checkpoint_json(&probe),
        "resilience": resilience_json(&resilience),
        "stream": stream_json(&stream),
    });

    let mut rendered = match serde_json::to_string_pretty(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to serialize benchmark JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    rendered.push('\n');
    if let Err(e) = std::fs::write(&out, &rendered) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());

    let gates: [(Option<PathBuf>, bool, &str); 2] = [
        (baseline_path, false, "full"),
        (ratio_baseline_path, true, "ratio-only"),
    ];
    for (path, ratio_only, kind) in gates {
        let Some(path) = path else { continue };
        let baseline: Value = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("failed to read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let failures = gate(&doc, &baseline, tolerance, ratio_only);
        if failures.is_empty() {
            println!(
                "bench gate ({kind}, vs {}): PASS (tolerance {tolerance})",
                path.display()
            );
        } else {
            eprintln!("bench gate ({kind}, vs {}): FAIL", path.display());
            for f in &failures {
                eprintln!("  - {f}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
