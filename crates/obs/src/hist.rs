//! Fixed-bucket histograms with exact merge semantics.
//!
//! A [`Histogram`] counts observations into a fixed set of buckets defined
//! by strictly increasing upper bounds plus an implicit overflow bucket.
//! Because the layout is fixed at construction, two snapshots taken from
//! histograms with the same [`Buckets`] merge *exactly*: the merged
//! snapshot is identical to one taken from a single histogram that saw the
//! union of both observation streams. That property (associativity,
//! commutativity, count preservation) is what lets per-shard metrics from
//! the MapReduce layers be combined without approximation, and is pinned
//! by property tests in `crates/obs/tests/properties.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ObsError;

/// A validated, strictly increasing set of bucket upper bounds.
///
/// An observation `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; values above every bound land in the implicit overflow
/// bucket, so a histogram with `n` bounds has `n + 1` counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buckets {
    bounds: Arc<[u64]>,
}

impl Buckets {
    /// Validates `bounds` as strictly increasing and non-empty.
    pub fn new(bounds: &[u64]) -> Result<Self, ObsError> {
        if bounds.is_empty() {
            return Err(ObsError::InvalidBuckets("no bucket bounds given".into()));
        }
        for pair in bounds.windows(2) {
            if pair[1] <= pair[0] {
                return Err(ObsError::InvalidBuckets(format!(
                    "bounds must be strictly increasing, got {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        Ok(Self {
            bounds: bounds.into(),
        })
    }

    /// Exponential bounds: `base, base*factor, base*factor^2, ...` for
    /// `count` buckets. `base` must be nonzero and `factor` at least 2 so
    /// the sequence stays strictly increasing; growth saturates at
    /// `u64::MAX`, which also caps the useful bucket count.
    pub fn exponential(base: u64, factor: u64, count: usize) -> Result<Self, ObsError> {
        if base == 0 {
            return Err(ObsError::InvalidBuckets("base must be nonzero".into()));
        }
        if factor < 2 {
            return Err(ObsError::InvalidBuckets("factor must be >= 2".into()));
        }
        let mut bounds = Vec::with_capacity(count);
        let mut next = base;
        for _ in 0..count {
            if bounds.last() == Some(&next) {
                break; // saturated at u64::MAX
            }
            bounds.push(next);
            next = next.saturating_mul(factor);
        }
        Self::new(&bounds)
    }

    /// The configured upper bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Index of the bucket an observation falls into, counting the
    /// overflow bucket as `bounds().len()`.
    fn index_of(&self, value: u64) -> usize {
        // Buckets are few (tens); a linear scan beats binary search on
        // cache behaviour and keeps the code obviously correct.
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }
}

/// A thread-safe fixed-bucket histogram.
///
/// Cloning yields a handle to the same underlying counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Buckets,
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram with the given bucket layout.
    pub fn new(buckets: Buckets) -> Self {
        let counts = (0..=buckets.bounds().len())
            .map(|_| AtomicU64::new(0))
            .collect();
        Self {
            buckets,
            inner: Arc::new(HistogramInner {
                counts,
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.buckets.index_of(value);
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The bucket layout.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Bulk-adds a snapshot's counters into this live histogram.
    ///
    /// This is the resume path's inverse of [`Histogram::snapshot`]: a
    /// per-shard delta persisted at checkpoint time is replayed into the
    /// live registry so counters after a resume match an uninterrupted
    /// run exactly. Refused with [`ObsError::BucketMismatch`] when the
    /// layouts differ, like [`HistogramSnapshot::merge`].
    pub fn absorb_snapshot(&self, snap: &HistogramSnapshot) -> Result<(), ObsError> {
        if self.buckets.bounds() != snap.bounds.as_slice()
            || snap.counts.len() != self.inner.counts.len()
        {
            return Err(ObsError::BucketMismatch {
                left: self.buckets.bounds().to_vec(),
                right: snap.bounds.clone(),
            });
        }
        for (cell, add) in self.inner.counts.iter().zip(&snap.counts) {
            cell.fetch_add(*add, Ordering::Relaxed);
        }
        self.inner.total.fetch_add(snap.total, Ordering::Relaxed);
        self.inner.sum.fetch_add(snap.sum, Ordering::Relaxed);
        Ok(())
    }

    /// A point-in-time copy of the counters.
    ///
    /// The snapshot is internally consistent for any quiescent histogram;
    /// under concurrent writes individual counters may lag each other by
    /// in-flight observations, which is the usual relaxed-counter trade.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.buckets.bounds().to_vec(),
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.inner.total.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a histogram's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds; `counts` has one extra entry for overflow.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given layout.
    pub fn empty(buckets: &Buckets) -> Self {
        Self {
            bounds: buckets.bounds().to_vec(),
            counts: vec![0; buckets.bounds().len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Exact merge: adds `other`'s counters into `self`.
    ///
    /// Refused with [`ObsError::BucketMismatch`] if the layouts differ —
    /// merging differently-bucketed histograms cannot be exact.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), ObsError> {
        if self.bounds != other.bounds {
            return Err(ObsError::BucketMismatch {
                left: self.bounds.clone(),
                right: other.bounds.clone(),
            });
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_non_increasing_bounds() {
        assert!(Buckets::new(&[]).is_err());
        assert!(Buckets::new(&[1, 1]).is_err());
        assert!(Buckets::new(&[5, 3]).is_err());
        assert!(Buckets::new(&[1, 2, 10]).is_ok());
    }

    #[test]
    fn exponential_bounds_grow_and_saturate() {
        let b = Buckets::exponential(1, 2, 8).unwrap();
        assert_eq!(b.bounds(), &[1, 2, 4, 8, 16, 32, 64, 128]);
        // Saturation truncates rather than producing duplicate bounds.
        let b = Buckets::exponential(u64::MAX / 2, 4, 5).unwrap();
        assert_eq!(b.bounds(), &[u64::MAX / 2, u64::MAX]);
        assert!(Buckets::exponential(0, 2, 4).is_err());
        assert!(Buckets::exponential(1, 1, 4).is_err());
    }

    #[test]
    fn observations_land_in_expected_buckets() {
        let h = Histogram::new(Buckets::new(&[10, 100]).unwrap());
        h.observe(0);
        h.observe(10); // inclusive upper bound
        h.observe(11);
        h.observe(100);
        h.observe(101); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1]);
        assert_eq!(s.total, 5);
        assert_eq!(s.sum, 222);
    }

    #[test]
    fn clones_share_counters() {
        let h = Histogram::new(Buckets::new(&[10]).unwrap());
        let h2 = h.clone();
        h.observe(1);
        h2.observe(2);
        assert_eq!(h.snapshot().total, 2);
    }

    #[test]
    fn merge_is_exact() {
        let buckets = Buckets::new(&[10, 100]).unwrap();
        let a = Histogram::new(buckets.clone());
        let b = Histogram::new(buckets.clone());
        let union = Histogram::new(buckets);
        for v in [1u64, 5, 50, 500] {
            a.observe(v);
            union.observe(v);
        }
        for v in [2u64, 60, 600, 7] {
            b.observe(v);
            union.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot()).unwrap();
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn absorb_snapshot_replays_a_delta_exactly() {
        let buckets = Buckets::new(&[10, 100]).unwrap();
        let live = Histogram::new(buckets.clone());
        live.observe(5);
        let mut delta = HistogramSnapshot::empty(&buckets);
        delta.counts = vec![1, 2, 3];
        delta.total = 6;
        delta.sum = 999;
        live.absorb_snapshot(&delta).unwrap();
        let s = live.snapshot();
        assert_eq!(s.counts, vec![2, 2, 3]);
        assert_eq!(s.total, 7);
        assert_eq!(s.sum, 1_004);

        let other = HistogramSnapshot::empty(&Buckets::new(&[7]).unwrap());
        assert!(matches!(
            live.absorb_snapshot(&other),
            Err(ObsError::BucketMismatch { .. })
        ));
    }

    #[test]
    fn merge_refuses_mismatched_layouts() {
        let mut a = HistogramSnapshot::empty(&Buckets::new(&[10]).unwrap());
        let b = HistogramSnapshot::empty(&Buckets::new(&[10, 20]).unwrap());
        assert!(matches!(a.merge(&b), Err(ObsError::BucketMismatch { .. })));
    }
}
