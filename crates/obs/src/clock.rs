//! Injectable time sources.
//!
//! Everything in the observability layer that measures *duration* reads
//! time through the [`Clock`] trait instead of calling `Instant::now()`
//! directly. Production code injects a [`MonotonicClock`]; tests inject a
//! [`ManualClock`] and advance it by hand, so span durations and timing
//! histograms are exactly reproducible and the deterministic-crate
//! wall-clock lint (`L2-wall-clock`) has a single audited read to allow.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be monotone non-decreasing: a later call never
/// returns a smaller value than an earlier one.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The production clock: nanoseconds since construction, read from the
/// OS monotonic clock.
///
/// This is the only wall-clock read in the observability layer; its output
/// flows exclusively into the *timings* section of a
/// [`MetricsSnapshot`](crate::MetricsSnapshot), which the deterministic
/// JSON export never includes.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturate rather than wrap: a process does not live 2^64 ns.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for tests: starts at zero and only moves when told.
///
/// All clones share the same underlying counter, so a test can hold one
/// handle and advance time observed by code under test holding another.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero nanoseconds.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock frozen at `nanos`.
    pub fn at(nanos: u64) -> Self {
        Self {
            nanos: AtomicU64::new(nanos),
        }
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute value. Never rewinds: setting a value
    /// below the current reading is ignored, preserving monotonicity.
    pub fn set(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_starts_at_zero_and_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
    }

    #[test]
    fn manual_clock_set_never_rewinds() {
        let c = ManualClock::at(100);
        c.set(50);
        assert_eq!(c.now_nanos(), 100, "rewind must be ignored");
        c.set(250);
        assert_eq!(c.now_nanos(), 250);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn clock_trait_is_object_safe() {
        let clocks: Vec<Box<dyn Clock>> = vec![
            Box::new(ManualClock::at(3)),
            Box::new(MonotonicClock::new()),
        ];
        assert_eq!(clocks[0].now_nanos(), 3);
        let _ = clocks[1].now_nanos();
    }
}
