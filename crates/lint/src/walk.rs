//! Workspace traversal: find every `.rs` file under the root and classify
//! it so each rule knows whether it applies.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS metadata, and the
/// linter's own test fixtures (which contain deliberate violations).
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".github",
    "fixtures",
    "results",
    "node_modules",
];

/// The crates whose output feeds ranked, reproducible verdicts. The L2
/// determinism rules apply only here: `mapreduce` schedules real threads
/// and `bench`/`langmodel` never feed the ranked report, so holding them
/// to bit-reproducibility would only breed allowlist noise.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["timeseries", "core", "stats", "netsim", "obs", "resilience"];

/// The crates carrying concurrent state whose atomic orderings must match
/// a declared `[[atomic]]` policy (L5-atomic-ordering): the metrics
/// registry, the resilience state machines, the thread-scheduling engine,
/// and the budgeted detection kernels.
pub const ATOMIC_GOVERNED_CRATES: &[&str] = &["obs", "resilience", "mapreduce", "timeseries"];

/// Hot modules whose unbounded loops must checkpoint an `ExecBudget`: the
/// periodicity-detection kernels a runaway series would otherwise spin in.
pub const BUDGETED_MODULES: &[&str] = &[
    "crates/timeseries/src/periodogram.rs",
    "crates/timeseries/src/permutation.rs",
    "crates/timeseries/src/acf.rs",
    "crates/timeseries/src/gmm.rs",
    "crates/timeseries/src/detector.rs",
];

/// Which part of the workspace a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Library code: `crates/*/src/**` or the umbrella `src/**`, minus
    /// `src/bin/**`.
    Lib,
    /// Binary targets (`src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    Tests,
    /// Benchmarks (`benches/**`).
    Benches,
    /// Examples (`examples/**`).
    Examples,
    /// Anything else (build scripts, fixtures that escaped the skip list).
    Other,
}

/// One workspace source file, with everything rules match on precomputed.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Root-relative path with forward slashes — the stable identity used
    /// in findings, baselines, and allowlist entries.
    pub rel_path: String,
    /// `Some("timeseries")` for `crates/timeseries/...`, `None` for the
    /// umbrella crate.
    pub crate_name: Option<String>,
    pub section: Section,
}

impl SourceFile {
    pub fn in_deterministic_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
    }

    pub fn is_budgeted_module(&self) -> bool {
        BUDGETED_MODULES.contains(&self.rel_path.as_str())
    }

    pub fn in_atomic_governed_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| ATOMIC_GOVERNED_CRATES.contains(&c))
    }
}

/// Walks `root` and returns every `.rs` file, classified, in a stable
/// (sorted-by-relative-path) order so reports and baselines never depend
/// on directory-entry order.
///
/// Symlinks are followed for files and directories alike, but every
/// visited directory is canonicalized into a seen-set first, so a link
/// cycle (`a -> ..`) terminates instead of recursing forever, and a tree
/// reachable twice is only linted once. Dangling links are skipped.
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut seen_dirs: HashSet<PathBuf> = HashSet::new();
    if let Ok(canon) = fs::canonicalize(root) {
        seen_dirs.insert(canon);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            // `metadata` (unlike `entry.file_type()`) follows symlinks, so
            // a linked dir or file is classified by what it points at; a
            // dangling link errors here and is skipped.
            let Ok(meta) = fs::metadata(&path) else {
                continue;
            };
            if meta.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                let Ok(canon) = fs::canonicalize(&path) else {
                    continue;
                };
                if seen_dirs.insert(canon) {
                    stack.push(path);
                }
            } else if meta.is_file() && name.ends_with(".rs") {
                if let Some(sf) = classify(root, &path) {
                    files.push(sf);
                }
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn classify(root: &Path, path: &Path) -> Option<SourceFile> {
    let rel = path.strip_prefix(root).ok()?;
    let rel_path = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let parts: Vec<&str> = rel_path.split('/').collect();

    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => Some((*name).to_string()),
        _ => None,
    };
    // The path inside the owning crate (or the workspace root for the
    // umbrella crate).
    let local: &[&str] = match parts.as_slice() {
        ["crates", _, rest @ ..] => rest,
        other => other,
    };
    let section = match local {
        ["src", "bin", ..] => Section::Bin,
        ["src", ..] => Section::Lib,
        ["tests", ..] => Section::Tests,
        ["benches", ..] => Section::Benches,
        ["examples", ..] => Section::Examples,
        _ => Section::Other,
    };
    Some(SourceFile {
        abs_path: path.to_path_buf(),
        rel_path,
        crate_name,
        section,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify_rel(rel: &str) -> SourceFile {
        classify(Path::new("/ws"), &Path::new("/ws").join(rel)).expect("classifiable")
    }

    #[test]
    fn sections_and_crates_are_recovered() {
        let f = classify_rel("crates/timeseries/src/gmm.rs");
        assert_eq!(f.crate_name.as_deref(), Some("timeseries"));
        assert_eq!(f.section, Section::Lib);
        assert!(f.in_deterministic_crate());
        assert!(f.is_budgeted_module());

        let f = classify_rel("crates/bench/src/bin/scalability.rs");
        assert_eq!(f.section, Section::Bin);
        assert!(!f.in_deterministic_crate());

        let f = classify_rel("src/lib.rs");
        assert_eq!(f.crate_name, None);
        assert_eq!(f.section, Section::Lib);

        let f = classify_rel("tests/determinism.rs");
        assert_eq!(f.section, Section::Tests);

        let f = classify_rel("crates/bench/benches/periodogram.rs");
        assert_eq!(f.section, Section::Benches);
    }

    fn temp_tree(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lint-walk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp tree");
        dir
    }

    #[test]
    fn visit_order_is_sorted_regardless_of_creation_order() {
        let root = temp_tree("order");
        // Create files in an order unlikely to match either name order or
        // typical directory-entry order.
        for rel in [
            "zz/src/last.rs",
            "src/mid.rs",
            "aa/src/first.rs",
            "src/aaa.rs",
        ] {
            let p = root.join(rel);
            fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            fs::write(&p, "fn f() {}\n").expect("write");
        }
        let rels =
            |files: &[SourceFile]| files.iter().map(|f| f.rel_path.clone()).collect::<Vec<_>>();
        let first = rels(&walk_workspace(&root).expect("walk"));
        let mut expected = first.clone();
        expected.sort();
        assert_eq!(first, expected, "output is sorted");
        // Re-walking (fresh read_dir traversal) yields the identical list.
        let second = rels(&walk_workspace(&root).expect("walk again"));
        assert_eq!(first, second);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn target_and_hidden_dirs_are_skipped() {
        let root = temp_tree("skip");
        for rel in [
            "src/kept.rs",
            "target/debug/build/generated.rs",
            ".hidden/sneaky.rs",
            "fixtures/planted.rs",
        ] {
            let p = root.join(rel);
            fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            fs::write(&p, "fn f() {}\n").expect("write");
        }
        let files = walk_workspace(&root).expect("walk");
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].rel_path, "src/kept.rs");
        let _ = fs::remove_dir_all(&root);
    }

    #[cfg(unix)]
    #[test]
    fn symlink_cycles_terminate_and_dedup() {
        let root = temp_tree("cycle");
        fs::create_dir_all(root.join("src")).expect("mkdir");
        fs::write(root.join("src/real.rs"), "fn f() {}\n").expect("write");
        // A self-referential loop: src/loop -> .. (the root), which
        // contains src again.
        std::os::unix::fs::symlink("..", root.join("src/loopback")).expect("symlink");
        // And a dangling link, which must be skipped silently.
        std::os::unix::fs::symlink("missing.rs", root.join("src/dangling.rs")).expect("symlink");
        let files = walk_workspace(&root).expect("walk terminates");
        assert_eq!(
            files
                .iter()
                .filter(|f| f.rel_path.ends_with("real.rs"))
                .count(),
            1,
            "the looped-to tree is visited once: {files:?}"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn resilience_is_held_to_determinism_rules() {
        // The breaker/retry/admission state machines feed reproducible
        // soak assertions: the crate must stay in the L2 determinism set.
        assert!(DETERMINISTIC_CRATES.contains(&"resilience"));
        let f = classify_rel("crates/resilience/src/breaker.rs");
        assert!(f.in_deterministic_crate());
    }
}
