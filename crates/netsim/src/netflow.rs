//! Netflow-style flow records (§X of the paper).
//!
//! Netflow gives connection-level information only — no domain names, no
//! payload — so the communication pair degrades to (source IP, destination
//! IP). Periodicity detection works unchanged; the *suspicion* filters that
//! rely on domain names (language model, token filter) have nothing to
//! score, which is exactly the trade-off the paper describes.

use crate::types::{HostId, ProxyEvent};

/// One flow record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEvent {
    /// Flow start, epoch seconds.
    pub timestamp: u64,
    /// Source host.
    pub source: HostId,
    /// Destination IPv4 address (packed).
    pub dst_ip: u32,
    /// Bytes transferred.
    pub bytes: u64,
    /// Packets transferred.
    pub packets: u32,
}

impl FlowEvent {
    /// Dotted-quad destination string — the "domain" a Netflow-based
    /// deployment keys destinations by.
    pub fn dst_string(&self) -> String {
        let b = self.dst_ip.to_be_bytes();
        format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// Downgrades proxy events to flow records: the domain is replaced by a
/// stable pseudo-IP derived from it (a real deployment would see the
/// resolved address), sizes are synthesized from the URL token length.
pub fn flows_from_proxy(events: &[ProxyEvent]) -> Vec<FlowEvent> {
    events
        .iter()
        .map(|e| {
            let dst_ip = pseudo_ip(&e.domain);
            FlowEvent {
                timestamp: e.timestamp,
                source: e.host,
                dst_ip,
                bytes: 200 + (e.url_path.len() as u64) * 37,
                packets: 3 + (e.url_path.len() as u32 % 5),
            }
        })
        .collect()
}

/// Deterministic pseudo-IP for a domain (stable across runs, avoids
/// reserved ranges by pinning the first octet to 100–199).
pub fn pseudo_ip(domain: &str) -> u32 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    domain.hash(&mut h);
    let v = h.finish() as u32;
    let first = 100 + (v >> 24) % 100;
    (first << 24) | (v & 0x00FF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy_event(t: u64, host: u32, domain: &str) -> ProxyEvent {
        ProxyEvent {
            timestamp: t,
            host: HostId(host),
            source_ip: 0x0A00_0001,
            domain: domain.into(),
            url_path: "abcdef".into(),
        }
    }

    #[test]
    fn conversion_preserves_timing_and_pairs() {
        let events = vec![
            proxy_event(100, 1, "evil.com"),
            proxy_event(160, 1, "evil.com"),
            proxy_event(130, 2, "good.org"),
        ];
        let flows = flows_from_proxy(&events);
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].timestamp, 100);
        assert_eq!(flows[0].source, HostId(1));
        // Same domain -> same pseudo-IP; different domains differ.
        assert_eq!(flows[0].dst_ip, flows[1].dst_ip);
        assert_ne!(flows[0].dst_ip, flows[2].dst_ip);
    }

    #[test]
    fn pseudo_ip_stable_and_in_range() {
        let a = pseudo_ip("example.com");
        assert_eq!(a, pseudo_ip("example.com"));
        let first_octet = a >> 24;
        assert!((100..200).contains(&first_octet));
    }

    #[test]
    fn dst_string_is_dotted_quad() {
        let f = FlowEvent {
            timestamp: 0,
            source: HostId(0),
            dst_ip: (101 << 24) | (2 << 16) | (3 << 8) | 4,
            bytes: 100,
            packets: 2,
        };
        assert_eq!(f.dst_string(), "101.2.3.4");
    }

    #[test]
    fn sizes_are_plausible() {
        let flows = flows_from_proxy(&[proxy_event(1, 1, "x.com")]);
        assert!(flows[0].bytes >= 200);
        assert!(flows[0].packets >= 3);
    }
}
