//! The invariant catalogue: one module per rule family.
//!
//! | id                   | guards                                                    |
//! |----------------------|-----------------------------------------------------------|
//! | `L1-float-ord`       | float comparators must be total (`total_cmp`)             |
//! | `L2-ambient-rng`     | no ambient randomness in deterministic crates             |
//! | `L2-wall-clock`      | no wall-clock reads in deterministic crates               |
//! | `L2-ambient-fs`      | no unaudited filesystem access there either               |
//! | `L2-hash-iter`       | no order-observing hash-container iteration there either  |
//! | `L3-budget`          | unbounded loops in hot modules must checkpoint a budget   |
//! | `L4-panic`           | no `unwrap`/`expect` in non-test library code             |
//! | `L5-atomic-ordering` | atomic `Ordering`s must match the module's declared policy|
//! | `L6-metric-registry` | metric/span names must match the committed manifest       |
//! | `L7-ledger-arith`    | no lossy arithmetic on declared accounting ledgers        |
//!
//! Every rule matches token sequences from [`crate::lexer`] inside scopes
//! recovered by [`crate::syntax`] — never raw text — so comments, doc
//! examples, and string literals cannot produce findings. The L5–L7
//! families additionally consult the item index ([`crate::items`]): scope
//! nesting, `use` resolution, and enclosing-impl lookup.

pub mod atomics;
pub mod budget;
pub mod determinism;
pub mod float_ord;
pub mod ledger;
pub mod metrics;
pub mod panics;

use crate::config::Config;
use crate::fix::Fix;
use crate::items::ItemIndex;
use crate::lexer::lex;
use crate::manifest::Manifest;
use crate::syntax::File;
use crate::walk::{Section, SourceFile};

/// Every rule id the linter knows, in report order. Allowlist entries are
/// validated against this list so a typo cannot silently suppress nothing.
pub const RULE_IDS: &[&str] = &[
    "L1-float-ord",
    "L2-ambient-rng",
    "L2-wall-clock",
    "L2-ambient-fs",
    "L2-hash-iter",
    "L3-budget",
    "L4-panic",
    "L5-atomic-ordering",
    "L6-metric-registry",
    "L7-ledger-arith",
];

/// One violation of the invariant catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-indexed line of the offending token.
    pub line: u32,
    /// The trimmed source line — the human anchor, and (with `rule` and
    /// `path`) the line-number-independent identity used by the baseline.
    pub snippet: String,
    /// What is wrong and how to fix it.
    pub message: String,
    /// Mechanical repair, when the rule has exactly one safe rewrite.
    /// Not part of a finding's *identity*: baselines and allowlists key on
    /// rule/path/snippet only, and cached findings drop the fix entirely.
    pub fix: Option<Fix>,
}

/// Configuration the symbol-resolved rules (L5–L7) read: the declared
/// atomic policies and ledger types from `lint.toml`, and the metrics
/// manifest. With everything `None`, those rules fall back to their
/// undeclared-state behaviour (L5 flags governed modules with no policy;
/// L6 and L7 stay off).
#[derive(Default, Clone, Copy)]
pub struct RuleContext<'a> {
    pub config: Option<&'a Config>,
    pub manifest: Option<&'a Manifest>,
}

/// Runs every applicable rule over one source file with an empty context
/// (policy-free L5, no manifest). Kept for callers and tests that only
/// exercise the token-level rules.
pub fn check_file(sf: &SourceFile, source: &str) -> Vec<Finding> {
    check_file_with(sf, source, RuleContext::default())
}

/// Runs every applicable rule over one source file.
pub fn check_file_with(sf: &SourceFile, source: &str, ctx: RuleContext<'_>) -> Vec<Finding> {
    let file = File::parse(lex(source));
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();

    // L1 applies everywhere a comparator could leak into an ordering —
    // including tests and benches, whose assertions encode expected ranked
    // output.
    float_ord::check(sf, &file, &lines, &mut findings);

    // L2 guards the crates whose output must be byte-reproducible.
    if sf.in_deterministic_crate() && sf.section == Section::Lib {
        determinism::check(sf, &file, &lines, &mut findings);
    }

    // L3 guards the hot detection kernels.
    if sf.is_budgeted_module() {
        budget::check(sf, &file, &lines, &mut findings);
    }

    // L4 guards non-test library code, workspace-wide.
    if sf.section == Section::Lib {
        panics::check(sf, &file, &lines, &mut findings);
    }

    // L5–L7 need the item index; build it once, only when a family will
    // actually consult it.
    let wants_l5 = sf.in_atomic_governed_crate() && sf.section == Section::Lib;
    let ledger_decl = ctx
        .config
        .and_then(|c| c.ledger(&sf.rel_path))
        .filter(|_| sf.section == Section::Lib);
    let wants_l6 = ctx.manifest.is_some() && sf.section == Section::Lib;
    if wants_l5 || wants_l6 || ledger_decl.is_some() {
        let items = ItemIndex::build_for(&file);
        if wants_l5 {
            let policy = ctx.config.and_then(|c| c.atomic_policy(&sf.rel_path));
            atomics::check(sf, &file, &items, &lines, policy, &mut findings);
        }
        if let Some(manifest) = ctx.manifest.filter(|_| wants_l6) {
            metrics::check(sf, &file, source, &lines, manifest, &mut findings);
        }
        if let Some(decl) = ledger_decl {
            ledger::check(sf, &file, &items, &lines, decl, &mut findings);
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // Nested `fn` items are visited once per enclosing scope; identical
    // findings collapse here.
    findings.dedup();
    findings
}

/// The trimmed source line a token sits on (1-indexed), for snippets.
pub(crate) fn snippet_at(lines: &[&str], line: u32) -> String {
    lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}
