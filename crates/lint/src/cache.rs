//! Incremental file-hash cache: skip re-analyzing files whose content,
//! configuration, and rule set have not changed since the last run.
//!
//! Format is a line-oriented TSV kept deliberately trivial:
//!
//! ```text
//! baywatch-lint-cache    v1    <config-digest-hex>
//! P    <fnv64-hex>    <rel-path>
//! F    <rule>    <line>    <escaped snippet>    <escaped message>
//! ```
//!
//! Each `P` line records one analyzed file; the `F` lines that follow it
//! are its findings (none for a clean file). Snippet/message fields are
//! backslash-escaped so tabs and newlines cannot break framing.
//!
//! The header digest folds in `lint.toml`, `METRICS.md`, and a rule-set
//! version constant, so editing any of them — or shipping new rules —
//! invalidates everything at once. A cache that fails to parse for any
//! reason is simply discarded: the only cost of a bad cache is a cold run.
//!
//! Cached findings never carry fixes (`--fix` bypasses the cache), and the
//! cache lives under `target/` by default so it is never committed.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use crate::fix::Fix;
use crate::rules::{Finding, RULE_IDS};

/// Bump when rule behaviour changes in a way content hashing cannot see.
const RULES_VERSION: &str = "rules-v2-L1..L7";

const MAGIC: &str = "baywatch-lint-cache";
const VERSION: &str = "v1";

/// FNV-1a 64-bit — tiny, fast, and deterministic across platforms.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest over everything that can change findings besides file content.
pub fn config_digest(config_text: &str, manifest_text: &str) -> u64 {
    let mut h = fnv64(RULES_VERSION.as_bytes());
    h ^= fnv64(config_text.as_bytes()).rotate_left(17);
    h ^= fnv64(manifest_text.as_bytes()).rotate_left(34);
    h
}

/// The cache as loaded from disk: per-path content hash and findings.
#[derive(Debug, Default)]
pub struct Cache {
    digest: u64,
    entries: HashMap<String, (u64, Vec<Finding>)>,
    /// Fresh results accumulated during this run, written back by `save`.
    updated: HashMap<String, (u64, Vec<Finding>)>,
    pub hits: usize,
    pub misses: usize,
}

impl Cache {
    /// Loads the cache at `path`, tolerant of every failure mode: missing,
    /// unreadable, stale digest, or corrupt lines all yield an empty
    /// (cold) cache for this digest.
    pub fn load(path: &Path, digest: u64) -> Self {
        let mut cache = Self {
            digest,
            ..Self::default()
        };
        let Ok(text) = fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return cache;
        };
        let head: Vec<&str> = header.split('\t').collect();
        if head.len() != 3 || head[0] != MAGIC || head[1] != VERSION {
            return cache;
        }
        if u64::from_str_radix(head[2], 16) != Ok(digest) {
            return cache;
        }
        let mut current: Option<String> = None;
        for line in lines {
            let cells: Vec<&str> = line.split('\t').collect();
            match cells.as_slice() {
                ["P", hash, rel_path] => {
                    let Ok(h) = u64::from_str_radix(hash, 16) else {
                        return Self {
                            digest,
                            ..Self::default()
                        };
                    };
                    cache
                        .entries
                        .insert((*rel_path).to_string(), (h, Vec::new()));
                    current = Some((*rel_path).to_string());
                }
                ["F", rule, line_no, snippet, message] => {
                    let (Some(path), Some(rule), Ok(line_no)) = (
                        current.as_ref(),
                        RULE_IDS.iter().find(|r| *r == rule),
                        line_no.parse::<u32>(),
                    ) else {
                        return Self {
                            digest,
                            ..Self::default()
                        };
                    };
                    let finding = Finding {
                        rule,
                        path: path.clone(),
                        line: line_no,
                        snippet: unescape(snippet),
                        message: unescape(message),
                        fix: None,
                    };
                    if let Some((_, fs)) = cache.entries.get_mut(path) {
                        fs.push(finding);
                    }
                }
                _ => {
                    return Self {
                        digest,
                        ..Self::default()
                    };
                }
            }
        }
        cache
    }

    /// Cached findings for `rel_path` when its content hash still matches.
    pub fn get(&mut self, rel_path: &str, content_hash: u64) -> Option<Vec<Finding>> {
        match self.entries.get(rel_path) {
            Some((h, findings)) if *h == content_hash => {
                self.hits += 1;
                self.updated
                    .insert(rel_path.to_string(), (content_hash, findings.clone()));
                Some(findings.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records freshly computed findings for `rel_path`.
    pub fn put(&mut self, rel_path: &str, content_hash: u64, findings: &[Finding]) {
        let stripped: Vec<Finding> = findings
            .iter()
            .map(|f| Finding {
                fix: None::<Fix>,
                ..f.clone()
            })
            .collect();
        self.updated
            .insert(rel_path.to_string(), (content_hash, stripped));
    }

    /// Writes the refreshed cache to `path`. Only files seen this run are
    /// kept, so deleted files cannot pin stale entries forever.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = format!("{MAGIC}\t{VERSION}\t{:016x}\n", self.digest);
        let mut paths: Vec<&String> = self.updated.keys().collect();
        paths.sort();
        for p in paths {
            let (hash, findings) = &self.updated[p];
            out.push_str(&format!("P\t{hash:016x}\t{p}\n"));
            for f in findings {
                out.push_str(&format!(
                    "F\t{}\t{}\t{}\t{}\n",
                    f.rule,
                    f.line,
                    escape(&f.snippet),
                    escape(&f.message)
                ));
            }
        }
        fs::write(path, out)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            snippet: snippet.to_string(),
            message: "msg with\ttab and\nnewline".to_string(),
            fix: None,
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lint-cache-{tag}-{}.tsv", std::process::id()))
    }

    #[test]
    fn round_trips_findings_through_disk() {
        let path = temp_path("rt");
        let digest = config_digest("cfg", "manifest");
        let mut cache = Cache::load(&path, digest);
        let fs_in = vec![finding("L4-panic", "x.unwrap();")];
        cache.put("crates/x/src/lib.rs", 42, &fs_in);
        cache.put("crates/y/src/lib.rs", 43, &[]);
        cache.save(&path).expect("cache save");

        let mut reloaded = Cache::load(&path, digest);
        let hit = reloaded.get("crates/x/src/lib.rs", 42).expect("warm hit");
        assert_eq!(hit, fs_in);
        assert_eq!(reloaded.get("crates/y/src/lib.rs", 43), Some(vec![]));
        assert_eq!(reloaded.hits, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn content_change_and_digest_change_both_invalidate() {
        let path = temp_path("inv");
        let digest = config_digest("cfg", "manifest");
        let mut cache = Cache::load(&path, digest);
        cache.put("a.rs", 1, &[finding("L4-panic", "s")]);
        cache.save(&path).expect("cache save");

        let mut same = Cache::load(&path, digest);
        assert!(
            same.get("a.rs", 2).is_none(),
            "content hash mismatch is a miss"
        );

        let mut other = Cache::load(&path, config_digest("different", "manifest"));
        assert!(
            other.get("a.rs", 1).is_none(),
            "digest mismatch discards the cache"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_caches_degrade_to_cold() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "not a cache\nat all").expect("write cache file");
        let mut cache = Cache::load(&path, 7);
        assert!(cache.get("a.rs", 1).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_rule_ids_discard_the_cache() {
        let path = temp_path("rule");
        let text = format!(
            "{MAGIC}\t{VERSION}\t{:016x}\nP\t{:016x}\ta.rs\nF\tL9-imaginary\t1\ts\tm\n",
            9u64, 1u64
        );
        std::fs::write(&path, text).expect("write cache file");
        let mut cache = Cache::load(&path, 9);
        assert!(cache.get("a.rs", 1).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
