//! Fixed-width binned histograms.
//!
//! Used by the ranking filter (score-distribution percentiles), by the
//! evaluation harness (interval distributions of simulated traces), and as a
//! building block for the n-gram histogram classifier feature.

use crate::StatsError;

/// A histogram over `[min, max)` with equally wide bins.
///
/// Values below `min` are clamped to the first bin; values at or above `max`
/// are clamped to the last bin, so every observation lands somewhere —
/// appropriate for the heavy-tailed interval data the pipeline sees.
///
/// # Example
///
/// ```
/// use baywatch_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
/// for v in [5.0, 15.0, 15.5, 99.0, 150.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.count(9), 2); // 99.0 and the clamped 150.0
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[min, max)` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `bins == 0`, the bounds
    /// are not finite, or `min >= max`.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                constraint: "must be at least 1",
            });
        }
        if !(min.is_finite() && max.is_finite() && min < max) {
            return Err(StatsError::InvalidParameter {
                name: "min/max",
                constraint: "must be finite with min < max",
            });
        }
        Ok(Self {
            min,
            max,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Index of the bin a value falls in (after clamping).
    pub fn bin_index(&self, value: f64) -> usize {
        if value < self.min {
            return 0;
        }
        let idx = ((value - self.min) / self.bin_width()) as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Records one observation.
    pub fn add(&mut self, value: f64) {
        let idx = self.bin_index(value);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Records every observation in an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Count in the given bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// Total number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Midpoint value of a bin (useful for plotting / mode estimation).
    pub fn bin_center(&self, bin: usize) -> f64 {
        self.min + (bin as f64 + 0.5) * self.bin_width()
    }

    /// The bin with the highest count, or `None` if no observations have
    /// been recorded. Ties resolve to the lowest bin index.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
    }

    /// Empirical probability mass per bin.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn clamping_behavior() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(4), 1);
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(0.0); // first bin
        h.add(2.0); // second bin (bin width 2)
        h.add(10.0); // clamped into last bin
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
    }

    #[test]
    fn mode_and_centers() {
        let mut h = Histogram::new(0.0, 30.0, 3).unwrap();
        h.extend([1.0, 12.0, 13.0, 14.0, 25.0]);
        assert_eq!(h.mode_bin(), Some(1));
        assert!((h.bin_center(1) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mode_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn mode_tie_resolves_low() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.extend([0.5, 2.5]);
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 7).unwrap();
        h.extend((0..100).map(|i| i as f64 / 100.0));
        let sum: f64 = h.normalized().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_empty_is_zeros() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.normalized(), vec![0.0, 0.0, 0.0]);
    }
}
