//! Rendering: a human table for terminals and a JSON document for tooling.

use crate::baseline::json_string;
use crate::rules::Finding;
use crate::LintOutcome;

/// How a finding fared against the allowlist and baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    New,
    Baselined,
    Allowlisted,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::New => "NEW",
            Status::Baselined => "baselined",
            Status::Allowlisted => "allowed",
        }
    }
}

const SNIPPET_WIDTH: usize = 56;

fn clip(s: &str) -> String {
    if s.chars().count() <= SNIPPET_WIDTH {
        return s.to_string();
    }
    let head: String = s.chars().take(SNIPPET_WIDTH.saturating_sub(1)).collect();
    format!("{head}…")
}

/// The human-facing table. `verbose` includes allowlisted/baselined rows.
pub fn render_table(outcome: &LintOutcome, verbose: bool) -> String {
    let mut rows: Vec<(Status, &Finding)> = Vec::new();
    rows.extend(outcome.new.iter().map(|f| (Status::New, f)));
    if verbose {
        rows.extend(outcome.baselined.iter().map(|f| (Status::Baselined, f)));
        rows.extend(
            outcome
                .allowlisted
                .iter()
                .map(|(f, _)| (Status::Allowlisted, f)),
        );
    }
    rows.sort_by(|(_, a), (_, b)| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let mut out = String::new();
    if !rows.is_empty() {
        let loc_w = rows
            .iter()
            .map(|(_, f)| f.path.chars().count() + digits(f.line) + 1)
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!(
            "{:<12} {:<10} {:<loc_w$} snippet\n",
            "rule", "status", "location"
        ));
        for (status, f) in &rows {
            out.push_str(&format!(
                "{:<12} {:<10} {:<loc_w$} {}\n",
                f.rule,
                status.as_str(),
                format!("{}:{}", f.path, f.line),
                clip(&f.snippet)
            ));
        }
        out.push('\n');
    }
    for e in &outcome.stale_baseline {
        out.push_str(&format!(
            "stale baseline entry (fixed? run --update-baseline): {} {} {:?} #{}\n",
            e.rule, e.path, e.snippet, e.occurrence
        ));
    }
    for e in &outcome.unused_allows {
        out.push_str(&format!(
            "unused allowlist entry (lint.toml:{}): {} {} — consider removing it\n",
            e.defined_at, e.rule, e.path
        ));
    }
    out.push_str(&format!(
        "{} new, {} baselined, {} allowlisted, {} stale baseline entr{}\n",
        outcome.new.len(),
        outcome.baselined.len(),
        outcome.allowlisted.len(),
        outcome.stale_baseline.len(),
        if outcome.stale_baseline.len() == 1 {
            "y"
        } else {
            "ies"
        },
    ));
    out
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// The machine-facing document: every finding with its status, plus stale
/// baseline entries, as one JSON object.
pub fn render_json(outcome: &LintOutcome) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    let mut first = true;
    let mut push_finding = |out: &mut String, f: &Finding, status: Status, reason: Option<&str>| {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"snippet\": {}, \
             \"message\": {}, \"status\": {}{}}}",
            json_string(f.rule),
            json_string(&f.path),
            f.line,
            json_string(&f.snippet),
            json_string(&f.message),
            json_string(status.as_str()),
            match reason {
                Some(r) => format!(", \"allowed_because\": {}", json_string(r)),
                None => String::new(),
            }
        ));
    };
    for f in &outcome.new {
        push_finding(&mut out, f, Status::New, None);
    }
    for f in &outcome.baselined {
        push_finding(&mut out, f, Status::Baselined, None);
    }
    for (f, reason) in &outcome.allowlisted {
        push_finding(&mut out, f, Status::Allowlisted, Some(reason));
    }
    out.push_str("\n  ],\n  \"stale_baseline\": [");
    let mut first = true;
    for e in &outcome.stale_baseline {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"snippet\": {}, \"occurrence\": {}}}",
            json_string(&e.rule),
            json_string(&e.path),
            json_string(&e.snippet),
            e.occurrence
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}
