//! Log-file ingestion and export.
//!
//! The paper reads BlueCoat web-proxy logs from HDFS; this module provides
//! the equivalent single-machine plumbing: a tab-separated on-disk format
//! (`timestamp \t source \t domain \t url_token`) with a streaming parser
//! that reports malformed lines instead of aborting, plus a writer for
//! round-tripping simulated traces.
//!
//! For continuous ingest from many log sources, [`IngestGuard`] wraps the
//! parser in per-source circuit breakers: a source whose malformed-line
//! rate breaches the breaker thresholds is tripped open and its lines
//! rejected (cheaply, without parsing) until the cooldown elapses, after
//! which bounded half-open probe lines test whether the source recovered.
//! Every line is accounted exactly — `offered = admitted + rejected` per
//! source, with the admitted side further split by the usual
//! [`ReadOutcome`] parse counters.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::Arc;

use baywatch_obs::{Clock, MetricsRegistry};
use baywatch_resilience::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker, Transition};

use crate::elff::ElffParser;
use crate::record::LogRecord;

/// A parse failure for one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLineError {
    /// 1-based line number.
    pub line_number: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line_number, self.reason)
    }
}

impl std::error::Error for ParseLineError {}

/// Parses one log line (`ts \t source \t domain \t token`, token optional).
pub fn parse_line(line: &str, line_number: usize) -> Result<LogRecord, ParseLineError> {
    let mut fields = line.split('\t');
    let ts = fields.next().ok_or_else(|| ParseLineError {
        line_number,
        reason: "empty line".into(),
    })?;
    let timestamp: u64 = ts.trim().parse().map_err(|_| ParseLineError {
        line_number,
        reason: format!("invalid timestamp `{ts}`"),
    })?;
    let source = fields
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| ParseLineError {
            line_number,
            reason: "missing source field".into(),
        })?;
    let domain = fields
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| ParseLineError {
            line_number,
            reason: "missing domain field".into(),
        })?;
    let token = fields.next().map(str::trim).unwrap_or("");
    Ok(LogRecord::new(timestamp, source, domain, token))
}

/// Cap on the number of [`ParseLineError`] samples kept in a
/// [`ReadOutcome`]; [`ReadOutcome::malformed_lines`] stays exact past it.
pub const ERROR_SAMPLE_LIMIT: usize = 64;

/// Outcome of reading a log stream: the good records and the bad lines.
#[derive(Debug, Clone, Default)]
pub struct ReadOutcome {
    /// Successfully parsed records.
    pub records: Vec<LogRecord>,
    /// Per-line failures (the stream is not aborted on bad lines — at
    /// 30 B events, some corruption is a certainty, cf. Challenge 2).
    /// Bounded to [`ERROR_SAMPLE_LIMIT`] samples; `malformed_lines` holds
    /// the exact count.
    pub errors: Vec<ParseLineError>,
    /// Exact number of lines that failed to parse (including any past the
    /// sample bound).
    pub malformed_lines: usize,
}

impl ReadOutcome {
    /// Counts a malformed line, retaining the error itself only while
    /// under the sample bound.
    pub fn note_error(&mut self, e: ParseLineError) {
        self.malformed_lines += 1;
        if self.errors.len() < ERROR_SAMPLE_LIMIT {
            self.errors.push(e);
        }
    }
}

/// Reads records from any `BufRead` source. Lines that are empty or start
/// with `#` are skipped. Ingest is lenient: a line that is truncated,
/// garbled, or not valid UTF-8 is counted and sampled in the outcome — it
/// never aborts the stream.
///
/// # Errors
///
/// Returns the underlying I/O error if the stream itself fails; per-line
/// parse failures are collected in the outcome instead.
///
/// # Example
///
/// ```
/// use baywatch_core::io::read_records;
///
/// let data = "100\thost-a\texample.com\tindex\n# comment\nbogus\n200\thost-b\tx.org\t\n";
/// let outcome = read_records(data.as_bytes()).unwrap();
/// assert_eq!(outcome.records.len(), 2);
/// assert_eq!(outcome.malformed_lines, 1);
/// assert_eq!(outcome.records[0].domain, "example.com");
/// ```
pub fn read_records<R: BufRead>(reader: R) -> std::io::Result<ReadOutcome> {
    let mut outcome = ReadOutcome::default();
    // Byte-wise line splitting so invalid UTF-8 degrades to a malformed
    // line (via the lossy conversion) instead of killing the whole stream.
    for (i, raw) in reader.split(b'\n').enumerate() {
        let raw = raw?;
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_line(trimmed, i + 1) {
            Ok(r) => outcome.records.push(r),
            Err(e) => outcome.note_error(e),
        }
    }
    Ok(outcome)
}

/// Writes records in the on-disk format. A `&mut` reference works as the
/// writer (the standard `impl Write for &mut W` applies).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_records<'a, W, I>(mut writer: W, records: I) -> std::io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a LogRecord>,
{
    for r in records {
        writeln!(
            writer,
            "{}\t{}\t{}\t{}",
            r.timestamp, r.source, r.domain, r.url_token
        )?;
    }
    Ok(())
}

/// Reads a log file from disk.
///
/// # Errors
///
/// Returns the I/O error on open/read failure.
pub fn read_log_file(path: impl AsRef<std::path::Path>) -> std::io::Result<ReadOutcome> {
    let f = std::fs::File::open(path)?;
    read_records(std::io::BufReader::new(f))
}

/// Writes a log file to disk.
///
/// # Errors
///
/// Returns the I/O error on create/write failure.
pub fn write_log_file(
    path: impl AsRef<std::path::Path>,
    records: &[LogRecord],
) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_records(std::io::BufWriter::new(f), records)
}

/// Outcome of one guarded read from one source: the parsed records plus
/// the exact admission ledger for the breaker decisions.
///
/// Invariant: `offered_lines == admitted_lines + rejected_lines`, and
/// `admitted_lines == outcome.records.len() + outcome.malformed_lines`.
#[derive(Debug, Clone, Default)]
pub struct GuardedReadOutcome {
    /// The records and parse errors of the admitted lines.
    pub outcome: ReadOutcome,
    /// Non-blank, non-comment lines seen in the stream.
    pub offered_lines: usize,
    /// Lines the breaker admitted (parsed, successfully or not).
    pub admitted_lines: usize,
    /// Lines rejected while the source's breaker was open (never parsed,
    /// never counted as malformed).
    pub rejected_lines: usize,
    /// Admitted lines that were half-open probes (a subset of
    /// `admitted_lines`).
    pub probe_lines: usize,
    /// Breaker transitions that happened during this read, stamped with
    /// the injected clock.
    pub transitions: Vec<Transition>,
    /// The source breaker's state after the read.
    pub final_state: BreakerState,
}

/// Per-source circuit breakers guarding the line parser.
///
/// One breaker per source name, created on first use and persisted
/// across reads, so a source that flapped yesterday is still on
/// probation today. All breakers share the injected clock; under a
/// `ManualClock` the whole admission history is byte-reproducible.
#[derive(Debug)]
pub struct IngestGuard {
    config: BreakerConfig,
    clock: Arc<dyn Clock>,
    /// BTreeMap so iteration (and therefore metrics registration order)
    /// is deterministic in the source names.
    breakers: BTreeMap<String, CircuitBreaker>,
}

impl IngestGuard {
    /// A guard whose per-source breakers run `config` on `clock`.
    pub fn new(config: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        IngestGuard {
            config,
            clock,
            breakers: BTreeMap::new(),
        }
    }

    /// The breaker state for `source`, if it has been read from.
    pub fn state(&self, source: &str) -> Option<BreakerState> {
        self.breakers.get(source).map(CircuitBreaker::state)
    }

    /// The sources seen so far, in sorted order.
    pub fn sources(&self) -> impl Iterator<Item = &str> {
        self.breakers.keys().map(String::as_str)
    }

    /// Aggregated breaker counters across every source.
    pub fn stats(&self) -> BreakerStats {
        let mut total = BreakerStats::default();
        for breaker in self.breakers.values() {
            total.merge(&breaker.stats());
        }
        total
    }

    /// Registers the aggregated nonzero counters under
    /// `resilience.ingest.*` — an idle guard (no failures, no trips)
    /// registers only the admitted/success volume counters, and a guard
    /// that never ran registers nothing, keeping clean exports
    /// byte-identical.
    pub fn record_metrics(&self, registry: &MetricsRegistry) {
        self.stats().record_metrics(registry, "resilience.ingest");
    }

    /// Reads records from `reader`, attributing every line to `source`
    /// and consulting that source's breaker per line. Lines rejected by
    /// an open breaker are counted but neither parsed nor sampled; parse
    /// failures on admitted lines feed the breaker's failure thresholds,
    /// so a source crossing the malformed-rate cutoff trips open
    /// mid-stream.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the stream itself fails, as
    /// [`read_records`] does.
    pub fn read_source<R: BufRead>(
        &mut self,
        source: &str,
        reader: R,
    ) -> std::io::Result<GuardedReadOutcome> {
        self.read_guarded(source, reader, TabLines)
    }

    /// Like [`IngestGuard::read_source`] for W3C ELFF streams (the
    /// BlueCoat format of [`crate::elff`]). `#Fields:` directives are
    /// consumed even while the source's breaker is open — schema is
    /// metadata, not load — so half-open probes parse under the correct
    /// schema after a mid-file trip.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the stream itself fails.
    pub fn read_elff_source<R: BufRead>(
        &mut self,
        source: &str,
        reader: R,
    ) -> std::io::Result<GuardedReadOutcome> {
        self.read_guarded(source, reader, ElffLines(ElffParser::new()))
    }

    fn read_guarded<R: BufRead>(
        &mut self,
        source: &str,
        reader: R,
        mut format: impl LineFormat,
    ) -> std::io::Result<GuardedReadOutcome> {
        let breaker = self
            .breakers
            .entry(source.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.config, self.clock.clone()));
        let mut guarded = GuardedReadOutcome::default();
        for (i, raw) in reader.split(b'\n').enumerate() {
            let raw = raw?;
            let line = String::from_utf8_lossy(&raw);
            let trimmed = line.trim();
            if !format.classify(trimmed) {
                continue;
            }
            guarded.offered_lines += 1;
            let probing = breaker.state() != BreakerState::Closed;
            if !breaker.allow() {
                guarded.rejected_lines += 1;
                continue;
            }
            guarded.admitted_lines += 1;
            if probing {
                guarded.probe_lines += 1;
            }
            match format.parse(trimmed, i + 1) {
                Ok(r) => {
                    guarded.outcome.records.push(r);
                    breaker.record_success();
                }
                Err(e) => {
                    guarded.outcome.note_error(e);
                    breaker.record_failure();
                }
            }
        }
        guarded.transitions = breaker.take_transitions();
        guarded.final_state = breaker.state();
        Ok(guarded)
    }
}

/// A line format the guard can meter. Directive handling (side-effecting
/// schema state) is separated from record parsing so the breaker's
/// admission decision sits between them: rejected lines are never parsed,
/// but schema directives are always consumed.
trait LineFormat {
    /// Consumes blank/directive lines; returns whether the line is a data
    /// line that must pass admission.
    fn classify(&mut self, trimmed: &str) -> bool;
    /// Parses one admitted data line.
    fn parse(&mut self, trimmed: &str, line_number: usize) -> Result<LogRecord, ParseLineError>;
}

/// The native tab-separated format of [`parse_line`].
struct TabLines;

impl LineFormat for TabLines {
    fn classify(&mut self, trimmed: &str) -> bool {
        !trimmed.is_empty() && !trimmed.starts_with('#')
    }

    fn parse(&mut self, trimmed: &str, line_number: usize) -> Result<LogRecord, ParseLineError> {
        parse_line(trimmed, line_number)
    }
}

/// W3C ELFF with stateful `#Fields:` schema tracking.
struct ElffLines(ElffParser);

impl LineFormat for ElffLines {
    fn classify(&mut self, trimmed: &str) -> bool {
        if trimmed.is_empty() {
            return false;
        }
        if let Some(fields) = trimmed.strip_prefix("#Fields:") {
            self.0.set_schema(fields);
            return false;
        }
        !trimmed.starts_with('#')
    }

    fn parse(&mut self, trimmed: &str, line_number: usize) -> Result<LogRecord, ParseLineError> {
        self.0.parse_data_line(trimmed, line_number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::new(100, "host-a", "example.com", "index"),
            LogRecord::new(160, "host-a", "example.com", ""),
            LogRecord::new(200, "host-b", "other.org", "update"),
        ]
    }

    #[test]
    fn roundtrip_through_buffer() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let outcome = read_records(buf.as_slice()).unwrap();
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.records, records);
    }

    #[test]
    fn roundtrip_through_file() {
        let records = sample_records();
        let path = std::env::temp_dir().join("baywatch-io-test.log");
        write_log_file(&path, &records).unwrap();
        let outcome = read_log_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(outcome.records, records);
    }

    #[test]
    fn bad_lines_collected_not_fatal() {
        let data = "nonsense\n100\ta\tb.com\tx\n\tmissing-ts\n200\t\tb.com\tx\n300\tc\t\tx\n";
        let outcome = read_records(data.as_bytes()).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.errors.len(), 4);
        assert_eq!(outcome.malformed_lines, 4);
        assert_eq!(outcome.errors[0].line_number, 1);
        assert!(!outcome.errors[0].to_string().is_empty());
    }

    #[test]
    fn invalid_utf8_is_a_malformed_line_not_a_stream_error() {
        let mut data = b"100\ta\tb.com\tx\n".to_vec();
        data.extend_from_slice(&[0xff, 0xfe, 0x00, 0x41, b'\n']);
        data.extend_from_slice(b"200\ta\tb.com\ty\n");
        let outcome = read_records(data.as_slice()).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.malformed_lines, 1);
    }

    #[test]
    fn error_samples_are_bounded_but_count_is_exact() {
        let data: String = (0..ERROR_SAMPLE_LIMIT + 10).map(|_| "garbage\n").collect();
        let outcome = read_records(data.as_bytes()).unwrap();
        assert_eq!(outcome.errors.len(), ERROR_SAMPLE_LIMIT);
        assert_eq!(outcome.malformed_lines, ERROR_SAMPLE_LIMIT + 10);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let data = "# header\n\n100\ta\tb.com\tx\n   \n";
        let outcome = read_records(data.as_bytes()).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert!(outcome.errors.is_empty());
    }

    #[test]
    fn token_is_optional() {
        let r = parse_line("5\tsrc\tdom.com", 1).unwrap();
        assert_eq!(r.url_token, "");
        let r = parse_line("5\tsrc\tdom.com\ttok", 1).unwrap();
        assert_eq!(r.url_token, "tok");
    }

    #[test]
    fn whitespace_tolerated_in_fields() {
        let r = parse_line(" 42 \t src \t dom.com \t tok ", 1).unwrap();
        assert_eq!(r.timestamp, 42);
        assert_eq!(r.source, "src");
        assert_eq!(r.domain, "dom.com");
        assert_eq!(r.url_token, "tok");
    }

    #[test]
    fn invalid_timestamp_reports_reason() {
        let e = parse_line("abc\tsrc\tdom.com", 7).unwrap_err();
        assert_eq!(e.line_number, 7);
        assert!(e.reason.contains("timestamp"));
    }

    mod guard {
        use super::*;
        use baywatch_obs::ManualClock;

        fn fast_breaker() -> BreakerConfig {
            BreakerConfig {
                failure_threshold: 3,
                failure_rate: 0.0,
                min_samples: 0,
                success_threshold: 2,
                half_open_requests: 2,
                cooldown_nanos: 1_000,
            }
        }

        fn good_lines(n: usize) -> String {
            (0..n)
                .map(|i| format!("{}\thost\texample.com\ttok\n", 100 + i))
                .collect()
        }

        fn bad_lines(n: usize) -> String {
            (0..n).map(|_| "garbage line\n").collect()
        }

        #[test]
        fn clean_source_is_never_perturbed() {
            let mut guard = IngestGuard::new(fast_breaker(), Arc::new(ManualClock::new()));
            let data = good_lines(10);
            let out = guard.read_source("proxy-a", data.as_bytes()).unwrap();
            assert_eq!(out.outcome.records.len(), 10);
            assert_eq!(out.offered_lines, 10);
            assert_eq!(out.admitted_lines, 10);
            assert_eq!(out.rejected_lines, 0);
            assert_eq!(out.probe_lines, 0);
            assert!(out.transitions.is_empty());
            assert_eq!(out.final_state, BreakerState::Closed);
            // Clean runs register only volume counters, no failure or
            // transition counters (export gating).
            let registry = MetricsRegistry::new();
            guard.record_metrics(&registry);
            let snap = registry.snapshot();
            assert!(!snap.counters.contains_key("resilience.ingest.opened"));
            assert!(!snap.counters.contains_key("resilience.ingest.failures"));
        }

        #[test]
        fn malformed_burst_trips_open_and_rejects_cheaply() {
            let mut guard = IngestGuard::new(fast_breaker(), Arc::new(ManualClock::new()));
            let data = format!("{}{}", bad_lines(3), good_lines(5));
            let out = guard.read_source("proxy-b", data.as_bytes()).unwrap();
            assert_eq!(out.final_state, BreakerState::Open);
            assert_eq!(out.offered_lines, 8);
            assert_eq!(out.admitted_lines, 3, "tripped after the 3rd failure");
            assert_eq!(out.rejected_lines, 5, "good lines behind an open breaker");
            assert_eq!(out.outcome.malformed_lines, 3);
            assert_eq!(out.outcome.records.len(), 0);
            assert_eq!(out.transitions.len(), 1);
            assert_eq!(out.transitions[0].to, BreakerState::Open);
            assert_eq!(
                out.offered_lines,
                out.admitted_lines + out.rejected_lines,
                "exact accounting"
            );
        }

        #[test]
        fn half_open_probes_readmit_a_recovered_source() {
            let clock = Arc::new(ManualClock::new());
            let mut guard = IngestGuard::new(fast_breaker(), clock.clone());
            let bad = bad_lines(3);
            let out = guard.read_source("flappy", bad.as_bytes()).unwrap();
            assert_eq!(out.final_state, BreakerState::Open);

            // Before the cooldown: everything rejected.
            let good = good_lines(4);
            let out = guard.read_source("flappy", good.as_bytes()).unwrap();
            assert_eq!(out.admitted_lines, 0);
            assert_eq!(out.rejected_lines, 4);

            // After the cooldown: probes admit, successes re-close, and
            // the rest of the stream flows normally.
            clock.advance(1_000);
            let good = good_lines(6);
            let out = guard.read_source("flappy", good.as_bytes()).unwrap();
            assert_eq!(out.final_state, BreakerState::Closed);
            assert_eq!(out.admitted_lines, 6);
            assert_eq!(out.rejected_lines, 0);
            assert_eq!(out.probe_lines, 2, "probes until the close threshold");
            let kinds: Vec<_> = out.transitions.iter().map(|t| t.to).collect();
            assert_eq!(kinds, vec![BreakerState::HalfOpen, BreakerState::Closed]);
        }

        #[test]
        fn sources_are_isolated_from_each_other() {
            let mut guard = IngestGuard::new(fast_breaker(), Arc::new(ManualClock::new()));
            let bad = bad_lines(5);
            guard.read_source("noisy", bad.as_bytes()).unwrap();
            assert_eq!(guard.state("noisy"), Some(BreakerState::Open));
            let good = good_lines(3);
            let out = guard.read_source("quiet", good.as_bytes()).unwrap();
            assert_eq!(out.admitted_lines, 3, "one bad source must not starve another");
            assert_eq!(guard.state("quiet"), Some(BreakerState::Closed));
            assert_eq!(guard.sources().collect::<Vec<_>>(), vec!["noisy", "quiet"]);
        }

        #[test]
        fn aggregated_stats_and_metrics_cover_all_sources() {
            let mut guard = IngestGuard::new(fast_breaker(), Arc::new(ManualClock::new()));
            let bad = bad_lines(3);
            guard.read_source("a", bad.as_bytes()).unwrap();
            let good = good_lines(2);
            guard.read_source("b", good.as_bytes()).unwrap();
            let stats = guard.stats();
            assert_eq!(stats.failures, 3);
            assert_eq!(stats.successes, 2);
            assert_eq!(stats.opened, 1);
            let registry = MetricsRegistry::new();
            guard.record_metrics(&registry);
            let snap = registry.snapshot();
            assert_eq!(snap.counters["resilience.ingest.opened"], 1);
            assert_eq!(snap.counters["resilience.ingest.failures"], 3);
            assert_eq!(snap.counters["resilience.ingest.admitted"], 5);
        }

        #[test]
        fn rate_threshold_catches_a_diluted_malformed_stream() {
            let config = BreakerConfig {
                failure_threshold: 0,
                failure_rate: 0.3,
                min_samples: 10,
                ..fast_breaker()
            };
            let mut guard = IngestGuard::new(config, Arc::new(ManualClock::new()));
            // 30% malformed, interleaved so no 3 consecutive failures.
            let data: String = (0..30)
                .map(|i| {
                    if i % 10 < 3 {
                        "garbage\n".to_string()
                    } else {
                        format!("{}\thost\td.com\tx\n", 100 + i)
                    }
                })
                .collect();
            let out = guard.read_source("diluted", data.as_bytes()).unwrap();
            assert_eq!(out.final_state, BreakerState::Open);
            assert!(out.rejected_lines > 0);
        }

        #[test]
        fn elff_source_is_metered_per_line() {
            let mut guard = IngestGuard::new(fast_breaker(), Arc::new(ManualClock::new()));
            let log = "#Software: netsim\n\
                       #Fields: x-timestamp c-ip cs-host cs-uri-path\n\
                       1000 10.0.0.1 a.com /x\n\
                       garbage @@ line junk\n\
                       1060 10.0.0.1 a.com /x\n";
            let out = guard.read_elff_source("elff-a", log.as_bytes()).unwrap();
            assert_eq!(out.offered_lines, 3, "directives are not offered");
            assert_eq!(out.admitted_lines, 3);
            assert_eq!(out.outcome.records.len(), 2);
            assert_eq!(out.outcome.malformed_lines, 1);
            assert_eq!(out.final_state, BreakerState::Closed);
        }

        #[test]
        fn elff_schema_consumed_while_open_feeds_half_open_probes() {
            // Schema-less junk trips the breaker; the #Fields directive
            // arrives while it is open and must still be consumed, so the
            // half-open probes (cooldown 0 ⇒ immediately eligible) parse
            // under the correct schema and re-close the source.
            let config = BreakerConfig {
                cooldown_nanos: 0,
                ..fast_breaker()
            };
            let mut guard = IngestGuard::new(config, Arc::new(ManualClock::new()));
            let mut log = String::new();
            for _ in 0..3 {
                log.push_str("junk\n");
            }
            log.push_str("#Fields: x-timestamp c-ip cs-host cs-uri-path\n");
            for i in 0..5u64 {
                log.push_str(&format!("{} 10.0.0.1 a.com /x\n", 1000 + i * 60));
            }
            let out = guard.read_elff_source("late-schema", log.as_bytes()).unwrap();
            assert_eq!(out.final_state, BreakerState::Closed, "recovered in-stream");
            assert_eq!(out.outcome.records.len(), 5);
            assert_eq!(out.probe_lines, 2, "probes until the close threshold");
            let kinds: Vec<_> = out.transitions.iter().map(|t| t.to).collect();
            assert_eq!(
                kinds,
                vec![
                    BreakerState::Open,
                    BreakerState::HalfOpen,
                    BreakerState::Closed
                ]
            );
        }
    }
}
