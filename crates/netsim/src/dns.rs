//! DNS-log simulation (§X of the paper).
//!
//! BAYWATCH applies to DNS logs, with two DNS-specific distortions the
//! paper calls out:
//!
//! * **caching** — a client re-resolving the same name inside the record's
//!   TTL hits its cache, so the DNS log *subsamples* the underlying beacon:
//!   a 60 s beacon behind a 300 s TTL shows up as a 300 s query train;
//! * **aggregation** — a regional resolver sees the merged behaviour of all
//!   clients behind a local resolver, blurring per-host periodicity.
//!
//! This module models both so the pipeline's behaviour on DNS-shaped input
//! can be evaluated.

use crate::types::HostId;

/// One DNS query log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsEvent {
    /// Epoch seconds.
    pub timestamp: u64,
    /// The client (or resolver, when aggregated) issuing the query.
    pub client: HostId,
    /// Queried name.
    pub qname: String,
}

/// Applies a resolver cache to an underlying request schedule: a query
/// reaches the log only when the cached record has expired.
///
/// # Panics
///
/// Panics if `ttl == 0` (a zero TTL means no caching — call sites should
/// pass the schedule through unchanged instead).
///
/// # Example
///
/// ```
/// use baywatch_netsim::dns::cache_filter;
///
/// // 60 s beacon, 300 s TTL: only every 5th request resolves.
/// let requests: Vec<u64> = (0..20).map(|i| i * 60).collect();
/// let logged = cache_filter(&requests, 300);
/// assert_eq!(logged, vec![0, 300, 600, 900]);
/// ```
pub fn cache_filter(requests: &[u64], ttl: u64) -> Vec<u64> {
    assert!(
        ttl > 0,
        "zero TTL disables caching; skip the filter instead"
    );
    let mut out = Vec::new();
    let mut expires_at: Option<u64> = None;
    for &t in requests {
        match expires_at {
            Some(e) if t < e => {}
            _ => {
                out.push(t);
                expires_at = Some(t + ttl);
            }
        }
    }
    out
}

/// Merges the query schedules of many clients into the view of one
/// regional resolver: events are interleaved, the client identity replaced
/// by the resolver's.
pub fn aggregate_behind_resolver(
    resolver: HostId,
    per_client: &[(HostId, Vec<u64>)],
    qname: &str,
) -> Vec<DnsEvent> {
    let mut out: Vec<DnsEvent> = per_client
        .iter()
        .flat_map(|(_, ts)| {
            ts.iter().map(|&t| DnsEvent {
                timestamp: t,
                client: resolver,
                qname: qname.to_owned(),
            })
        })
        .collect();
    out.sort_by_key(|e| e.timestamp);
    out
}

/// Produces the per-client (non-aggregated) DNS events for a schedule.
pub fn client_events(client: HostId, schedule: &[u64], qname: &str) -> Vec<DnsEvent> {
    schedule
        .iter()
        .map(|&t| DnsEvent {
            timestamp: t,
            client,
            qname: qname.to_owned(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_subsamples_fast_beacon() {
        let requests: Vec<u64> = (0..100).map(|i| i * 60).collect();
        let logged = cache_filter(&requests, 300);
        assert_eq!(logged.len(), 20);
        for w in logged.windows(2) {
            assert_eq!(w[1] - w[0], 300);
        }
    }

    #[test]
    fn cache_transparent_for_slow_beacon() {
        // Period longer than TTL: every request resolves.
        let requests: Vec<u64> = (0..50).map(|i| i * 900).collect();
        let logged = cache_filter(&requests, 300);
        assert_eq!(logged, requests);
    }

    #[test]
    fn cache_expiry_boundary_is_inclusive() {
        // Request exactly at expiry resolves.
        let logged = cache_filter(&[0, 300], 300);
        assert_eq!(logged, vec![0, 300]);
        // One second early: cached.
        let logged = cache_filter(&[0, 299, 600], 300);
        assert_eq!(logged, vec![0, 600]);
    }

    #[test]
    #[should_panic]
    fn zero_ttl_panics() {
        cache_filter(&[1, 2], 0);
    }

    #[test]
    fn aggregation_merges_and_sorts() {
        let a = (HostId(1), vec![0u64, 100, 200]);
        let b = (HostId(2), vec![50u64, 150]);
        let events = aggregate_behind_resolver(HostId(99), &[a, b], "c2.evil.com");
        let ts: Vec<u64> = events.iter().map(|e| e.timestamp).collect();
        assert_eq!(ts, vec![0, 50, 100, 150, 200]);
        assert!(events.iter().all(|e| e.client == HostId(99)));
        assert!(events.iter().all(|e| e.qname == "c2.evil.com"));
    }

    #[test]
    fn cached_beacon_still_periodic_at_ttl_scale() {
        // The paper's point: caching changes the *observed* period (to the
        // TTL), but the log remains periodic and detectable.
        let requests: Vec<u64> = (0..200).map(|i| i * 60).collect();
        let logged = cache_filter(&requests, 300);
        let intervals: Vec<u64> = logged.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(intervals.iter().all(|&i| i == 300));
    }

    #[test]
    fn client_events_shape() {
        let ev = client_events(HostId(5), &[10, 20], "x.com");
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].client, HostId(5));
    }
}
