//! Durable checkpoint/resume support for sharded fault-tolerant runs.
//!
//! The paper's evaluation processes ~30 B events over 5 months; at that
//! scale a hunt is a multi-hour sharded job that *will* be interrupted.
//! This module makes an interruption cheap instead of catastrophic: a
//! versioned [`RunManifest`] records which shards completed (with result
//! digests), what landed in the dead-letter queue and why, the RNG seed
//! the detector streams derive from, and the resolved
//! [`FaultPolicy`]/budget — everything
//! [`MapReduce::run_sharded_checkpointed`](crate::MapReduce::run_sharded_checkpointed)
//! needs to resume a run byte-identically to an uninterrupted one.
//!
//! Durability contract:
//!
//! * **Atomic writes.** Every file is written to a temp name in the same
//!   directory and renamed into place, so a crash mid-write leaves the
//!   previous state intact, never a torn file.
//! * **Corruption tolerance.** A manifest that is missing, unparsable,
//!   version-skewed, or fingerprint-mismatched degrades to a fresh run
//!   with an explicit warning — resume never guesses.
//! * **Exactness.** Shard payloads are digest-checked (FNV-1a 64) before
//!   reuse; a shard whose stored bytes do not match its manifest digest
//!   is re-executed rather than trusted.
//!
//! Serialization uses the workspace's zero-dependency stable-key-order
//! JSON conventions ([`baywatch_obs::JsonWriter`] to write,
//! [`baywatch_obs::json::parse`] to read), the same machinery behind
//! `core::report::export_json` and the golden-run suite.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use baywatch_obs::json::{parse, JsonValue};
use baywatch_obs::{HistogramSnapshot, JsonWriter, MetricsSnapshot};

use crate::fault::{FaultPlan, FaultPolicy, FaultReport};

/// Version tag of the on-disk manifest schema. A manifest written by a
/// different version is treated as corrupt (fresh run + warning), never
/// migrated in place.
pub const MANIFEST_VERSION: u64 = 1;

/// Why a unit of work landed in the dead-letter queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DlqReason {
    /// The unit panicked deterministically and was quarantined after the
    /// retry budget was exhausted.
    Poison,
    /// The unit overran the per-task wall-clock deadline.
    TimedOut,
    /// The unit exhausted its per-pair execution budget (ops/millis).
    BudgetExhausted,
}

impl DlqReason {
    /// Stable string form used in the on-disk manifest.
    pub fn as_str(self) -> &'static str {
        match self {
            DlqReason::Poison => "poison",
            DlqReason::TimedOut => "timed_out",
            DlqReason::BudgetExhausted => "budget_exhausted",
        }
    }

    /// Inverse of [`DlqReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "poison" => Some(DlqReason::Poison),
            "timed_out" => Some(DlqReason::TimedOut),
            "budget_exhausted" => Some(DlqReason::BudgetExhausted),
            _ => None,
        }
    }
}

/// One replayable dead-letter entry: a unit of work that failed, with
/// enough provenance to re-run it later under a larger budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlqEntry {
    /// Stable identity of the failed unit (the `Debug` rendering of its
    /// key, matching the `FaultReport` sample convention).
    pub key: String,
    /// Which shard the unit failed in.
    pub shard: usize,
    /// Failure classification.
    pub reason: DlqReason,
    /// How many retry attempts were burned before giving up.
    pub retries: usize,
    /// Bounded diagnostic samples (panic messages, timeout renderings).
    pub samples: Vec<String>,
    /// Caller-encoded payload sufficient to re-run the unit (for the
    /// pipeline: the serialized activity summaries of the pair).
    pub payload: String,
}

/// Budget fields recorded in the manifest so a resume can verify it is
/// continuing the same run. Kept as plain values — the mapreduce layer
/// has no dependency on the timeseries crate's `BudgetSpec`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Per-pair wall-clock budget in milliseconds, if armed.
    pub max_millis: Option<u64>,
    /// Per-pair operation budget, if armed.
    pub max_ops: Option<u64>,
}

/// What the manifest records about one completed shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord {
    /// FNV-1a 64 digest of the shard's encoded payload.
    pub digest: u64,
    /// Number of output rows the shard produced.
    pub outputs: usize,
}

/// The versioned run manifest persisted after every shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// Digest binding the manifest to one logical run: input shard plan,
    /// policy, budget, and seed. A mismatch on load degrades to a fresh
    /// run instead of resuming someone else's checkpoint.
    pub fingerprint: u64,
    /// Total shards in the plan; resume requires an exact match.
    pub total_shards: usize,
    /// Seed of the deterministic RNG streams. The detector derives every
    /// per-pair permutation stream from this single seed, so recording it
    /// pins the full RNG stream position for resumed pairs.
    pub rng_seed: u64,
    /// Resolved fault policy the run executes under.
    pub policy: FaultPolicy,
    /// Resolved per-pair execution budget.
    pub budget: BudgetSnapshot,
    /// Completed shards by id.
    pub shards: BTreeMap<usize, ShardRecord>,
    /// Replayable dead-letter queue across all completed shards.
    pub dlq: Vec<DlqEntry>,
}

impl RunManifest {
    /// A fresh manifest for a run with `total_shards` shards.
    pub fn new(
        fingerprint: u64,
        total_shards: usize,
        rng_seed: u64,
        policy: FaultPolicy,
        budget: BudgetSnapshot,
    ) -> Self {
        Self {
            version: MANIFEST_VERSION,
            fingerprint,
            total_shards,
            rng_seed,
            policy,
            budget,
            shards: BTreeMap::new(),
            dlq: Vec::new(),
        }
    }

    /// Serializes the manifest in stable key order.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("budget");
        write_budget(&mut w, &self.budget);
        w.end_value();
        w.key("dlq");
        w.raw("[");
        for (i, entry) in self.dlq.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            write_dlq_entry(&mut w, entry);
        }
        w.raw("]");
        w.end_value();
        w.key("fingerprint");
        w.uint(self.fingerprint);
        w.key("policy");
        w.raw("{");
        w.key("max_task_retries");
        w.uint(self.policy.max_task_retries as u64);
        w.key("sample_limit");
        w.uint(self.policy.sample_limit as u64);
        w.key("task_deadline_millis");
        write_opt_u64(
            &mut w,
            self.policy.task_deadline.map(|d| d.as_millis() as u64),
        );
        w.raw("}");
        w.end_value();
        w.key("rng_seed");
        w.uint(self.rng_seed);
        w.key("shards");
        w.raw("{");
        for (id, record) in &self.shards {
            w.key(&id.to_string());
            w.raw("{");
            w.key("digest");
            w.uint(record.digest);
            w.key("outputs");
            w.uint(record.outputs as u64);
            w.raw("}");
            w.end_value();
        }
        w.raw("}");
        w.end_value();
        w.key("total_shards");
        w.uint(self.total_shards as u64);
        w.key("version");
        w.uint(self.version);
        w.raw("}");
        w.finish()
    }

    /// Parses a manifest; `None` means the document is corrupt.
    pub fn from_json(text: &str) -> Option<Self> {
        let doc = parse(text).ok()?;
        let policy = doc.get("policy")?;
        let budget = doc.get("budget")?;
        let mut shards = BTreeMap::new();
        for (id, record) in doc.get("shards")?.as_object()? {
            shards.insert(
                id.parse::<usize>().ok()?,
                ShardRecord {
                    digest: record.get("digest")?.as_u64()?,
                    outputs: record.get("outputs")?.as_u64()? as usize,
                },
            );
        }
        let mut dlq = Vec::new();
        for entry in doc.get("dlq")?.as_array()? {
            dlq.push(read_dlq_entry(entry)?);
        }
        Some(Self {
            version: doc.get("version")?.as_u64()?,
            fingerprint: doc.get("fingerprint")?.as_u64()?,
            total_shards: doc.get("total_shards")?.as_u64()? as usize,
            rng_seed: doc.get("rng_seed")?.as_u64()?,
            policy: FaultPolicy {
                max_task_retries: policy.get("max_task_retries")?.as_u64()? as usize,
                sample_limit: policy.get("sample_limit")?.as_u64()? as usize,
                task_deadline: read_opt_u64(policy.get("task_deadline_millis")?)
                    .map(Duration::from_millis),
            },
            budget: BudgetSnapshot {
                max_millis: read_opt_u64(budget.get("max_millis")?),
                max_ops: read_opt_u64(budget.get("max_ops")?),
            },
            shards,
            dlq,
        })
    }
}

fn write_budget(w: &mut JsonWriter, budget: &BudgetSnapshot) {
    w.raw("{");
    w.key("max_millis");
    write_opt_u64(w, budget.max_millis);
    w.key("max_ops");
    write_opt_u64(w, budget.max_ops);
    w.raw("}");
}

fn write_opt_u64(w: &mut JsonWriter, value: Option<u64>) {
    match value {
        Some(v) => w.uint(v),
        None => {
            w.raw("null");
            w.end_value();
        }
    }
}

fn read_opt_u64(value: &JsonValue) -> Option<u64> {
    // `null` and an absent/malformed number both read as None; the
    // fingerprint check is what guards against silent drift.
    value.as_u64()
}

fn write_dlq_entry(w: &mut JsonWriter, entry: &DlqEntry) {
    w.raw("{");
    w.key("key");
    w.string(&entry.key);
    w.key("payload");
    w.string(&entry.payload);
    w.key("reason");
    w.string(entry.reason.as_str());
    w.key("retries");
    w.uint(entry.retries as u64);
    w.key("samples");
    w.raw("[");
    for s in &entry.samples {
        w.string(s);
    }
    w.raw("]");
    w.end_value();
    w.key("shard");
    w.uint(entry.shard as u64);
    w.raw("}");
}

fn read_dlq_entry(doc: &JsonValue) -> Option<DlqEntry> {
    let mut samples = Vec::new();
    for s in doc.get("samples")?.as_array()? {
        samples.push(s.as_str()?.to_string());
    }
    Some(DlqEntry {
        key: doc.get("key")?.as_str()?.to_string(),
        shard: doc.get("shard")?.as_u64()? as usize,
        reason: DlqReason::parse(doc.get("reason")?.as_str()?)?,
        retries: doc.get("retries")?.as_u64()? as usize,
        samples,
        payload: doc.get("payload")?.as_str()?.to_string(),
    })
}

/// Serializes the counter/sample portion of a [`FaultReport`] in stable
/// key order. The wall-clock `*_elapsed` fields are deliberately not
/// persisted: they describe the process that ran the shard, not the
/// data, and deserialize as zero.
pub fn fault_report_to_json(report: &FaultReport) -> String {
    let mut w = JsonWriter::new();
    w.raw("{");
    w.key("checkpoint_corruptions");
    w.uint(report.checkpoint_corruptions as u64);
    w.key("corruption_samples");
    write_string_array(&mut w, &report.corruption_samples);
    w.key("input_samples");
    write_string_array(&mut w, &report.input_samples);
    w.key("key_samples");
    write_string_array(&mut w, &report.key_samples);
    w.key("lost_values");
    w.uint(report.lost_values as u64);
    w.key("map_bisections");
    w.uint(report.map_bisections as u64);
    w.key("map_retries");
    w.uint(report.map_retries as u64);
    w.key("panic_samples");
    write_string_array(&mut w, &report.panic_samples);
    w.key("quarantined_inputs");
    w.uint(report.quarantined_inputs as u64);
    w.key("quarantined_keys");
    w.uint(report.quarantined_keys as u64);
    w.key("reduce_retries");
    w.uint(report.reduce_retries as u64);
    w.key("timed_out_inputs");
    w.uint(report.timed_out_inputs as u64);
    w.key("timed_out_keys");
    w.uint(report.timed_out_keys as u64);
    w.key("timeout_samples");
    write_string_array(&mut w, &report.timeout_samples);
    w.raw("}");
    w.finish()
}

/// Inverse of [`fault_report_to_json`]; `None` on corruption.
pub fn fault_report_from_json(text: &str) -> Option<FaultReport> {
    let doc = parse(text).ok()?;
    fault_report_from_value(&doc)
}

fn fault_report_from_value(doc: &JsonValue) -> Option<FaultReport> {
    Some(FaultReport {
        map_retries: doc.get("map_retries")?.as_u64()? as usize,
        reduce_retries: doc.get("reduce_retries")?.as_u64()? as usize,
        quarantined_inputs: doc.get("quarantined_inputs")?.as_u64()? as usize,
        map_bisections: doc.get("map_bisections")?.as_u64()? as usize,
        quarantined_keys: doc.get("quarantined_keys")?.as_u64()? as usize,
        timed_out_inputs: doc.get("timed_out_inputs")?.as_u64()? as usize,
        timed_out_keys: doc.get("timed_out_keys")?.as_u64()? as usize,
        lost_values: doc.get("lost_values")?.as_u64()? as usize,
        // Absent in pre-resilience checkpoints: default rather than
        // refuse, so old shard files still restore.
        checkpoint_corruptions: doc
            .get("checkpoint_corruptions")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0) as usize,
        corruption_samples: doc
            .get("corruption_samples")
            .and_then(read_string_array)
            .unwrap_or_default(),
        input_samples: read_string_array(doc.get("input_samples")?)?,
        key_samples: read_string_array(doc.get("key_samples")?)?,
        timeout_samples: read_string_array(doc.get("timeout_samples")?)?,
        panic_samples: read_string_array(doc.get("panic_samples")?)?,
        map_elapsed: Duration::ZERO,
        shuffle_elapsed: Duration::ZERO,
        reduce_elapsed: Duration::ZERO,
    })
}

fn write_string_array(w: &mut JsonWriter, items: &[String]) {
    w.raw("[");
    for s in items {
        w.string(s);
    }
    w.raw("]");
    w.end_value();
}

fn read_string_array(doc: &JsonValue) -> Option<Vec<String>> {
    let mut out = Vec::new();
    for s in doc.as_array()? {
        out.push(s.as_str()?.to_string());
    }
    Some(out)
}

/// Serializes the deterministic (replayable) portion of a metrics
/// snapshot: counters and value histograms. Gauges, operational
/// counters, and timings never travel in a checkpoint.
pub fn metrics_delta_to_json(delta: &MetricsSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.raw("{");
    w.key("counters");
    w.raw("{");
    for (name, value) in &delta.counters {
        w.key(name);
        w.uint(*value);
    }
    w.raw("}");
    w.end_value();
    w.key("histograms");
    w.raw("{");
    for (name, snap) in &delta.histograms {
        w.key(name);
        w.raw("{");
        w.key("bounds");
        w.raw("[");
        for b in &snap.bounds {
            w.uint(*b);
        }
        w.raw("]");
        w.end_value();
        w.key("counts");
        w.raw("[");
        for c in &snap.counts {
            w.uint(*c);
        }
        w.raw("]");
        w.end_value();
        w.key("sum");
        w.uint(snap.sum);
        w.key("total");
        w.uint(snap.total);
        w.raw("}");
        w.end_value();
    }
    w.raw("}");
    w.end_value();
    w.raw("}");
    w.finish()
}

/// Inverse of [`metrics_delta_to_json`]; `None` on corruption.
pub fn metrics_delta_from_json(text: &str) -> Option<MetricsSnapshot> {
    let doc = parse(text).ok()?;
    metrics_delta_from_value(&doc)
}

fn metrics_delta_from_value(doc: &JsonValue) -> Option<MetricsSnapshot> {
    let mut delta = MetricsSnapshot::default();
    for (name, value) in doc.get("counters")?.as_object()? {
        delta.counters.insert(name.clone(), value.as_u64()?);
    }
    for (name, hist) in doc.get("histograms")?.as_object()? {
        let mut bounds = Vec::new();
        for b in hist.get("bounds")?.as_array()? {
            bounds.push(b.as_u64()?);
        }
        let mut counts = Vec::new();
        for c in hist.get("counts")?.as_array()? {
            counts.push(c.as_u64()?);
        }
        delta.histograms.insert(
            name.clone(),
            HistogramSnapshot {
                bounds,
                counts,
                total: hist.get("total")?.as_u64()?,
                sum: hist.get("sum")?.as_u64()?,
            },
        );
    }
    Some(delta)
}

/// Everything persisted for one completed shard: the caller-encoded
/// result payload, the shard's fault report, and the deterministic
/// metrics delta it contributed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Caller-encoded outputs (opaque to this layer).
    pub payload: String,
    /// Faults the shard absorbed while running.
    pub faults: FaultReport,
    /// Deterministic metrics the shard contributed (counters + value
    /// histograms), replayed into the live registry on resume.
    pub metrics_delta: MetricsSnapshot,
}

impl ShardCheckpoint {
    /// Serializes the shard checkpoint in stable key order.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("faults");
        w.raw(&fault_report_to_json(&self.faults));
        w.end_value();
        w.key("metrics");
        w.raw(&metrics_delta_to_json(&self.metrics_delta));
        w.end_value();
        w.key("payload");
        w.string(&self.payload);
        w.raw("}");
        w.finish()
    }

    /// Inverse of [`ShardCheckpoint::to_json`]; `None` on corruption.
    pub fn from_json(text: &str) -> Option<Self> {
        let doc = parse(text).ok()?;
        Some(Self {
            payload: doc.get("payload")?.as_str()?.to_string(),
            faults: fault_report_from_value(doc.get("faults")?)?,
            metrics_delta: metrics_delta_from_value(doc.get("metrics")?)?,
        })
    }
}

/// Result of attempting to load a manifest from a checkpoint directory.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestLoad {
    /// No usable manifest: start fresh. `warning` is `Some` when a file
    /// existed but could not be trusted (corrupt, version skew,
    /// fingerprint mismatch) — callers surface it through the
    /// `checkpoint.load_warnings` counter.
    Fresh {
        /// Why an existing manifest was rejected, if one was found.
        warning: Option<String>,
    },
    /// A trusted manifest to resume from.
    Resumed(RunManifest),
}

/// Directory-backed store for a run's manifest and shard checkpoints.
///
/// All writes are atomic (temp file + rename in the same directory), so
/// an interruption at any point leaves the store in the last fully
/// persisted state.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn create(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the run manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("run_manifest.json")
    }

    /// Path of the checkpoint file for shard `id`.
    pub fn shard_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("shard_{id:05}.json"))
    }

    /// Atomically persists the manifest.
    pub fn save_manifest(&self, manifest: &RunManifest) -> io::Result<()> {
        self.write_atomic(&self.manifest_path(), &manifest.to_json())
    }

    /// Loads the manifest, degrading to a fresh run on anything
    /// untrustworthy. `fingerprint` and `total_shards` must match the
    /// caller's current plan for the manifest to be resumed.
    pub fn load_manifest(&self, fingerprint: u64, total_shards: usize) -> ManifestLoad {
        let path = self.manifest_path();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return ManifestLoad::Fresh { warning: None }
            }
            Err(e) => {
                return ManifestLoad::Fresh {
                    warning: Some(format!("manifest unreadable: {e}")),
                }
            }
        };
        let Some(manifest) = RunManifest::from_json(&text) else {
            return ManifestLoad::Fresh {
                warning: Some("manifest corrupt: parse failed".to_string()),
            };
        };
        if manifest.version != MANIFEST_VERSION {
            return ManifestLoad::Fresh {
                warning: Some(format!(
                    "manifest version {} != supported {MANIFEST_VERSION}",
                    manifest.version
                )),
            };
        }
        if manifest.fingerprint != fingerprint || manifest.total_shards != total_shards {
            return ManifestLoad::Fresh {
                warning: Some("manifest fingerprint mismatch: different run".to_string()),
            };
        }
        ManifestLoad::Resumed(manifest)
    }

    /// Atomically persists one shard checkpoint.
    pub fn save_shard(&self, id: usize, checkpoint: &ShardCheckpoint) -> io::Result<()> {
        self.write_atomic(&self.shard_path(id), &checkpoint.to_json())
    }

    /// Loads one shard checkpoint; `None` means missing or corrupt (the
    /// caller re-executes the shard).
    pub fn load_shard(&self, id: usize) -> Option<ShardCheckpoint> {
        let text = fs::read_to_string(self.shard_path(id)).ok()?;
        ShardCheckpoint::from_json(&text)
    }

    fn write_atomic(&self, path: &Path, contents: &str) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, contents)?;
        fs::rename(&tmp, path)
    }
}

/// Caller-facing configuration of one checkpointed sharded run.
#[derive(Debug, Clone)]
pub struct CheckpointedRun<'a> {
    /// Where manifests and shard checkpoints live.
    pub store: &'a CheckpointStore,
    /// Digest binding this run to its input plan, policy, budget, and
    /// seed (see [`RunManifest::fingerprint`]).
    pub fingerprint: u64,
    /// Seed the detector's deterministic RNG streams derive from.
    pub rng_seed: u64,
    /// Per-pair execution budget recorded in the manifest.
    pub budget: BudgetSnapshot,
    /// Whether to resume from an existing manifest. `false` always
    /// starts fresh, overwriting whatever the directory holds.
    pub resume: bool,
    /// Test/CI hook: a fault plan whose injected I/O errors are consulted
    /// before every checkpoint write, exercising the degrade-to-in-memory
    /// path without a genuinely broken filesystem.
    pub io_faults: Option<&'a FaultPlan>,
    /// Test/CI hook: stop (gracefully, manifest persisted) after this
    /// many *fresh* shard executions, simulating a kill at a
    /// deterministic checkpoint boundary.
    pub abort_after_shards: Option<usize>,
}

/// What a checkpointed sharded run produced.
#[derive(Debug)]
pub struct ShardedOutcome<O> {
    /// Concatenated shard outputs in shard order. Incomplete when
    /// `interrupted` is set.
    pub outputs: Vec<O>,
    /// Aggregate fault report across all shards (resumed shards
    /// contribute their persisted reports with zeroed durations).
    pub faults: FaultReport,
    /// The manifest as persisted at the end of the run.
    pub manifest: RunManifest,
    /// Shards restored from checkpoints instead of re-executed.
    pub resumed_shards: usize,
    /// Shards executed fresh in this process.
    pub executed_shards: usize,
    /// Checkpoint artifacts that existed but could not be trusted.
    pub load_warnings: usize,
    /// Checkpoint writes that failed or were skipped by an open breaker;
    /// the run degraded to in-memory execution for those shards.
    pub write_warnings: usize,
    /// Set when `abort_after_shards` stopped the run early.
    pub interrupted: bool,
}

/// FNV-1a 64-bit digest — the workspace's standard content fingerprint
/// (dependency-free, deterministic across platforms).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Digest of a shard plan: the `Debug` renderings of every input in
/// every shard, mixed with shard boundaries. Used as the run
/// fingerprint component that binds a manifest to its exact input.
pub fn shard_plan_digest<I: std::fmt::Debug>(shards: &[Vec<I>]) -> u64 {
    let mut text = String::new();
    for (i, shard) in shards.iter().enumerate() {
        let _ = write!(text, "shard[{i}]#{};", shard.len());
        for input in shard {
            let _ = write!(text, "{input:?};");
        }
    }
    fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest::new(
            0xDEAD_BEEF,
            3,
            0xBA9_3A7C4,
            FaultPolicy {
                max_task_retries: 2,
                sample_limit: 8,
                task_deadline: Some(Duration::from_millis(2_000)),
            },
            BudgetSnapshot {
                max_millis: None,
                max_ops: Some(800_000),
            },
        );
        m.shards.insert(
            0,
            ShardRecord {
                digest: u64::MAX,
                outputs: 17,
            },
        );
        m.shards.insert(
            2,
            ShardRecord {
                digest: 42,
                outputs: 0,
            },
        );
        m.dlq.push(DlqEntry {
            key: "pair(\"h1\",\"c2.example\")".to_string(),
            shard: 2,
            reason: DlqReason::BudgetExhausted,
            retries: 0,
            samples: vec!["budget exhausted after 800000 ops".to_string()],
            payload: "{\"intervals\":[60,60]}".to_string(),
        });
        m
    }

    #[test]
    fn manifest_round_trips_byte_identically() {
        let m = sample_manifest();
        let json = m.to_json();
        let back = RunManifest::from_json(&json).unwrap();
        assert_eq!(back, m);
        // Re-serializing the parsed manifest reproduces the exact bytes.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn fault_report_round_trips_without_durations() {
        let report = FaultReport {
            map_retries: 3,
            quarantined_keys: 1,
            lost_values: 7,
            key_samples: vec!["\"bad\"".to_string()],
            timeout_samples: vec!["\"slow\"".to_string()],
            panic_samples: vec!["boom".to_string()],
            map_elapsed: Duration::from_millis(123),
            ..Default::default()
        };
        let back = fault_report_from_json(&fault_report_to_json(&report)).unwrap();
        assert_eq!(back.map_retries, 3);
        assert_eq!(back.quarantined_keys, 1);
        assert_eq!(back.lost_values, 7);
        assert_eq!(back.key_samples, report.key_samples);
        assert_eq!(back.timeout_samples, report.timeout_samples);
        assert_eq!(back.panic_samples, report.panic_samples);
        assert_eq!(back.map_elapsed, Duration::ZERO, "durations are not data");
    }

    #[test]
    fn shard_checkpoint_round_trips() {
        let mut delta = MetricsSnapshot::default();
        delta.counters.insert("detector.pairs_analyzed".into(), 9);
        delta.histograms.insert(
            "detector.series_len".into(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                counts: vec![1, 2, 0],
                total: 3,
                sum: 77,
            },
        );
        let cp = ShardCheckpoint {
            payload: "rows:[1,2,3] with \"quotes\"\nand newlines".to_string(),
            faults: FaultReport {
                timed_out_keys: 1,
                ..Default::default()
            },
            metrics_delta: delta,
        };
        let back = ShardCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn store_persists_and_reloads_atomically() {
        let dir = std::env::temp_dir().join(format!(
            "baywatch-manifest-test-{}-{:x}",
            std::process::id(),
            fnv1a64(b"store_persists_and_reloads")
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::create(&dir).unwrap();

        // No manifest yet: fresh without warning.
        assert_eq!(
            store.load_manifest(1, 3),
            ManifestLoad::Fresh { warning: None }
        );

        let m = sample_manifest();
        store.save_manifest(&m).unwrap();
        match store.load_manifest(m.fingerprint, m.total_shards) {
            ManifestLoad::Resumed(loaded) => assert_eq!(loaded, m),
            other => panic!("expected resume, got {other:?}"),
        }

        // Wrong fingerprint: explicit degradation, never a silent resume.
        assert!(matches!(
            store.load_manifest(m.fingerprint ^ 1, m.total_shards),
            ManifestLoad::Fresh { warning: Some(_) }
        ));
        assert!(matches!(
            store.load_manifest(m.fingerprint, m.total_shards + 1),
            ManifestLoad::Fresh { warning: Some(_) }
        ));

        // Corrupt manifest bytes: fresh with warning.
        fs::write(store.manifest_path(), "{not json").unwrap();
        assert!(matches!(
            store.load_manifest(m.fingerprint, m.total_shards),
            ManifestLoad::Fresh { warning: Some(_) }
        ));

        // Shard files: round trip and corruption tolerance.
        let cp = ShardCheckpoint {
            payload: "p".to_string(),
            faults: FaultReport::default(),
            metrics_delta: MetricsSnapshot::default(),
        };
        store.save_shard(4, &cp).unwrap();
        assert_eq!(store.load_shard(4), Some(cp));
        assert_eq!(store.load_shard(5), None);
        fs::write(store.shard_path(4), "garbage").unwrap();
        assert_eq!(store.load_shard(4), None);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_degrades_to_fresh() {
        let dir = std::env::temp_dir().join(format!(
            "baywatch-manifest-test-{}-{:x}",
            std::process::id(),
            fnv1a64(b"version_skew")
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::create(&dir).unwrap();
        let mut m = sample_manifest();
        m.version = MANIFEST_VERSION + 1;
        store.save_manifest(&m).unwrap();
        assert!(matches!(
            store.load_manifest(m.fingerprint, m.total_shards),
            ManifestLoad::Fresh { warning: Some(_) }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_digest_is_stable() {
        // Reference vectors for the FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn shard_plan_digest_sees_boundaries() {
        let a = shard_plan_digest(&[vec![1, 2], vec![3]]);
        let b = shard_plan_digest(&[vec![1], vec![2, 3]]);
        assert_ne!(a, b, "same items, different boundaries, different plan");
        assert_eq!(a, shard_plan_digest(&[vec![1, 2], vec![3]]));
    }

    #[test]
    fn dlq_reason_strings_round_trip() {
        for reason in [
            DlqReason::Poison,
            DlqReason::TimedOut,
            DlqReason::BudgetExhausted,
        ] {
            assert_eq!(DlqReason::parse(reason.as_str()), Some(reason));
        }
        assert_eq!(DlqReason::parse("other"), None);
    }
}
