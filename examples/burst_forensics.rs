//! Burst forensics: time-resolved analysis of Conficker-style on/off
//! beaconing (the right half of the paper's Fig. 2).
//!
//! A whole-window periodogram dilutes a bursty channel's spectral line with
//! its hours of silence; the spectrogram localizes *when* the channel wakes
//! up and the GMM reads both time scales off the interval list.
//!
//! ```text
//! cargo run --release --example burst_forensics
//! ```

#![warn(clippy::unwrap_used)]

use baywatch::netsim::malware::MalwareProfile;
use baywatch::timeseries::detector::{DetectorConfig, PeriodicityDetector};
use baywatch::timeseries::series::TimeSeries;
use baywatch::timeseries::spectrogram::Spectrogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A day of Conficker-style traffic: 7–8 s beacons in short bursts,
    // ~3 h dormant between bursts.
    let ts = MalwareProfile::Conficker.schedule(0, 86_400, 7);
    println!(
        "Conficker-style trace: {} events over 24 h ({} bursts expected)\n",
        ts.len(),
        86_400 / (3 * 3600)
    );

    // ---- Time-resolved view. -------------------------------------------
    let series = TimeSeries::from_timestamps(&ts, 1)?;
    let sg = Spectrogram::compute(&series, 512)?;
    let active = sg.active_frames(8);
    println!("spectrogram ({} s segments):", sg.segment_seconds());
    println!(
        "  duty cycle {:.1}% — {} active episodes",
        sg.duty_cycle(8) * 100.0,
        active.len()
    );
    for f in active.iter().take(8) {
        println!(
            "  episode at +{:>6} s: {} beacons, dominant period {:?}",
            f.start,
            f.events,
            f.dominant_period.map(|p| format!("{p:.1} s"))
        );
    }
    if let Some(p) = sg.burst_period(8) {
        println!("  intra-burst period (median over episodes): {p:.1} s");
    }

    // ---- Interval-domain view (Fig. 7 machinery). ------------------------
    let detector = PeriodicityDetector::new(DetectorConfig::default());
    let report = detector.detect(&ts)?;
    if let Some(gmm) = &report.interval_gmm {
        println!("\nGMM over the interval list:");
        for c in gmm.components() {
            println!(
                "  component: mean {:>9.1} s  sd {:>7.2}  weight {:.3}",
                c.mean, c.std_dev, c.weight
            );
        }
        let means = gmm.dominant_means(0.02);
        let fast = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let slow = means.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "\nboth time scales recovered: ~{fast:.1} s beat inside bursts, ~{:.1} h gap",
            slow / 3600.0
        );
        assert!(fast < 15.0, "fast scale missing");
        assert!(slow > 1800.0, "slow scale missing");
    }
    Ok(())
}
