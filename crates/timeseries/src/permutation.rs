//! Permutation-based power thresholding (§IV-B, Fig. 5 of the paper).
//!
//! How much of a series' spectral energy could be produced by a *random*
//! process with the same first-order statistics? Randomly permuting the
//! series destroys temporal structure while preserving amplitudes. The
//! maximum periodogram power of a shuffled copy is therefore an upper bound
//! on "power explainable by chance". Repeating the shuffle `m` times and
//! taking the `⌈C·m⌉`-th smallest of the per-shuffle maxima (e.g. the 19th
//! of 20 for C = 95 %) yields the power threshold `p_T`: original-series
//! frequencies with power above `p_T` are unlikely to be noise.

use crate::budget::ExecBudget;
use crate::series::TimeSeries;
use crate::workspace::{with_thread_workspace, SpectralWorkspace};
use crate::TimeSeriesError;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the permutation filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermutationConfig {
    /// Number of random permutations `m` (the paper uses 20).
    pub permutations: usize,
    /// Confidence level `C` in `(0, 1]` (the paper uses 0.95).
    pub confidence: f64,
    /// Seed for the deterministic shuffle RNG, so detection runs are
    /// reproducible job-to-job.
    pub seed: u64,
}

impl Default for PermutationConfig {
    fn default() -> Self {
        Self {
            permutations: 20,
            confidence: 0.95,
            seed: 0xBA9_3A7C4,
        }
    }
}

impl PermutationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidConfig`] when `permutations == 0`
    /// or `confidence` is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), TimeSeriesError> {
        if self.permutations == 0 {
            return Err(TimeSeriesError::InvalidConfig {
                name: "permutations",
                constraint: "must be at least 1",
            });
        }
        if !(self.confidence > 0.0 && self.confidence <= 1.0) {
            return Err(TimeSeriesError::InvalidConfig {
                name: "confidence",
                constraint: "must be within (0, 1]",
            });
        }
        Ok(())
    }
}

/// Result of the permutation thresholding procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationThreshold {
    /// The power threshold `p_T`.
    pub threshold: f64,
    /// Maximum periodogram power of each shuffled copy (ascending order).
    pub shuffled_maxima: Vec<f64>,
}

/// Estimates the power threshold `p_T` for `series` by random permutation.
///
/// # Errors
///
/// Propagates configuration validation errors.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::series::TimeSeries;
/// use baywatch_timeseries::periodogram::Periodogram;
/// use baywatch_timeseries::permutation::{permutation_threshold, PermutationConfig};
///
/// let timestamps: Vec<u64> = (0..200).map(|i| i * 30).collect();
/// let series = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
/// let thr = permutation_threshold(&series, &PermutationConfig::default()).unwrap();
/// let pg = Periodogram::compute(&series);
/// // The genuine 30 s periodicity towers above anything a shuffle produces.
/// assert!(pg.max_power() > thr.threshold);
/// ```
pub fn permutation_threshold(
    series: &TimeSeries,
    config: &PermutationConfig,
) -> Result<PermutationThreshold, TimeSeriesError> {
    with_thread_workspace(|ws| permutation_threshold_in(ws, series, config))
}

/// Like [`permutation_threshold`] with an explicit [`SpectralWorkspace`].
///
/// The `m` rounds are *batched*: each round shuffles one rolling sample
/// buffer in place (a single `StdRng` stream, exactly as the unbatched
/// loop did, so row contents — and hence `shuffled_maxima` — are
/// bit-identical) and appends it to a contiguous `m × n` matrix recycled
/// through the workspace arena. One planned pass then transforms the whole
/// matrix — two rounds per FFT in the workspace's default
/// [`RealHalf`](crate::workspace::SpectralMode::RealHalf) mode, halving
/// the transform count of the detection hot loop; in
/// [`ComplexFull`](crate::workspace::SpectralMode::ComplexFull) mode the
/// per-round maxima are bit-for-bit those of the legacy loop. Only the
/// per-shuffle *maximum* power is kept, since that is all the order
/// statistic needs.
pub fn permutation_threshold_in(
    ws: &SpectralWorkspace,
    series: &TimeSeries,
    config: &PermutationConfig,
) -> Result<PermutationThreshold, TimeSeriesError> {
    permutation_threshold_budgeted(ws, series, config, &ExecBudget::unlimited())
}

/// Like [`permutation_threshold_in`] under an [`ExecBudget`]: each of the
/// `m` rounds first charges `n` work units (one shuffle + one `n`-bin
/// transform) and aborts with [`TimeSeriesError::BudgetExhausted`] once the
/// budget is spent. With an unlimited budget the checkpoint never fires and
/// the result — including the RNG stream — is byte-identical to
/// [`permutation_threshold_in`].
///
/// # Errors
///
/// Propagates configuration validation errors and budget exhaustion.
pub fn permutation_threshold_budgeted(
    ws: &SpectralWorkspace,
    series: &TimeSeries,
    config: &PermutationConfig,
    budget: &ExecBudget,
) -> Result<PermutationThreshold, TimeSeriesError> {
    config.validate()?;
    let mut samples = series.centered();
    let n = samples.len();
    let m = config.permutations;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Degenerate series (< 4 bins) have an empty spectrum: max power 0 per
    // round, matching `Periodogram::from_samples` on the same input. The
    // budget and RNG stream are still consumed round-by-round so the
    // degenerate path stays charge- and stream-identical to the full one.
    if n < 4 {
        let mut maxima = Vec::with_capacity(m);
        for _ in 0..m {
            budget.checkpoint(n as u64)?;
            samples.shuffle(&mut rng);
            maxima.push(0.0);
        }
        let threshold = maxima[quantile_rank(config.confidence, m) - 1];
        return Ok(PermutationThreshold {
            threshold,
            shuffled_maxima: maxima,
        });
    }

    // Fill the batched round matrix: each round charges its budget
    // checkpoint, shuffles the rolling buffer (one RNG stream across all
    // rounds — bit-identical rows to the unbatched loop), and appends it.
    let mut rows = ws.take_rows();
    rows.clear();
    rows.reserve(m * n);
    let mut exhausted = None;
    for _ in 0..m {
        if let Err(e) = budget.checkpoint(n as u64) {
            exhausted = Some(e);
            break;
        }
        samples.shuffle(&mut rng);
        rows.extend_from_slice(&samples);
    }
    if let Some(e) = exhausted {
        ws.put_rows(rows);
        return Err(e);
    }

    // One planned pass over the matrix (two rounds per FFT in RealHalf
    // mode), then one division by n per round. Dividing the unnormalized
    // maximum is bit-identical to maximizing over per-bin `norm_sqr()/n`:
    // division by a positive constant is monotone under IEEE
    // round-to-nearest, so the same bin wins and the same quotient comes
    // out.
    let mut maxima = ws.shuffled_half_power_maxima(&rows, n);
    ws.put_rows(rows);
    for v in &mut maxima {
        *v /= n as f64;
    }
    maxima.sort_by(f64::total_cmp);

    let threshold = maxima[quantile_rank(config.confidence, m) - 1];
    Ok(PermutationThreshold {
        threshold,
        shuffled_maxima: maxima,
    })
}

/// 1-based rank of the `⌈C·m⌉`-th smallest order statistic, robust to
/// floating-point noise in the product `C·m`.
///
/// A raw `ceil(C * m as f64)` is index-sensitive at the boundaries the
/// confidence level is designed to hit: the product can land a few ULPs
/// *above* an exactly-attainable integer (`0.56 × 25 =
/// 14.000000000000002`, `0.07 × 100 = 7.000000000000001`), and the
/// ceiling then overshoots the intended rank by one — selecting, say, the
/// 15th smallest of 25 where the statistic calls for the 14th, or the
/// maximum where it calls for the second-largest. Any product within a
/// few ULPs of an integer is therefore snapped to that integer before the
/// ceiling; the result is clamped to `[1, m]` so `C = 1` selects the
/// maximum (never indexing past the end) and vanishing products still
/// yield a valid rank.
fn quantile_rank(confidence: f64, m: usize) -> usize {
    let product = confidence * m as f64;
    let nearest = product.round();
    let tolerance = product.abs().max(1.0) * (4.0 * f64::EPSILON);
    let rank = if (product - nearest).abs() <= tolerance {
        nearest
    } else {
        product.ceil()
    };
    (rank as usize).clamp(1, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periodogram::Periodogram;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn beacon_series(n_events: u64, period: u64) -> TimeSeries {
        let timestamps: Vec<u64> = (0..n_events).map(|i| i * period).collect();
        TimeSeries::from_timestamps(&timestamps, 1).unwrap()
    }

    #[test]
    fn periodic_signal_exceeds_threshold() {
        let series = beacon_series(120, 30);
        let thr = permutation_threshold(&series, &PermutationConfig::default()).unwrap();
        let pg = Periodogram::compute(&series);
        assert!(
            pg.max_power() > 2.0 * thr.threshold,
            "signal {} vs threshold {}",
            pg.max_power(),
            thr.threshold
        );
    }

    #[test]
    fn random_signal_mostly_below_threshold() {
        // Poisson-ish random arrivals: the original max power should look
        // like a typical shuffled max, not exceed the high-confidence bound
        // by a large factor.
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = 0u64;
        let mut timestamps = Vec::new();
        for _ in 0..200 {
            t += rng.random_range(1..120);
            timestamps.push(t);
        }
        let series = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
        let thr = permutation_threshold(&series, &PermutationConfig::default()).unwrap();
        let pg = Periodogram::compute(&series);
        assert!(
            pg.max_power() < 2.0 * thr.threshold,
            "random signal {} vs threshold {}",
            pg.max_power(),
            thr.threshold
        );
    }

    #[test]
    fn threshold_is_order_statistic() {
        let series = beacon_series(50, 10);
        let cfg = PermutationConfig {
            permutations: 20,
            confidence: 0.95,
            ..Default::default()
        };
        let thr = permutation_threshold(&series, &cfg).unwrap();
        assert_eq!(thr.shuffled_maxima.len(), 20);
        // 19th smallest of 20.
        assert_eq!(thr.threshold, thr.shuffled_maxima[18]);
        // Maxima sorted ascending.
        for w in thr.shuffled_maxima.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn confidence_one_takes_largest() {
        let series = beacon_series(50, 10);
        let cfg = PermutationConfig {
            permutations: 10,
            confidence: 1.0,
            ..Default::default()
        };
        let thr = permutation_threshold(&series, &cfg).unwrap();
        assert_eq!(thr.threshold, *thr.shuffled_maxima.last().unwrap());
    }

    #[test]
    fn explicit_workspace_matches_thread_local() {
        let series = beacon_series(80, 15);
        let cfg = PermutationConfig::default();
        let ws = crate::workspace::SpectralWorkspace::new();
        let a = permutation_threshold_in(&ws, &series, &cfg).unwrap();
        let b = permutation_threshold(&series, &cfg).unwrap();
        assert_eq!(a, b);
        // One plan for the series length; the batched RealHalf pass rides
        // two rounds per physical FFT.
        assert_eq!(ws.plans_built(), 1);
        assert_eq!(ws.transforms_run(), cfg.permutations.div_ceil(2));
    }

    #[test]
    fn batched_modes_agree_and_halve_transforms() {
        use crate::workspace::{SpectralMode, SpectralWorkspace};
        let series = beacon_series(80, 15);
        let cfg = PermutationConfig::default();
        let legacy = SpectralWorkspace::with_mode(SpectralMode::ComplexFull);
        let packed = SpectralWorkspace::new();
        let a = permutation_threshold_in(&legacy, &series, &cfg).unwrap();
        let b = permutation_threshold_in(&packed, &series, &cfg).unwrap();
        assert_eq!(a.shuffled_maxima.len(), b.shuffled_maxima.len());
        for (x, y) in a.shuffled_maxima.iter().zip(&b.shuffled_maxima) {
            assert!((x - y).abs() <= 1e-9 * x.max(1.0), "{x} vs {y}");
        }
        assert!((a.threshold - b.threshold).abs() <= 1e-9 * a.threshold.max(1.0));
        // ComplexFull runs one FFT per round; RealHalf packs two rounds
        // into each.
        assert_eq!(legacy.transforms_run(), cfg.permutations);
        assert_eq!(packed.transforms_run(), cfg.permutations.div_ceil(2));
    }

    #[test]
    fn quantile_rank_boundaries() {
        // The ⌈C·m⌉ rank at every boundary the satellite calls out, plus
        // the floating-point overshoot regressions: products a few ULPs
        // above an integer must snap down, not ceil up.
        for (m, c, want) in [
            (1usize, 0.95, 1),
            (1, 1.0, 1),
            (19, 0.95, 19), // ⌈18.05⌉: the maximum
            (19, 1.0, 19),
            (20, 0.95, 19), // the 19th smallest, not the 20th
            (20, 1.0, 20),  // the maximum, in bounds
            (10, 0.9, 9),
            (25, 0.56, 14), // 0.56·25 = 14.000000000000002 in f64
            (100, 0.07, 7), // 0.07·100 = 7.000000000000001 in f64
            (20, 0.001, 1), // vanishing product clamps up to rank 1
        ] {
            assert_eq!(quantile_rank(c, m), want, "C={c} m={m}");
        }
    }

    #[test]
    fn quantile_boundaries_select_correct_order_statistic() {
        let series = beacon_series(50, 10);
        for (m, want_rank_95) in [(1usize, 1usize), (19, 19), (20, 19)] {
            // C = 0.0 is outside (0, 1]: rejected at every m, never an
            // out-of-bounds index.
            assert!(permutation_threshold(
                &series,
                &PermutationConfig {
                    permutations: m,
                    confidence: 0.0,
                    ..Default::default()
                }
            )
            .is_err());

            let thr = permutation_threshold(
                &series,
                &PermutationConfig {
                    permutations: m,
                    confidence: 0.95,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(thr.shuffled_maxima.len(), m);
            assert_eq!(thr.threshold, thr.shuffled_maxima[want_rank_95 - 1]);

            // C = 1.0 selects the maximum — in bounds, never a panic.
            let thr = permutation_threshold(
                &series,
                &PermutationConfig {
                    permutations: m,
                    confidence: 1.0,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(thr.threshold, *thr.shuffled_maxima.last().unwrap());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let series = beacon_series(80, 15);
        let cfg = PermutationConfig::default();
        let a = permutation_threshold(&series, &cfg).unwrap();
        let b = permutation_threshold(&series, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_maxima() {
        let series = beacon_series(80, 15);
        let a = permutation_threshold(&series, &PermutationConfig::default()).unwrap();
        let b = permutation_threshold(
            &series,
            &PermutationConfig {
                seed: 12345,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.shuffled_maxima, b.shuffled_maxima);
    }

    #[test]
    fn invalid_config_rejected() {
        let series = beacon_series(10, 5);
        assert!(permutation_threshold(
            &series,
            &PermutationConfig {
                permutations: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(permutation_threshold(
            &series,
            &PermutationConfig {
                confidence: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(permutation_threshold(
            &series,
            &PermutationConfig {
                confidence: 1.5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn budget_stops_rounds_deterministically() {
        use crate::budget::ExecBudget;
        let series = beacon_series(80, 15);
        let cfg = PermutationConfig::default();
        let n = series.len() as u64;
        let ws = crate::workspace::SpectralWorkspace::new();

        // Enough for exactly 3 rounds: the 4th checkpoint exceeds the cap.
        let budget = ExecBudget::new(None, Some(3 * n));
        let err = permutation_threshold_budgeted(&ws, &series, &cfg, &budget);
        assert_eq!(err, Err(TimeSeriesError::BudgetExhausted));
        assert_eq!(budget.ops_used(), 4 * n, "charged through the 4th round");

        // Unlimited budget is byte-identical to the unbudgeted entry point.
        let unlimited = ExecBudget::unlimited();
        let a = permutation_threshold_budgeted(&ws, &series, &cfg, &unlimited).unwrap();
        let b = permutation_threshold_in(&ws, &series, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_permutations_tighten_estimate() {
        // With more permutations the threshold estimate stabilizes: the
        // spread between two independent runs shrinks (ablation of m).
        let series = beacon_series(100, 20);
        let spread = |m: usize| {
            let a = permutation_threshold(
                &series,
                &PermutationConfig {
                    permutations: m,
                    seed: 1,
                    ..Default::default()
                },
            )
            .unwrap()
            .threshold;
            let b = permutation_threshold(
                &series,
                &PermutationConfig {
                    permutations: m,
                    seed: 2,
                    ..Default::default()
                },
            )
            .unwrap()
            .threshold;
            (a - b).abs() / a.max(b)
        };
        // Not strictly monotone per-run, but 40 permutations should not be
        // wildly worse than 5.
        assert!(spread(40) <= spread(5) + 0.5);
    }
}
