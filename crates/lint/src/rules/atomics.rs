//! L5 — every atomic `Ordering` use must match its module's declared
//! policy.
//!
//! PRs 5–8 grew 45 atomic operations across `obs`/`resilience`/
//! `mapreduce`/`timeseries` with an ad-hoc mix of `Relaxed` and `SeqCst`.
//! Correctness here is *modular*: a monotone stats counter merged exactly
//! after `join()` is `Relaxed`-safe, while a control cell read by worker
//! threads mid-flight needs stronger ordering — and nothing in the type
//! system records which is which. The `[[atomic]]` tables in `lint.toml`
//! make the per-module policy explicit (with a written reason), and this
//! rule holds every `Ordering::*` token to it. Exceptions go through
//! `[[allow]]` entries, also with written reasons.
//!
//! Orderings are recognized both qualified (`Ordering::SeqCst`, with any
//! path prefix) and bare (`SeqCst` imported via `use …::Ordering::SeqCst`,
//! resolved through the file's `use` map). `std::cmp::Ordering` never
//! collides: its variants (`Less`/`Equal`/`Greater`) are disjoint from the
//! atomic set.

use super::{snippet_at, Finding};
use crate::config::{AtomicPolicy, ORDERINGS};
use crate::fix::{Edit, Fix};
use crate::items::ItemIndex;
use crate::syntax::File;
use crate::walk::SourceFile;

pub fn check(
    sf: &SourceFile,
    file: &File,
    items: &ItemIndex,
    lines: &[&str],
    policy: Option<&AtomicPolicy>,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if !ORDERINGS.contains(&t.text.as_str()) || t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        if file.in_test_code(i) {
            continue;
        }
        // The variant named inside a `use …::Ordering::SeqCst;` import is
        // a declaration, not a site; the bare uses it enables are checked.
        let stmt = file.statement_start(i);
        if tokens.get(stmt).is_some_and(|s| s.is_ident("use")) {
            continue;
        }
        // Qualified: `… Ordering :: Relaxed`.
        let qualified = i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("Ordering");
        if !qualified {
            // Bare: only when a `use` in scope imports this exact variant
            // (or the enclosing module globs the atomic `Ordering`) — a
            // local identifier that happens to be called `Relaxed` is not
            // an ordering.
            let imported = items
                .resolve(i, &t.text)
                .is_some_and(|path| path.contains("Ordering"));
            if !imported {
                continue;
            }
        }
        let site = items
            .qualified_fn(i)
            .unwrap_or_else(|| "<module scope>".to_string());
        match policy {
            None => findings.push(Finding {
                rule: "L5-atomic-ordering",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!(
                    "atomic Ordering::{} in `{site}` but `{}` has no declared ordering \
                     policy; add an [[atomic]] entry to lint.toml with a written reason",
                    t.text, sf.rel_path
                ),
                fix: None,
            }),
            Some(p) if !p.allow.iter().any(|o| o == &t.text) => {
                // Rewriting a *qualified* variant is mechanical; a bare
                // import would also need its `use` adjusted, so that stays
                // manual.
                let fix = match (&p.fix, qualified) {
                    (Some(target), true) => Some(Fix {
                        edits: vec![Edit {
                            start: t.start,
                            end: t.end,
                            replacement: target.clone(),
                        }],
                    }),
                    _ => None,
                };
                findings.push(Finding {
                    rule: "L5-atomic-ordering",
                    path: sf.rel_path.clone(),
                    line: t.line,
                    snippet: snippet_at(lines, t.line),
                    message: format!(
                        "Ordering::{} in `{site}` violates the declared policy for `{}` \
                         (allowed: {}); policy reason: {}",
                        t.text,
                        sf.rel_path,
                        p.allow.join(", "),
                        p.reason
                    ),
                    fix,
                });
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::lexer::lex;
    use crate::walk::Section;
    use std::path::PathBuf;

    fn obs_file() -> SourceFile {
        SourceFile {
            abs_path: PathBuf::from("crates/obs/src/registry.rs"),
            rel_path: "crates/obs/src/registry.rs".to_string(),
            crate_name: Some("obs".to_string()),
            section: Section::Lib,
        }
    }

    fn run(src: &str, policy: Option<&AtomicPolicy>) -> Vec<Finding> {
        let file = File::parse(lex(src));
        let items = ItemIndex::build_for(&file);
        let lines: Vec<&str> = src.lines().collect();
        let mut findings = Vec::new();
        check(&obs_file(), &file, &items, &lines, policy, &mut findings);
        findings
    }

    fn policy(allow: &[&str], fix: Option<&str>) -> AtomicPolicy {
        let fix_line = fix.map(|f| format!("fix = \"{f}\"\n")).unwrap_or_default();
        let toml = format!(
            "[[atomic]]\npath = \"crates/obs/src/registry.rs\"\nallow = [{}]\n{fix_line}\
             reason = \"unit-test policy, long enough to satisfy the parser\"\n",
            allow
                .iter()
                .map(|o| format!("\"{o}\""))
                .collect::<Vec<_>>()
                .join(", ")
        );
        Config::parse(&toml, "lint.toml")
            .expect("test policy parses")
            .atomics[0]
            .clone()
    }

    #[test]
    fn out_of_policy_ordering_is_flagged_with_a_fix() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   impl Counter { fn bump(&self) { self.n.fetch_add(1, Ordering::SeqCst); } }";
        let p = policy(&["Relaxed"], Some("Relaxed"));
        let f = run(src, Some(&p));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "L5-atomic-ordering");
        assert!(f[0].message.contains("Counter::bump"), "{}", f[0].message);
        let fix = f[0].fix.as_ref().expect("mechanical fix attached");
        assert_eq!(fix.edits[0].replacement, "Relaxed");
        assert_eq!(&src[fix.edits[0].start..fix.edits[0].end], "SeqCst");
    }

    #[test]
    fn in_policy_ordering_and_cmp_ordering_pass() {
        let src = "use std::sync::atomic::Ordering;\n\
                   fn a(n: &std::sync::atomic::AtomicU64) { n.load(Ordering::Relaxed); }\n\
                   fn b() -> std::cmp::Ordering { std::cmp::Ordering::Less }";
        let p = policy(&["Relaxed"], None);
        assert!(run(src, Some(&p)).is_empty());
    }

    #[test]
    fn bare_imported_variant_is_flagged_without_a_fix() {
        let src = "use std::sync::atomic::Ordering::SeqCst;\n\
                   fn a(n: &std::sync::atomic::AtomicU64) { n.load(SeqCst); }";
        let p = policy(&["Relaxed"], Some("Relaxed"));
        let f = run(src, Some(&p));
        assert_eq!(f.len(), 1);
        assert!(
            f[0].fix.is_none(),
            "bare imports need the use rewritten too"
        );
    }

    #[test]
    fn unimported_bare_name_is_not_an_ordering() {
        let src = "fn a() { let Relaxed = 3; take(Relaxed); }";
        let p = policy(&["SeqCst"], None);
        assert!(run(src, Some(&p)).is_empty());
    }

    #[test]
    fn missing_policy_is_itself_a_finding() {
        let src = "use std::sync::atomic::Ordering;\n\
                   fn a(n: &std::sync::atomic::AtomicU64) { n.load(Ordering::Relaxed); }";
        let f = run(src, None);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no declared ordering policy"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n use std::sync::atomic::Ordering;\n\
                   fn t(n: &std::sync::atomic::AtomicU64) { n.load(Ordering::SeqCst); }\n}";
        let p = policy(&["Relaxed"], None);
        assert!(run(src, Some(&p)).is_empty());
    }
}
