//! A minimal, dependency-free JSON writer with stable output.
//!
//! The golden-run regression suite byte-compares exported snapshots, so
//! the writer must be fully deterministic: callers are responsible for
//! iterating maps in sorted order (the registry uses `BTreeMap`
//! throughout), and this module guarantees stable escaping and number
//! formatting on top of that.

/// Incremental JSON writer. Values are appended through the `push_*`
/// methods; object/array framing is the caller's responsibility via
/// [`JsonWriter::raw`], which keeps the writer trivially small.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends literal text (framing characters such as `{`, `}`, `[`,
    /// `]`) and resets the pending-comma state.
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
        self.needs_comma = false;
    }

    /// Appends `"key":` with a leading comma when needed.
    pub fn key(&mut self, key: &str) {
        self.comma();
        push_json_string(&mut self.out, key);
        self.out.push(':');
        self.needs_comma = false;
    }

    /// Appends a string value.
    pub fn string(&mut self, value: &str) {
        self.comma();
        push_json_string(&mut self.out, value);
        self.needs_comma = true;
    }

    /// Appends an unsigned integer value.
    pub fn uint(&mut self, value: u64) {
        self.comma();
        self.out.push_str(&value.to_string());
        self.needs_comma = true;
    }

    /// Appends a signed integer value.
    pub fn int(&mut self, value: i64) {
        self.comma();
        self.out.push_str(&value.to_string());
        self.needs_comma = true;
    }

    /// Appends a float with fixed precision, the only stable way to
    /// serialise `f64` for byte-comparison. Non-finite values become
    /// `null` (JSON has no NaN/Inf).
    pub fn float(&mut self, value: f64, decimals: usize) {
        self.comma();
        if value.is_finite() {
            self.out.push_str(&format!("{value:.decimals$}"));
        } else {
            self.out.push_str("null");
        }
        self.needs_comma = true;
    }

    /// Marks the just-closed value as complete so the next sibling gets a
    /// comma. Call after a nested object/array closed with [`raw`].
    ///
    /// [`raw`]: JsonWriter::raw
    pub fn end_value(&mut self) {
        self.needs_comma = true;
    }

    /// Consumes the writer and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn comma(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
    }
}

/// Escapes `s` per RFC 8259 and appends it, quoted, to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_flat_object() {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("a");
        w.uint(1);
        w.key("b");
        w.string("two");
        w.key("c");
        w.float(1.5, 3);
        w.raw("}");
        assert_eq!(w.finish(), r#"{"a":1,"b":"two","c":1.500}"#);
    }

    #[test]
    fn writes_nested_structures_with_correct_commas() {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("xs");
        w.raw("[");
        w.uint(1);
        w.uint(2);
        w.raw("]");
        w.end_value();
        w.key("o");
        w.raw("{");
        w.key("k");
        w.int(-3);
        w.raw("}");
        w.end_value();
        w.key("tail");
        w.uint(9);
        w.raw("}");
        assert_eq!(w.finish(), r#"{"xs":[1,2],"o":{"k":-3},"tail":9}"#);
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.raw("[");
        w.float(f64::NAN, 2);
        w.float(f64::INFINITY, 2);
        w.raw("]");
        assert_eq!(w.finish(), "[null,null]");
    }
}
