//! Item-level structure on top of the token stream: `mod`/`impl`/`fn`
//! nesting and per-scope `use` maps.
//!
//! This is the "symbol resolution" layer the v2 rules stand on. It is not
//! a full name resolver — no type inference, no glob expansion across
//! crates — but it answers the three questions the rules actually ask,
//! scope-accurately and with zero dependencies:
//!
//! 1. *Which item am I in?* ([`ItemIndex::qualified_fn`],
//!    [`ItemIndex::enclosing_impl`]) — so L7 can restrict itself to `impl`
//!    blocks of declared ledger types and findings can name the function
//!    they sit in.
//! 2. *What does this identifier resolve to?* ([`ItemIndex::resolve`]) —
//!    so L5 can tell `std::sync::atomic::Ordering` from
//!    `std::cmp::Ordering`, and a bare `SeqCst` imported via
//!    `use …::Ordering::SeqCst` from an unrelated local name.
//! 3. *Which module path owns this token?* (scope chain walking) — so
//!    policies declared per file/module apply to exactly their scope.
//!
//! The parser is deliberately shallow: item keywords are only recognized
//! at *item position* (after `;`, `{`, `}`, an attribute `]`, or file
//! start, modulo visibility/`unsafe`/`const`/`async`/`extern` modifiers),
//! which keeps `-> impl Iterator` return types and `fn()` pointer types
//! from opening phantom scopes.

use crate::lexer::{Token, TokenKind};
use crate::syntax::File;

/// What kind of item opened a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// `mod name { … }`
    Mod,
    /// `impl Type { … }` / `impl Trait for Type { … }` (named by the type).
    Impl,
    /// `trait Name { … }`
    Trait,
    /// `fn name(…) { … }`
    Fn,
}

/// One lexical item scope: its kind, name, token range, and the `use`
/// aliases declared directly inside it.
#[derive(Debug)]
pub struct Scope {
    pub kind: ScopeKind,
    /// Item name; for impls, the implemented type's last path segment.
    pub name: String,
    /// Token index of the opening `{` (0 for the root scope).
    pub start: usize,
    /// Token index one past the closing `}` (tokens.len() for root).
    pub end: usize,
    /// Index of the enclosing scope in [`ItemIndex::scopes`].
    pub parent: Option<usize>,
    /// `local alias → full use path`, e.g. `("Ordering",
    /// "std::sync::atomic::Ordering")`. Glob imports are stored as
    /// `("*", "the::prefix")`.
    uses: Vec<(String, String)>,
}

/// The item index for one file.
pub struct ItemIndex {
    pub scopes: Vec<Scope>,
}

/// Modifier identifiers that may precede an item keyword without moving it
/// off item position.
const MODIFIERS: &[&str] = &["pub", "unsafe", "const", "async", "extern", "default"];

impl ItemIndex {
    pub fn build_for(file: &File) -> Self {
        let tokens = &file.tokens;
        let mut scopes = vec![Scope {
            kind: ScopeKind::Root,
            name: String::new(),
            start: 0,
            end: tokens.len(),
            parent: None,
            uses: Vec::new(),
        }];
        // Stack of (scope id, closing token index) for open item scopes.
        let mut open: Vec<(usize, usize)> = vec![(0, tokens.len())];
        // A `mod`/`fn`/`impl`/`trait` header seen since the last boundary,
        // waiting for its body `{`.
        let mut pending: Option<(ScopeKind, String)> = None;

        let mut i = 0usize;
        while i < tokens.len() {
            // Close scopes whose body has ended.
            while open.len() > 1 && i >= open[open.len() - 1].1 {
                open.pop();
            }
            let t = &tokens[i];
            match t.kind {
                TokenKind::Punct if t.is_punct('{') => {
                    if let Some((kind, name)) = pending.take() {
                        let end = file.matching(i).map(|c| c + 1).unwrap_or(tokens.len());
                        let parent = open.last().map(|(id, _)| *id);
                        scopes.push(Scope {
                            kind,
                            name,
                            start: i,
                            end,
                            parent,
                            uses: Vec::new(),
                        });
                        open.push((scopes.len() - 1, end));
                    }
                }
                TokenKind::Punct if t.is_punct(';') => {
                    // `mod external;` / trait method signatures: the
                    // pending item has no inline body.
                    pending = None;
                }
                TokenKind::Ident => match t.text.as_str() {
                    "mod" if at_item_position(tokens, i) => {
                        if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident)
                        {
                            pending = Some((ScopeKind::Mod, name.text.clone()));
                        }
                    }
                    "trait" if at_item_position(tokens, i) => {
                        if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident)
                        {
                            pending = Some((ScopeKind::Trait, name.text.clone()));
                        }
                    }
                    "fn" if at_item_position(tokens, i) => {
                        if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident)
                        {
                            pending = Some((ScopeKind::Fn, name.text.clone()));
                        }
                    }
                    "impl" if at_item_position(tokens, i) => {
                        let name = impl_type_name(tokens, i);
                        pending = Some((ScopeKind::Impl, name));
                    }
                    "use" if at_item_position(tokens, i) => {
                        let scope_id = open.last().map(|(id, _)| *id).unwrap_or(0);
                        i = parse_use(tokens, i + 1, &mut scopes[scope_id].uses);
                        continue;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        Self { scopes }
    }

    /// The innermost scope containing token `idx`.
    pub fn scope_at(&self, idx: usize) -> usize {
        let mut best = 0usize;
        let mut best_len = usize::MAX;
        for (id, s) in self.scopes.iter().enumerate() {
            if idx >= s.start && idx < s.end && s.end - s.start < best_len {
                best = id;
                best_len = s.end - s.start;
            }
        }
        best
    }

    /// The nearest enclosing `impl` block's type name, walking out through
    /// nested functions.
    pub fn enclosing_impl(&self, idx: usize) -> Option<&str> {
        let mut cur = Some(self.scope_at(idx));
        while let Some(id) = cur {
            let s = &self.scopes[id];
            if s.kind == ScopeKind::Impl {
                return Some(&s.name);
            }
            cur = s.parent;
        }
        None
    }

    /// The qualified name of the innermost function containing `idx`:
    /// `mod::Type::fn` built from the scope chain. `None` outside any fn.
    pub fn qualified_fn(&self, idx: usize) -> Option<String> {
        let mut cur = Some(self.scope_at(idx));
        let mut fn_name: Option<&str> = None;
        let mut outer: Vec<&str> = Vec::new();
        while let Some(id) = cur {
            let s = &self.scopes[id];
            match s.kind {
                ScopeKind::Fn if fn_name.is_none() => fn_name = Some(&s.name),
                ScopeKind::Impl | ScopeKind::Mod | ScopeKind::Trait if fn_name.is_some() => {
                    outer.push(&s.name)
                }
                _ => {}
            }
            cur = s.parent;
        }
        let name = fn_name?;
        outer.reverse();
        outer.push(name);
        Some(outer.join("::"))
    }

    /// Resolves a bare identifier through the `use` maps of the scope
    /// chain at `idx`: the full imported path, or `None` when nothing in
    /// scope imports that name. Glob imports resolve as
    /// `prefix::*::name` so callers can still inspect the prefix.
    pub fn resolve(&self, idx: usize, name: &str) -> Option<String> {
        let mut cur = Some(self.scope_at(idx));
        while let Some(id) = cur {
            let s = &self.scopes[id];
            for (alias, path) in &s.uses {
                if alias == name {
                    return Some(path.clone());
                }
            }
            for (alias, path) in &s.uses {
                if alias == "*" {
                    return Some(format!("{path}::*::{name}"));
                }
            }
            cur = s.parent;
        }
        None
    }
}

/// True when the keyword at `idx` sits at item position: the previous
/// significant token (skipping visibility and other modifiers) is a
/// statement/item boundary. `-> impl Trait`, `: impl Fn()`, and friends
/// are rejected here.
fn at_item_position(tokens: &[Token], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        let p = &tokens[i - 1];
        match p.kind {
            TokenKind::Ident if MODIFIERS.contains(&p.text.as_str()) => i -= 1,
            // The ABI string of `extern "C" fn`.
            TokenKind::Str => i -= 1,
            TokenKind::Punct if p.is_punct(')') => {
                // `pub(crate)` visibility group: step over it and require
                // `pub` in front; anything else (a call, a tuple) means
                // expression position.
                let mut depth = 1usize;
                let mut j = i - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if tokens[j].is_punct(')') {
                        depth += 1;
                    } else if tokens[j].is_punct('(') {
                        depth -= 1;
                    }
                }
                if j > 0 && tokens[j - 1].is_ident("pub") {
                    i = j - 1;
                } else {
                    return false;
                }
            }
            TokenKind::Punct => {
                let c = p.text.as_str();
                return c == ";" || c == "{" || c == "}" || c == "]";
            }
            _ => return false,
        }
    }
    true
}

/// The implemented type's last path segment for an `impl` header:
/// `impl<T> Foo<T> for Bar<T> where …` → `Bar`; `impl Baz {` → `Baz`.
fn impl_type_name(tokens: &[Token], impl_idx: usize) -> String {
    let mut angle = 0i32;
    let mut after_for = false;
    let mut name = String::new();
    let mut i = impl_idx + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" if angle <= 0 => break,
                _ => {}
            },
            TokenKind::Ident if angle <= 0 => match t.text.as_str() {
                "for" => {
                    after_for = true;
                    name.clear();
                }
                "where" => break,
                other => {
                    // Later path segments overwrite earlier ones, so the
                    // last depth-0 ident (before `where`/`{`) wins; once
                    // `for` is seen only the target side counts.
                    let _ = after_for;
                    name = other.to_string();
                }
            },
            _ => {}
        }
        i += 1;
    }
    name
}

/// Parses one `use …;` declaration starting right after the `use` keyword.
/// Returns the index one past the terminating `;`. Records `alias → full
/// path` pairs (honoring `as` renames, `{…}` groups one or more levels
/// deep, and `*` globs).
fn parse_use(tokens: &[Token], start: usize, out: &mut Vec<(String, String)>) -> usize {
    // Find the terminating `;` first so malformed input cannot run away.
    let mut end = start;
    let mut depth = 0i32;
    while end < tokens.len() {
        let t = &tokens[end];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            break;
        }
        end += 1;
    }
    parse_use_tree(&tokens[start..end.min(tokens.len())], "", out);
    end + 1
}

/// Recursive-descent over one use tree (the region between `use` and `;`).
fn parse_use_tree(tokens: &[Token], prefix: &str, out: &mut Vec<(String, String)>) {
    let mut segments: Vec<String> = Vec::new();
    let join = |prefix: &str, segments: &[String]| -> String {
        let tail = segments.join("::");
        if prefix.is_empty() {
            tail
        } else if tail.is_empty() {
            prefix.to_string()
        } else {
            format!("{prefix}::{tail}")
        }
    };
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            if t.text == "as" {
                // `path as Alias`
                if let Some(alias) = tokens.get(i + 1).filter(|a| a.kind == TokenKind::Ident) {
                    out.push((alias.text.clone(), join(prefix, &segments)));
                }
                // Consume through the next `,` at this level.
                i += 2;
                while i < tokens.len() && !tokens[i].is_punct(',') {
                    i += 1;
                }
                segments.clear();
                i += 1;
                continue;
            }
            segments.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct(':') {
            i += 1;
            continue;
        }
        if t.is_punct('*') {
            out.push(("*".to_string(), join(prefix, &segments)));
            segments.clear();
            i += 1;
            continue;
        }
        if t.is_punct(',') {
            if !segments.is_empty() {
                let full = join(prefix, &segments);
                let last = segments.last().cloned().unwrap_or_default();
                out.push((leaf_alias(&last), full));
                segments.clear();
            }
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            // Find the matching close at this nesting level.
            let mut depth = 1i32;
            let mut j = i + 1;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                }
                j += 1;
            }
            let inner_prefix = join(prefix, &segments);
            parse_use_tree(&tokens[i + 1..j.saturating_sub(1)], &inner_prefix, out);
            segments.clear();
            i = j;
            continue;
        }
        i += 1;
    }
    if !segments.is_empty() {
        let full = join(prefix, &segments);
        let last = segments.last().cloned().unwrap_or_default();
        out.push((leaf_alias(&last), full));
    }
}

/// `use a::b::self` imports `b`; everything else imports its last segment.
fn leaf_alias(last: &str) -> String {
    last.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::File;

    fn index(src: &str) -> (File, ItemIndex) {
        let file = File::parse(lex(src));
        let idx = ItemIndex::build_for(&file);
        (file, idx)
    }

    fn ident_idx(f: &File, name: &str, nth: usize) -> usize {
        f.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident(name))
            .map(|(i, _)| i)
            .nth(nth)
            .expect("ident present")
    }

    #[test]
    fn nesting_recovers_qualified_fn_names() {
        let src = "mod outer {\n  impl Widget {\n    pub fn poke(&self) { marker; }\n  }\n  pub fn free() { other; }\n}";
        let (f, idx) = index(src);
        let m = ident_idx(&f, "marker", 0);
        assert_eq!(idx.qualified_fn(m).as_deref(), Some("outer::Widget::poke"));
        assert_eq!(idx.enclosing_impl(m), Some("Widget"));
        let o = ident_idx(&f, "other", 0);
        assert_eq!(idx.qualified_fn(o).as_deref(), Some("outer::free"));
        assert_eq!(idx.enclosing_impl(o), None);
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let src = "impl<T: Clone> std::fmt::Display for Breaker<T> { fn fmt(&self) { marker; } }";
        let (f, idx) = index(src);
        let m = ident_idx(&f, "marker", 0);
        assert_eq!(idx.enclosing_impl(m), Some("Breaker"));
    }

    #[test]
    fn return_position_impl_does_not_open_a_scope() {
        let src = "fn make() -> impl Iterator<Item = u32> { inner; }";
        let (f, idx) = index(src);
        let m = ident_idx(&f, "inner", 0);
        assert_eq!(idx.enclosing_impl(m), None);
        assert_eq!(idx.qualified_fn(m).as_deref(), Some("make"));
    }

    #[test]
    fn use_groups_renames_and_globs_resolve() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   use std::cmp::Ordering as CmpOrd;\n\
                   use std::sync::atomic::Ordering::SeqCst;\n\
                   fn f() { marker; }";
        let (f, idx) = index(src);
        let m = ident_idx(&f, "marker", 0);
        assert_eq!(
            idx.resolve(m, "Ordering").as_deref(),
            Some("std::sync::atomic::Ordering")
        );
        assert_eq!(
            idx.resolve(m, "CmpOrd").as_deref(),
            Some("std::cmp::Ordering")
        );
        assert_eq!(
            idx.resolve(m, "SeqCst").as_deref(),
            Some("std::sync::atomic::Ordering::SeqCst")
        );
        assert_eq!(idx.resolve(m, "Unrelated"), None);
    }

    #[test]
    fn inner_scope_imports_shadow_outer_ones() {
        let src = "use std::sync::atomic::Ordering;\n\
                   mod inner {\n  use std::cmp::Ordering;\n  fn g() { marker; }\n}\n\
                   fn h() { outer_marker; }";
        let (f, idx) = index(src);
        let m = ident_idx(&f, "marker", 0);
        assert_eq!(
            idx.resolve(m, "Ordering").as_deref(),
            Some("std::cmp::Ordering")
        );
        let o = ident_idx(&f, "outer_marker", 0);
        assert_eq!(
            idx.resolve(o, "Ordering").as_deref(),
            Some("std::sync::atomic::Ordering")
        );
    }

    #[test]
    fn fn_pointer_types_do_not_open_scopes() {
        let src = "fn apply(cb: fn(u32) -> u32) { marker; }";
        let (f, idx) = index(src);
        let m = ident_idx(&f, "marker", 0);
        assert_eq!(idx.qualified_fn(m).as_deref(), Some("apply"));
    }
}
