//! A minimal, dependency-free JSON writer and reader with stable output.
//!
//! The golden-run regression suite byte-compares exported snapshots, so
//! the writer must be fully deterministic: callers are responsible for
//! iterating maps in sorted order (the registry uses `BTreeMap`
//! throughout), and this module guarantees stable escaping and number
//! formatting on top of that.
//!
//! The reader ([`parse`]) is the inverse half used by the checkpoint
//! layer: run manifests and shard files written with [`JsonWriter`] are
//! loaded back through it on resume. Numbers are kept as their raw
//! source tokens ([`JsonValue::Number`]) so `u64` values — FNV digests,
//! bit-patterns of `f64`s — round-trip exactly instead of passing
//! through an `f64` that only holds 53 bits of integer precision.

/// Incremental JSON writer. Values are appended through the `push_*`
/// methods; object/array framing is the caller's responsibility via
/// [`JsonWriter::raw`], which keeps the writer trivially small.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends literal text (framing characters such as `{`, `}`, `[`,
    /// `]`) and resets the pending-comma state.
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
        self.needs_comma = false;
    }

    /// Appends `"key":` with a leading comma when needed.
    pub fn key(&mut self, key: &str) {
        self.comma();
        push_json_string(&mut self.out, key);
        self.out.push(':');
        self.needs_comma = false;
    }

    /// Appends a string value.
    pub fn string(&mut self, value: &str) {
        self.comma();
        push_json_string(&mut self.out, value);
        self.needs_comma = true;
    }

    /// Appends an unsigned integer value.
    pub fn uint(&mut self, value: u64) {
        self.comma();
        self.out.push_str(&value.to_string());
        self.needs_comma = true;
    }

    /// Appends a signed integer value.
    pub fn int(&mut self, value: i64) {
        self.comma();
        self.out.push_str(&value.to_string());
        self.needs_comma = true;
    }

    /// Appends a float with fixed precision, the only stable way to
    /// serialise `f64` for byte-comparison. Non-finite values become
    /// `null` (JSON has no NaN/Inf).
    pub fn float(&mut self, value: f64, decimals: usize) {
        self.comma();
        if value.is_finite() {
            self.out.push_str(&format!("{value:.decimals$}"));
        } else {
            self.out.push_str("null");
        }
        self.needs_comma = true;
    }

    /// Marks the just-closed value as complete so the next sibling gets a
    /// comma. Call after a nested object/array closed with [`raw`].
    ///
    /// [`raw`]: JsonWriter::raw
    pub fn end_value(&mut self) {
        self.needs_comma = true;
    }

    /// Consumes the writer and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn comma(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
    }
}

/// Escapes `s` per RFC 8259 and appends it, quoted, to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON document.
///
/// Objects preserve source order as a `Vec` of pairs — the checkpoint
/// files this parser exists for are written in stable key order already,
/// and keeping a `Vec` avoids imposing a map type on callers.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token so full-range `u64`
    /// values (digests, `f64::to_bits` payloads) round-trip exactly.
    Number(String),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as (key, value) pairs in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number token parsed as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `i64`, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `f64`, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The pair list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it was detected at.
///
/// Checkpoint loading treats any parse error as corruption and degrades
/// to a fresh run, so the error only needs to be descriptive, not
/// recoverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting deeper than this is rejected: checkpoint documents are a few
/// levels deep, and a bound keeps a corrupted (or adversarial) file from
/// overflowing the stack through recursion.
const MAX_PARSE_DEPTH: usize = 128;

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zeros are not valid JSON"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        Ok(JsonValue::Number(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonParseError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: the low half must follow as \uXXXX.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("invalid unicode escape")),
                }
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_flat_object() {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("a");
        w.uint(1);
        w.key("b");
        w.string("two");
        w.key("c");
        w.float(1.5, 3);
        w.raw("}");
        assert_eq!(w.finish(), r#"{"a":1,"b":"two","c":1.500}"#);
    }

    #[test]
    fn writes_nested_structures_with_correct_commas() {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("xs");
        w.raw("[");
        w.uint(1);
        w.uint(2);
        w.raw("]");
        w.end_value();
        w.key("o");
        w.raw("{");
        w.key("k");
        w.int(-3);
        w.raw("}");
        w.end_value();
        w.key("tail");
        w.uint(9);
        w.raw("}");
        assert_eq!(w.finish(), r#"{"xs":[1,2],"o":{"k":-3},"tail":9}"#);
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.raw("[");
        w.float(f64::NAN, 2);
        w.float(f64::INFINITY, 2);
        w.raw("]");
        assert_eq!(w.finish(), "[null,null]");
    }

    #[test]
    fn parses_what_the_writer_writes() {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("digest");
        w.uint(u64::MAX);
        w.key("name");
        w.string("a\"b\\c\nd\u{1}");
        w.key("items");
        w.raw("[");
        w.uint(1);
        w.int(-2);
        w.float(1.5, 3);
        w.raw("]");
        w.end_value();
        w.key("none");
        w.raw("null");
        w.end_value();
        w.raw("}");
        let doc = parse(&w.finish()).unwrap();
        // Full-range u64 survives the round trip bit-exactly.
        assert_eq!(
            doc.get("digest").and_then(JsonValue::as_u64),
            Some(u64::MAX)
        );
        assert_eq!(
            doc.get("name").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd\u{1}")
        );
        let items = doc.get("items").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_i64(), Some(-2));
        assert_eq!(items[2].as_f64(), Some(1.5));
        assert_eq!(doc.get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_literals_whitespace_and_nesting() {
        let doc = parse(" { \"a\" : [ true , false , null , { } ] } ").unwrap();
        let a = doc.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_bool(), Some(true));
        assert_eq!(a[1].as_bool(), Some(false));
        assert_eq!(a[2], JsonValue::Null);
        assert_eq!(a[3].as_object(), Some(&[][..]));
    }

    #[test]
    fn parses_unicode_escapes_including_surrogate_pairs() {
        let doc = parse(r#""A😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "tru",
            r#""\ud800x""#,
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
