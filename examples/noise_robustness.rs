//! Noise robustness of the core detector — a miniature of the paper's
//! Fig. 10: sweep Gaussian jitter (alone and combined with missing-event
//! noise) and report how often the true period is still recovered.
//!
//! ```text
//! cargo run --release --example noise_robustness
//! ```

#![warn(clippy::unwrap_used)]

use baywatch::netsim::synth::SyntheticBeacon;
use baywatch::timeseries::detector::{DetectorConfig, PeriodicityDetector};

const PERIOD: f64 = 60.0;
const TRIALS: u64 = 20;

fn detection_rate(sigma: f64, p_miss: f64) -> f64 {
    let detector = PeriodicityDetector::new(DetectorConfig::default());
    let mut hits = 0;
    for trial in 0..TRIALS {
        let ts = SyntheticBeacon {
            period: PERIOD,
            gaussian_sigma: sigma,
            p_miss,
            add_rate: 0.0,
            count: 240,
            start: 1_000_000,
        }
        .generate(trial * 7919 + 13);
        if let Ok(report) = detector.detect(&ts) {
            // A hit = some verified candidate within 10% of the truth.
            if report
                .candidates
                .iter()
                .any(|c| (c.period - PERIOD).abs() < 0.1 * PERIOD)
            {
                hits += 1;
            }
        }
    }
    hits as f64 / TRIALS as f64
}

fn main() {
    println!("true period: {PERIOD} s, {TRIALS} trials per cell\n");
    println!("sigma | gaussian only | + p_miss=0.25 | + p_miss=0.50 | + p_miss=0.75");
    println!("------+---------------+---------------+---------------+--------------");
    for sigma in [0.0, 2.0, 5.0, 8.0, 11.0, 15.0, 20.0, 30.0, 40.0] {
        let cells: Vec<f64> = [0.0, 0.25, 0.50, 0.75]
            .iter()
            .map(|&p| detection_rate(sigma, p))
            .collect();
        println!(
            "{sigma:>5.0} | {:>13.2} | {:>13.2} | {:>13.2} | {:>13.2}",
            cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\nExpected shape (paper Fig. 10): near-perfect detection at low sigma, a");
    println!("degradation threshold around sigma ≈ 30 for Gaussian-only noise, and a");
    println!("threshold dropping to ≈ 7–11 when heavy missing-event noise is combined.");
}
